//! The gather node of a sharded deployment: scatter-gather over the
//! shard primaries' replication feeds.
//!
//! # How a gather works
//!
//! A [`Gather`] follows every shard primary of a partitioned deployment
//! the way a [`Replica`](crate::Replica) follows its primary: one
//! background feed thread per shard dials the shard's server, performs
//! the Hello handshake, and subscribes to its write-ahead-log stream
//! from the merge's per-shard clock. Chunks are folded into a shared
//! [`ShardMerge`](plus_store::ShardMerge) — cold feeds bootstrap from
//! the shard's snapshot (which carries its partition stamp, verified on
//! ingest), warm feeds replay sealed frames — and the merged record
//! sets materialize into one **order-canonical** global graph served by
//! an ordinary [`AccountService`] (bind it with
//! [`Role::Gather`](crate::Role::Gather)).
//!
//! Because each shard feed is an ordinary replication subscription, the
//! shard servers must run with replication enabled
//! (`--allow-replication`, or `--shard`, which implies it), and the
//! gather belongs inside the owner's trust domain: the feeds carry raw
//! records. Consumers talk to the gather's *query* socket, which serves
//! only protected views, exactly like any other server.
//!
//! # Partial results are refused, never silent
//!
//! Every query response from a gather carries the full per-shard epoch
//! vector it was computed at. While any feed is down — or behind the
//! slot's served high-water mark after a repair — the fronting server
//! refuses cross-shard queries with the typed
//! [`WireErrorKind::ShardUnavailable`](plus_store::WireErrorKind) —
//! a traversal with a shard's records missing would return a silently
//! truncated answer, indistinguishable from a true one. Clients retry
//! or fall back; they never get a gap dressed up as an answer.
//!
//! # Surviving a shard-primary failover
//!
//! Started from a [`Topology`] that names replicas
//! ([`Gather::start_topology`]), each feed **re-resolves its shard's
//! writable primary** the way
//! [`ClientPool::writable`](crate::ClientPool::writable) does: dial the
//! candidates (last good address, configured primary, then replicas),
//! ask each for its replication status, follow primary-address
//! breadcrumbs, and subscribe only to a node that identifies as
//! primary.
//!
//! Promotion is **fenced** per shard. Each feed tracks the highest
//! fencing term it has folded a chunk under:
//!
//! * a candidate or chunk carrying a *lower* term is a deposed primary
//!   still claiming the role — refused, never folded;
//! * a *higher* term means the shard failed over. The clocks of the old
//!   stream and the new one are not comparable (an unreplicated tail
//!   may have been truncated), so the feed **resets its merge slot**
//!   and re-bootstraps from the new primary's snapshot — the
//!   gather-side analogue of a rejoining replica's anti-entropy repair.
//!
//! A reset rewinds the slot's merge clock, but never what the gather
//! *serves*: the gather keeps a per-slot **epoch floor** (the
//! high-water mark of folded clocks), a repaired slot is not
//! [`ready`](Gather::ready) until it has caught back up to its floor,
//! and the merge's repair [`generation`](Gather::generation) lets the
//! fronting server refuse an answer that straddled a reset. Together:
//! the epoch vector a consumer observes **never regresses**.

use std::net::{Shutdown, TcpStream};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::Arc;
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

use parking_lot::Mutex;
use plus_store::codec;
use plus_store::wire::ReplicaRole;
use plus_store::{AccountService, MergedSource, ReplicaStatus, StoreError};
use surrogate_core::shard::{EpochVector, ShardMap};

use crate::error::ReplicaError;
use crate::replica::FeedConn;
use crate::topology::Topology;

/// Tuning knobs for [`Gather::start_with`].
#[derive(Debug, Clone, Copy)]
pub struct GatherConfig {
    /// Sleep between reconnect attempts on a failed shard feed.
    pub reconnect_backoff: Duration,
    /// Read deadline on each feed socket (shard primaries heartbeat
    /// every 250ms; silence past this is treated as a dead link).
    pub feed_read_timeout: Duration,
}

impl Default for GatherConfig {
    fn default() -> Self {
        Self {
            reconnect_backoff: Duration::from_millis(100),
            feed_read_timeout: Duration::from_secs(1),
        }
    }
}

/// Per-slot feed state shared with the fronting server.
struct FeedState {
    connected: AtomicBool,
    /// The shard's epoch as last observed from its chunks — what
    /// [`Gather::synced`] compares the merge clock against.
    shard_epoch: AtomicU64,
    /// The highest fencing term folded for this slot, stored shifted by
    /// one (`0` = no chunk observed yet, `t + 1` = term `t`).
    term: AtomicU64,
    /// The address the feed last subscribed to — the slot's current
    /// writable primary as far as the gather knows. Tried first on the
    /// next resolution, and what [`Gather::peer_of`] redirects to.
    addr: Mutex<Option<String>>,
    last_error: Mutex<Option<String>>,
}

impl Default for FeedState {
    fn default() -> Self {
        Self {
            connected: AtomicBool::new(false),
            shard_epoch: AtomicU64::new(0),
            term: AtomicU64::new(0),
            addr: Mutex::new(None),
            last_error: Mutex::new(None),
        }
    }
}

/// A running gather: one feed thread per shard folding replication
/// streams into a merged [`AccountService`].
///
/// Dropping it (or calling [`shutdown`](Self::shutdown)) stops the feed
/// threads. The merge is in-memory only; a restarted gather re-ingests
/// each shard's bootstrap snapshot.
pub struct Gather {
    service: Arc<AccountService>,
    merged: Arc<MergedSource>,
    topology: Topology,
    peers: Vec<String>,
    feeds: Vec<Arc<FeedState>>,
    /// Per-slot served high-water marks: a slot whose merge clock is
    /// below its floor (mid-repair) is not ready.
    floors: Arc<Mutex<EpochVector>>,
    stop: Arc<AtomicBool>,
    /// Clones of the live feed sockets so shutdown can unblock parked
    /// reads.
    live: Arc<Mutex<Vec<Option<TcpStream>>>>,
    threads: Vec<JoinHandle<()>>,
}

impl std::fmt::Debug for Gather {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Gather")
            .field("peers", &self.peers)
            .field("clocks", &self.clocks())
            .field("synced", &self.synced())
            .finish()
    }
}

impl Gather {
    /// Starts a gather over the shard primaries at `peers`, in shard
    /// order: `peers[i]` must be shard `i` of `peers.len()`. No
    /// replicas: a dead shard primary stays down until it returns. Use
    /// [`start_topology`](Self::start_topology) for failover.
    pub fn start(peers: &[&str]) -> Result<Gather, ReplicaError> {
        Self::start_with(peers, GatherConfig::default())
    }

    /// [`start`](Self::start) with explicit tuning.
    pub fn start_with(peers: &[&str], config: GatherConfig) -> Result<Gather, ReplicaError> {
        let topology = Topology::from_peers(peers.iter().copied())
            .map_err(|e| ReplicaError::Protocol(e.to_string()))?;
        Self::start_topology(&topology, config)
    }

    /// Starts a gather over a full [`Topology`]: each slot follows its
    /// shard's *current* primary, re-resolving through the replica set
    /// (and any breadcrumbs they leave) after a failover — see the
    /// [module docs](self).
    pub fn start_topology(
        topology: &Topology,
        config: GatherConfig,
    ) -> Result<Gather, ReplicaError> {
        let count = Some(topology.shard_count())
            .filter(|&n| n > 0 && n <= plus_store::MAX_SHARDS)
            .ok_or_else(|| {
                ReplicaError::protocol("a gather needs between 1 and MAX_SHARDS shards")
            })?;
        let map = ShardMap::new(count).expect("count checked nonzero");
        let merged = Arc::new(MergedSource::new(map));
        let service = Arc::new(AccountService::sharded(merged.clone()));
        let peers = topology.primaries();
        let feeds: Vec<Arc<FeedState>> =
            (0..count).map(|_| Arc::new(FeedState::default())).collect();
        let floors = Arc::new(Mutex::new(EpochVector::new(count)));
        let stop = Arc::new(AtomicBool::new(false));
        let live = Arc::new(Mutex::new((0..count).map(|_| None).collect::<Vec<_>>()));
        let mut threads = Vec::with_capacity(peers.len());
        for slot in 0..count {
            let merged = merged.clone();
            let feed = feeds[slot as usize].clone();
            let stop = stop.clone();
            let live = live.clone();
            let floors = floors.clone();
            let candidates = topology.candidates(slot);
            threads.push(
                std::thread::Builder::new()
                    .name(format!("spgraph-gather-{slot}"))
                    .spawn(move || {
                        run_feed(slot, candidates, merged, feed, stop, live, floors, config)
                    })
                    .expect("spawn gather feed thread"),
            );
        }
        Ok(Gather {
            service,
            merged,
            topology: topology.clone(),
            peers,
            feeds,
            floors,
            stop,
            live,
            threads,
        })
    }

    /// The serving layer over the merged graph — bind it with
    /// [`Role::Gather`](crate::Role::Gather), or query it in-process.
    /// Read-only: writes go to the shard primaries.
    pub fn service(&self) -> &Arc<AccountService> {
        &self.service
    }

    /// The shard primaries this gather was configured with, in shard
    /// order (the topology's view; a failed-over slot's *live* primary
    /// is what [`peer_of`](Self::peer_of) names).
    pub fn peers(&self) -> &[String] {
        &self.peers
    }

    /// The per-shard replica addresses the gather was configured with,
    /// in shard order — what its `ShardStatus` answers announce.
    pub fn replicas(&self) -> Vec<Vec<String>> {
        self.topology.replica_table()
    }

    /// The address of the shard that owns global id `id` — the redirect
    /// target for a write that landed here by mistake. After a
    /// failover this is the *promoted* primary the slot's feed last
    /// subscribed to, not the configured (dead) one.
    pub fn peer_of(&self, id: u32) -> String {
        let slot = self.merged.map().shard_of(id) as usize;
        self.feeds[slot]
            .addr
            .lock()
            .clone()
            .unwrap_or_else(|| self.peers[slot].clone())
    }

    /// How many shards the keyspace is partitioned across.
    pub fn shard_count(&self) -> u32 {
        self.merged.map().count()
    }

    /// The per-shard merge clocks: how many of each shard's mutations
    /// the merged graph reflects.
    pub fn clocks(&self) -> Vec<u64> {
        self.merged.clocks()
    }

    /// The per-shard served floors: the high-water mark of folded
    /// clocks per slot. The serving layer never hands out an epoch
    /// vector below this, even across a failover repair.
    pub fn floors(&self) -> Vec<u64> {
        self.floors.lock().as_slice().to_vec()
    }

    /// The merge's repair generation: bumped every time a slot is reset
    /// for a failover re-bootstrap. The fronting server pins it across
    /// an answer and refuses the answer when it moved.
    pub fn generation(&self) -> u64 {
        self.merged.generation()
    }

    /// Whether the feed for `slot` is currently connected.
    pub fn connected(&self, slot: u32) -> bool {
        self.feeds
            .get(slot as usize)
            .is_some_and(|f| f.connected.load(Ordering::Relaxed))
    }

    /// Whether `slot` is servable: its feed is connected **and** its
    /// merge clock has reached the slot's served floor (a mid-repair
    /// slot is connected but not yet ready).
    pub fn ready(&self, slot: u32) -> bool {
        let Some(feed) = self.feeds.get(slot as usize) else {
            return false;
        };
        feed.connected.load(Ordering::Relaxed)
            && self.merged.clocks()[slot as usize] >= self.floors.lock().as_slice()[slot as usize]
    }

    /// The first unservable shard slot, if any — what the fronting
    /// server names in its [`ShardUnavailable`](plus_store::WireErrorKind)
    /// refusals.
    pub fn first_down(&self) -> Option<u32> {
        let clocks = self.merged.clocks();
        let floors = self.floors.lock();
        self.feeds
            .iter()
            .enumerate()
            .position(|(slot, feed)| {
                !feed.connected.load(Ordering::Relaxed) || clocks[slot] < floors.as_slice()[slot]
            })
            .map(|slot| slot as u32)
    }

    /// Whether every feed is connected and the merge has caught up with
    /// each shard's last observed epoch and its served floor.
    pub fn synced(&self) -> bool {
        let clocks = self.merged.clocks();
        let floors = self.floors.lock();
        self.feeds.iter().enumerate().all(|(slot, feed)| {
            feed.connected.load(Ordering::Relaxed)
                && clocks[slot] >= feed.shard_epoch.load(Ordering::Relaxed)
                && clocks[slot] >= floors.as_slice()[slot]
        })
    }

    /// Waits until [`synced`](Self::synced) holds, or the deadline
    /// passes; returns whether it does.
    pub fn wait_synced(&self, timeout: Duration) -> bool {
        let deadline = Instant::now() + timeout;
        loop {
            if self.synced() {
                return true;
            }
            if Instant::now() >= deadline {
                return false;
            }
            std::thread::sleep(Duration::from_millis(5));
        }
    }

    /// The last feed error recorded for `slot`, if any.
    pub fn last_error(&self, slot: u32) -> Option<String> {
        self.feeds
            .get(slot as usize)
            .and_then(|f| f.last_error.lock().clone())
    }

    /// The fencing term the feed for `slot` last folded a chunk under,
    /// if it has folded any.
    pub fn term(&self, slot: u32) -> Option<u64> {
        self.feeds
            .get(slot as usize)
            .map(|f| f.term.load(Ordering::Relaxed))
            .filter(|&t| t > 0)
            .map(|t| t - 1)
    }

    /// Stops the feed threads and disconnects. Equivalent to dropping
    /// the gather, but explicit.
    pub fn shutdown(mut self) {
        self.stop_threads();
    }

    fn stop_threads(&mut self) {
        self.stop.store(true, Ordering::SeqCst);
        for stream in self.live.lock().iter_mut() {
            if let Some(stream) = stream.take() {
                let _ = stream.shutdown(Shutdown::Both);
            }
        }
        for thread in self.threads.drain(..) {
            let _ = thread.join();
        }
        for feed in &self.feeds {
            feed.connected.store(false, Ordering::Relaxed);
        }
    }
}

impl Drop for Gather {
    fn drop(&mut self) {
        self.stop_threads();
    }
}

/// Sleeps `total` in small slices so a raised stop flag interrupts it
/// promptly.
fn backoff(stop: &AtomicBool, total: Duration) {
    let deadline = Instant::now() + total;
    while !stop.load(Ordering::SeqCst) {
        let left = deadline.saturating_duration_since(Instant::now());
        if left.is_zero() {
            return;
        }
        std::thread::sleep(left.min(Duration::from_millis(10)));
    }
}

/// Resolves a slot's current *writable primary* the way
/// [`ClientPool::writable`](crate::ClientPool::writable) does: dial the
/// candidates in order (last good address first, then the configured
/// primary and replicas), ask each for its replication status, and
/// collect the `primary_addr` breadcrumbs replicas leave. Returns the
/// handshaken connection, the address that answered, and its status.
fn resolve_primary(
    candidates: &[String],
    last_good: Option<String>,
    read_timeout: Duration,
) -> Result<(FeedConn, String, ReplicaStatus), String> {
    let push = |list: &mut Vec<String>, addr: String| {
        if !addr.is_empty() && !list.contains(&addr) {
            list.push(addr);
        }
    };
    let mut list: Vec<String> = Vec::new();
    if let Some(addr) = last_good {
        push(&mut list, addr);
    }
    for addr in candidates {
        push(&mut list, addr.clone());
    }
    let mut last_error = "no candidate addresses".to_string();
    let mut next = 0;
    while next < list.len() {
        let addr = list[next].clone();
        next += 1;
        let mut conn = match FeedConn::connect(&addr, read_timeout) {
            Ok(conn) => conn,
            Err(e) => {
                last_error = format!("{addr}: {e}");
                continue;
            }
        };
        match conn.role_status() {
            Ok(status) if status.role == ReplicaRole::Primary => return Ok((conn, addr, status)),
            Ok(status) => {
                last_error = format!("{addr}: read-only replica, not a primary");
                if let Some(hint) = status.primary_addr {
                    push(&mut list, hint);
                }
            }
            Err(e) => last_error = format!("{addr}: {e}"),
        }
    }
    Err(last_error)
}

/// One shard's feed loop: resolve the slot's writable primary, fence by
/// term (resetting the slot on a term bump — the failover repair),
/// subscribe from the merge's clock, fold chunks in, reconnect with
/// backoff on any failure.
#[allow(clippy::too_many_arguments)]
fn run_feed(
    slot: u32,
    candidates: Vec<String>,
    merged: Arc<MergedSource>,
    feed: Arc<FeedState>,
    stop: Arc<AtomicBool>,
    live: Arc<Mutex<Vec<Option<TcpStream>>>>,
    floors: Arc<Mutex<EpochVector>>,
    config: GatherConfig,
) {
    let record = |message: String| *feed.last_error.lock() = Some(message);
    while !stop.load(Ordering::SeqCst) {
        let last_good = feed.addr.lock().clone();
        let (mut conn, addr, status) =
            match resolve_primary(&candidates, last_good, config.feed_read_timeout) {
                Ok(resolved) => resolved,
                Err(e) => {
                    record(e);
                    backoff(&stop, config.reconnect_backoff);
                    continue;
                }
            };
        // Fencing at resolve time, mirroring the in-stream check below:
        // refuse a deposed primary outright, repair on a term bump
        // *before* subscribing so the subscription clock is already the
        // post-reset one.
        match fence(slot, &merged, &feed, status.term) {
            Fence::Fold => {}
            Fence::Deposed => {
                record(format!(
                    "{addr}: deposed shard primary (stale fencing term {})",
                    status.term
                ));
                backoff(&stop, config.reconnect_backoff);
                continue;
            }
            Fence::Repaired => {}
            Fence::Failed(e) => {
                record(format!("{addr}: slot repair failed: {e}"));
                backoff(&stop, config.reconnect_backoff);
                continue;
            }
        }
        let from_clock = merged.clocks()[slot as usize];
        if let Err(e) = conn.subscribe(from_clock) {
            record(format!("{addr}: {e}"));
            backoff(&stop, config.reconnect_backoff);
            continue;
        }
        *feed.addr.lock() = Some(addr.clone());
        live.lock()[slot as usize] = conn.try_clone_stream().ok();
        loop {
            if stop.load(Ordering::SeqCst) {
                live.lock()[slot as usize] = None;
                return;
            }
            let chunk = match conn.next_chunk() {
                Ok(chunk) => chunk,
                Err(e) => {
                    record(e.to_string());
                    break;
                }
            };
            // In-stream fencing: a promotion can race the resolve-time
            // check (the chunk's term is authoritative — it is what the
            // primary durably stamped).
            match fence(slot, &merged, &feed, chunk.term) {
                Fence::Fold => {}
                Fence::Deposed => {
                    record(format!(
                        "{addr}: chunk from deposed primary (stale fencing term {})",
                        chunk.term
                    ));
                    break;
                }
                Fence::Repaired => {
                    // The chunk belongs to the new term's stream, which
                    // starts at the reset clock — resubscribe rather
                    // than guess at contiguity.
                    record(format!(
                        "{addr}: shard failed over to term {}; re-bootstrapping",
                        chunk.term
                    ));
                    break;
                }
                Fence::Failed(e) => {
                    record(format!("{addr}: slot repair failed: {e}"));
                    break;
                }
            }
            if let Err(e) = fold_chunk(slot, &merged, &chunk) {
                record(e.to_string());
                break;
            }
            // The floor only ever rises: it is the serving layer's
            // guarantee that a repair never rewinds what consumers see.
            floors
                .lock()
                .raise_slot(slot, merged.clocks()[slot as usize]);
            feed.shard_epoch
                .store(chunk.primary_epoch, Ordering::Relaxed);
            // Connected only once a chunk lands, so `synced` never
            // reports a reconnect caught-up against a stale epoch.
            feed.connected.store(true, Ordering::Relaxed);
            *feed.last_error.lock() = None;
        }
        feed.connected.store(false, Ordering::Relaxed);
        live.lock()[slot as usize] = None;
        backoff(&stop, config.reconnect_backoff);
    }
}

/// What the fencing check decided for an offered term.
enum Fence {
    /// Same term as every fold so far (or the first observed): fold.
    Fold,
    /// Lower term: the sender was deposed; do not fold, disconnect.
    Deposed,
    /// Higher term: the shard failed over. The slot has been reset and
    /// the new term adopted; re-bootstrap from the new primary.
    Repaired,
    /// The slot reset itself failed (merge poisoned or slot vanished).
    Failed(StoreError),
}

/// Applies the fencing rule for `offered` against the slot's recorded
/// term, resetting the merge slot on a term bump.
fn fence(slot: u32, merged: &MergedSource, feed: &FeedState, offered: u64) -> Fence {
    let observed = feed.term.load(Ordering::Relaxed);
    let shifted = offered + 1; // stored shifted: 0 = never observed
    if observed == 0 {
        feed.term.store(shifted, Ordering::Relaxed);
        return Fence::Fold;
    }
    if shifted < observed {
        return Fence::Deposed;
    }
    if shifted > observed {
        // The old stream's clocks and the new one's are incomparable
        // past the truncation point: drop the slot's records and
        // re-bootstrap from the new primary's snapshot (gather-side
        // anti-entropy). The merge generation bump invalidates every
        // cached answer computed over the old records.
        if let Err(e) = merged.reset_slot(slot) {
            return Fence::Failed(e);
        }
        feed.connected.store(false, Ordering::Relaxed);
        feed.term.store(shifted, Ordering::Relaxed);
        return Fence::Repaired;
    }
    Fence::Fold
}

/// Folds one chunk into the merge: snapshot bootstrap (stamped for this
/// slot, verified by the merge), then frames.
fn fold_chunk(
    slot: u32,
    merged: &MergedSource,
    chunk: &plus_store::WalChunk,
) -> Result<(), StoreError> {
    if let Some(snapshot) = &chunk.snapshot {
        let data = codec::decode(snapshot)?;
        merged.update(|m| m.ingest_snapshot(slot, &data))?;
    }
    merged.update(|m| m.apply_frames(slot, chunk.start_clock, &chunk.frames))
}
