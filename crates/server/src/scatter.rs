//! The gather node of a sharded deployment: scatter-gather over the
//! shard primaries' replication feeds.
//!
//! # How a gather works
//!
//! A [`Gather`] follows every shard primary of a partitioned deployment
//! the way a [`Replica`](crate::Replica) follows its primary: one
//! background feed thread per shard dials the shard's server, performs
//! the Hello handshake, and subscribes to its write-ahead-log stream
//! from the merge's per-shard clock. Chunks are folded into a shared
//! [`ShardMerge`](plus_store::ShardMerge) — cold feeds bootstrap from
//! the shard's snapshot (which carries its partition stamp, verified on
//! ingest), warm feeds replay sealed frames — and the merged record
//! sets materialize into one **order-canonical** global graph served by
//! an ordinary [`AccountService`] (bind it with
//! [`Server::bind_gather`](crate::Server::bind_gather)).
//!
//! Because each shard feed is an ordinary replication subscription, the
//! shard servers must run with replication enabled
//! (`--allow-replication`, or `--shard`, which implies it), and the
//! gather belongs inside the owner's trust domain: the feeds carry raw
//! records. Consumers talk to the gather's *query* socket, which serves
//! only protected views, exactly like any other server.
//!
//! # Partial results are refused, never silent
//!
//! Every query response from a gather carries the full per-shard epoch
//! vector it was computed at. While any feed is down, the fronting
//! server refuses cross-shard queries with the typed
//! [`WireErrorKind::ShardUnavailable`](plus_store::WireErrorKind) —
//! a traversal with a shard's records missing would return a silently
//! truncated answer, indistinguishable from a true one. Clients retry
//! or fall back; they never get a gap dressed up as an answer.

use std::net::{Shutdown, TcpStream};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::Arc;
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

use parking_lot::Mutex;
use plus_store::codec;
use plus_store::{AccountService, MergedSource, StoreError};
use surrogate_core::shard::ShardMap;

use crate::error::ReplicaError;
use crate::replica::FeedConn;

/// Tuning knobs for [`Gather::start_with`].
#[derive(Debug, Clone, Copy)]
pub struct GatherConfig {
    /// Sleep between reconnect attempts on a failed shard feed.
    pub reconnect_backoff: Duration,
    /// Read deadline on each feed socket (shard primaries heartbeat
    /// every 250ms; silence past this is treated as a dead link).
    pub feed_read_timeout: Duration,
}

impl Default for GatherConfig {
    fn default() -> Self {
        Self {
            reconnect_backoff: Duration::from_millis(100),
            feed_read_timeout: Duration::from_secs(1),
        }
    }
}

/// Per-slot feed state shared with the fronting server.
struct FeedState {
    connected: AtomicBool,
    /// The shard's epoch as last observed from its chunks — what
    /// [`Gather::synced`] compares the merge clock against.
    shard_epoch: AtomicU64,
    last_error: Mutex<Option<String>>,
}

impl Default for FeedState {
    fn default() -> Self {
        Self {
            connected: AtomicBool::new(false),
            shard_epoch: AtomicU64::new(0),
            last_error: Mutex::new(None),
        }
    }
}

/// A running gather: one feed thread per shard folding replication
/// streams into a merged [`AccountService`].
///
/// Dropping it (or calling [`shutdown`](Self::shutdown)) stops the feed
/// threads. The merge is in-memory only; a restarted gather re-ingests
/// each shard's bootstrap snapshot.
pub struct Gather {
    service: Arc<AccountService>,
    merged: Arc<MergedSource>,
    peers: Vec<String>,
    feeds: Vec<Arc<FeedState>>,
    stop: Arc<AtomicBool>,
    /// Clones of the live feed sockets so shutdown can unblock parked
    /// reads.
    live: Arc<Mutex<Vec<Option<TcpStream>>>>,
    threads: Vec<JoinHandle<()>>,
}

impl std::fmt::Debug for Gather {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Gather")
            .field("peers", &self.peers)
            .field("clocks", &self.clocks())
            .field("synced", &self.synced())
            .finish()
    }
}

impl Gather {
    /// Starts a gather over the shard primaries at `peers`, in shard
    /// order: `peers[i]` must be shard `i` of `peers.len()`.
    pub fn start(peers: &[&str]) -> Result<Gather, ReplicaError> {
        Self::start_with(peers, GatherConfig::default())
    }

    /// [`start`](Self::start) with explicit tuning.
    pub fn start_with(peers: &[&str], config: GatherConfig) -> Result<Gather, ReplicaError> {
        let count = u32::try_from(peers.len())
            .ok()
            .filter(|&n| n > 0 && n <= plus_store::MAX_SHARDS)
            .ok_or_else(|| {
                ReplicaError::protocol("a gather needs between 1 and MAX_SHARDS peers")
            })?;
        let map = ShardMap::new(count).expect("count checked nonzero");
        let merged = Arc::new(MergedSource::new(map));
        let service = Arc::new(AccountService::sharded(merged.clone()));
        let peers: Vec<String> = peers.iter().map(|p| p.to_string()).collect();
        let feeds: Vec<Arc<FeedState>> =
            (0..count).map(|_| Arc::new(FeedState::default())).collect();
        let stop = Arc::new(AtomicBool::new(false));
        let live = Arc::new(Mutex::new((0..count).map(|_| None).collect::<Vec<_>>()));
        let mut threads = Vec::with_capacity(peers.len());
        for (slot, addr) in peers.iter().enumerate() {
            let merged = merged.clone();
            let feed = feeds[slot].clone();
            let stop = stop.clone();
            let live = live.clone();
            let addr = addr.clone();
            threads.push(
                std::thread::Builder::new()
                    .name(format!("spgraph-gather-{slot}"))
                    .spawn(move || run_feed(slot as u32, addr, merged, feed, stop, live, config))
                    .expect("spawn gather feed thread"),
            );
        }
        Ok(Gather {
            service,
            merged,
            peers,
            feeds,
            stop,
            live,
            threads,
        })
    }

    /// The serving layer over the merged graph — bind it with
    /// [`Server::bind_gather`](crate::Server::bind_gather), or query it
    /// in-process. Read-only: writes go to the shard primaries.
    pub fn service(&self) -> &Arc<AccountService> {
        &self.service
    }

    /// The shard primaries this gather follows, in shard order.
    pub fn peers(&self) -> &[String] {
        &self.peers
    }

    /// The address of the shard that owns global id `id` — the redirect
    /// target for a write that landed here by mistake.
    pub fn peer_of(&self, id: u32) -> &str {
        let slot = self.merged.map().shard_of(id) as usize;
        &self.peers[slot]
    }

    /// How many shards the keyspace is partitioned across.
    pub fn shard_count(&self) -> u32 {
        self.merged.map().count()
    }

    /// The per-shard merge clocks: how many of each shard's mutations
    /// the merged graph reflects.
    pub fn clocks(&self) -> Vec<u64> {
        self.merged.clocks()
    }

    /// Whether the feed for `slot` is currently connected.
    pub fn connected(&self, slot: u32) -> bool {
        self.feeds
            .get(slot as usize)
            .is_some_and(|f| f.connected.load(Ordering::Relaxed))
    }

    /// The first disconnected shard slot, if any — what the fronting
    /// server names in its [`ShardUnavailable`](plus_store::WireErrorKind)
    /// refusals.
    pub fn first_down(&self) -> Option<u32> {
        self.feeds
            .iter()
            .position(|f| !f.connected.load(Ordering::Relaxed))
            .map(|slot| slot as u32)
    }

    /// Whether every feed is connected and the merge has caught up with
    /// each shard's last observed epoch.
    pub fn synced(&self) -> bool {
        let clocks = self.merged.clocks();
        self.feeds.iter().enumerate().all(|(slot, feed)| {
            feed.connected.load(Ordering::Relaxed)
                && clocks[slot] >= feed.shard_epoch.load(Ordering::Relaxed)
        })
    }

    /// Waits until [`synced`](Self::synced) holds, or the deadline
    /// passes; returns whether it does.
    pub fn wait_synced(&self, timeout: Duration) -> bool {
        let deadline = Instant::now() + timeout;
        loop {
            if self.synced() {
                return true;
            }
            if Instant::now() >= deadline {
                return false;
            }
            std::thread::sleep(Duration::from_millis(5));
        }
    }

    /// The last feed error recorded for `slot`, if any.
    pub fn last_error(&self, slot: u32) -> Option<String> {
        self.feeds
            .get(slot as usize)
            .and_then(|f| f.last_error.lock().clone())
    }

    /// Stops the feed threads and disconnects. Equivalent to dropping
    /// the gather, but explicit.
    pub fn shutdown(mut self) {
        self.stop_threads();
    }

    fn stop_threads(&mut self) {
        self.stop.store(true, Ordering::SeqCst);
        for stream in self.live.lock().iter_mut() {
            if let Some(stream) = stream.take() {
                let _ = stream.shutdown(Shutdown::Both);
            }
        }
        for thread in self.threads.drain(..) {
            let _ = thread.join();
        }
        for feed in &self.feeds {
            feed.connected.store(false, Ordering::Relaxed);
        }
    }
}

impl Drop for Gather {
    fn drop(&mut self) {
        self.stop_threads();
    }
}

/// Sleeps `total` in small slices so a raised stop flag interrupts it
/// promptly.
fn backoff(stop: &AtomicBool, total: Duration) {
    let deadline = Instant::now() + total;
    while !stop.load(Ordering::SeqCst) {
        let left = deadline.saturating_duration_since(Instant::now());
        if left.is_zero() {
            return;
        }
        std::thread::sleep(left.min(Duration::from_millis(10)));
    }
}

/// One shard's feed loop: subscribe from the merge's clock for this
/// slot, fold chunks in, reconnect with backoff on any failure.
fn run_feed(
    slot: u32,
    addr: String,
    merged: Arc<MergedSource>,
    feed: Arc<FeedState>,
    stop: Arc<AtomicBool>,
    live: Arc<Mutex<Vec<Option<TcpStream>>>>,
    config: GatherConfig,
) {
    while !stop.load(Ordering::SeqCst) {
        let from_clock = merged.clocks()[slot as usize];
        let mut conn = match FeedConn::open(&addr, from_clock, config.feed_read_timeout) {
            Ok(conn) => conn,
            Err(e) => {
                *feed.last_error.lock() = Some(e.to_string());
                backoff(&stop, config.reconnect_backoff);
                continue;
            }
        };
        live.lock()[slot as usize] = conn.try_clone_stream().ok();
        loop {
            if stop.load(Ordering::SeqCst) {
                live.lock()[slot as usize] = None;
                return;
            }
            let chunk = match conn.next_chunk() {
                Ok(chunk) => chunk,
                Err(e) => {
                    *feed.last_error.lock() = Some(e.to_string());
                    break;
                }
            };
            if let Err(e) = fold_chunk(slot, &merged, &chunk) {
                *feed.last_error.lock() = Some(e.to_string());
                break;
            }
            feed.shard_epoch
                .store(chunk.primary_epoch, Ordering::Relaxed);
            // Connected only once a chunk lands, so `synced` never
            // reports a reconnect caught-up against a stale epoch.
            feed.connected.store(true, Ordering::Relaxed);
            *feed.last_error.lock() = None;
        }
        feed.connected.store(false, Ordering::Relaxed);
        live.lock()[slot as usize] = None;
        backoff(&stop, config.reconnect_backoff);
    }
}

/// Folds one chunk into the merge: snapshot bootstrap (stamped for this
/// slot, verified by the merge), then frames.
fn fold_chunk(
    slot: u32,
    merged: &MergedSource,
    chunk: &plus_store::WalChunk,
) -> Result<(), StoreError> {
    if let Some(snapshot) = &chunk.snapshot {
        let data = codec::decode(snapshot)?;
        merged.update(|m| m.ingest_snapshot(slot, &data))?;
    }
    merged.update(|m| m.apply_frames(slot, chunk.start_clock, &chunk.frames))
}
