//! The threaded TCP query server.
//!
//! One accept loop feeds accepted connections to a fixed pool of worker
//! threads over a channel; each worker owns one connection at a time and
//! serves its requests synchronously against the shared
//! [`AccountService`]. No async runtime: blocking sockets, `std::thread`,
//! and `parking_lot` locks are the whole concurrency story, which keeps
//! the trust boundary auditable.
//!
//! # Connection protocol
//!
//! A connection must open with [`Request::Hello`]; the server resolves
//! the claimed predicate names against its lattice, derives the
//! connection's [`Consumer`] (empty claims = Public), and answers with
//! its own Hello. Every later frame is a query, epoch probe, or
//! checkpoint request. Recoverable failures come back as typed
//! [`Response::Error`] frames and leave the connection open; a malformed
//! frame (bad checksum, oversized length, undecodable payload) gets a
//! best-effort error frame and a hangup — the server never guesses at
//! intent.

use std::collections::HashMap;
use std::io;
use std::io::Write;
use std::net::{Shutdown, SocketAddr, TcpListener, TcpStream, ToSocketAddrs};
use std::path::PathBuf;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{mpsc, Arc};
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

use parking_lot::Mutex;
use plus_store::wal;
use plus_store::wire::{
    decode_request, encode_response, ReplicaRole, ReplicaStatus, Request, Response, ServerHello,
    WalChunk, WireError, WireErrorKind, PROTOCOL_VERSION,
};
use plus_store::{AccountService, CodecError, Store, StoreError};
use surrogate_core::credential::Consumer;
use surrogate_core::privilege::PrivilegeId;

use crate::frame::{read_frame, write_frame, FrameError};
use crate::replica::{Replica, ReplicationMonitor};

/// Tuning knobs for [`Server::bind`].
#[derive(Debug, Clone, Copy)]
pub struct ServerConfig {
    /// Worker threads — the maximum number of concurrently served
    /// connections. Further accepted connections wait in the channel.
    pub threads: usize,
    /// Whether remote [`Request::Checkpoint`] frames are honored.
    /// Off by default: checkpointing is an operator action (it drives
    /// owner-side disk I/O), and the Hello handshake verifies nothing,
    /// so an open socket should not expose it to every consumer.
    pub allow_remote_checkpoint: bool,
    /// Whether [`Request::Subscribe`] frames are honored. Off by
    /// default — and **dangerous to enable on a consumer-facing
    /// socket**: the replication stream ships *raw* write-ahead-log
    /// records (original labels, features, policy), not protected
    /// views. Enable it only on a socket that stays inside the owner's
    /// trust domain (`spgraph serve --allow-replication`).
    pub allow_replication: bool,
}

impl Default for ServerConfig {
    fn default() -> Self {
        let threads = std::thread::available_parallelism()
            .map(|n| n.get())
            .unwrap_or(4)
            .clamp(2, 8);
        Self {
            threads,
            allow_remote_checkpoint: false,
            allow_replication: false,
        }
    }
}

/// Monotone counters describing a server's lifetime traffic.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct ServerStats {
    /// Connections that completed a Hello handshake.
    pub connections: u64,
    /// Request frames answered (Hello excluded).
    pub requests: u64,
    /// Connections hung up on for a malformed frame or protocol
    /// violation.
    pub hangups: u64,
    /// Replication subscriptions accepted (feeder loops entered).
    pub subscriptions: u64,
    /// Snapshots shipped to backfilling subscribers. A warm subscriber
    /// resuming from its local clock never costs one.
    pub snapshots_shipped: u64,
}

#[derive(Default)]
struct Counters {
    connections: AtomicU64,
    requests: AtomicU64,
    hangups: AtomicU64,
    subscriptions: AtomicU64,
    snapshots_shipped: AtomicU64,
}

/// Live connections, so shutdown can unblock workers parked in `read`.
#[derive(Default)]
struct ConnTable {
    inner: Mutex<ConnTableInner>,
}

#[derive(Default)]
struct ConnTableInner {
    closed: bool,
    next_id: u64,
    streams: HashMap<u64, TcpStream>,
}

impl ConnTable {
    /// Registers a connection; `None` once the table is closed (the
    /// caller must drop the stream instead of serving it).
    fn register(&self, stream: &TcpStream) -> Option<u64> {
        let mut inner = self.inner.lock();
        if inner.closed {
            return None;
        }
        let id = inner.next_id;
        inner.next_id += 1;
        // No clone means close_all() could never hang this connection
        // up, and shutdown would block on the worker join — refuse the
        // connection instead (fd exhaustion is the typical cause, so
        // shedding load is the right response anyway).
        let clone = stream.try_clone().ok()?;
        inner.streams.insert(id, clone);
        Some(id)
    }

    fn deregister(&self, id: u64) {
        self.inner.lock().streams.remove(&id);
    }

    /// Marks the table closed and shuts every live socket down, which
    /// makes blocked reads in the workers return EOF.
    fn close_all(&self) {
        let mut inner = self.inner.lock();
        inner.closed = true;
        for stream in inner.streams.values() {
            let _ = stream.shutdown(Shutdown::Both);
        }
        inner.streams.clear();
    }
}

/// A running query server. Dropping it (or calling
/// [`shutdown`](Server::shutdown)) stops the accept loop, hangs up every
/// live connection, and joins all threads.
pub struct Server {
    local_addr: SocketAddr,
    shutdown: Arc<AtomicBool>,
    conns: Arc<ConnTable>,
    counters: Arc<Counters>,
    accept: Option<JoinHandle<()>>,
    workers: Vec<JoinHandle<()>>,
    /// One dedicated thread per live replication subscriber — feeders
    /// stream for the subscriber's lifetime, which must not starve the
    /// fixed query-worker pool.
    feeders: Arc<Mutex<Vec<JoinHandle<()>>>>,
}

impl std::fmt::Debug for Server {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Server")
            .field("local_addr", &self.local_addr)
            .field("workers", &self.workers.len())
            .field("stats", &self.stats())
            .finish()
    }
}

impl Server {
    /// Binds `addr` and starts serving `service` on
    /// [`ServerConfig::default`] worker threads.
    pub fn bind(service: Arc<AccountService>, addr: impl ToSocketAddrs) -> io::Result<Server> {
        Self::bind_with(service, addr, ServerConfig::default())
    }

    /// [`bind`](Self::bind) with explicit tuning.
    pub fn bind_with(
        service: Arc<AccountService>,
        addr: impl ToSocketAddrs,
        config: ServerConfig,
    ) -> io::Result<Server> {
        Self::bind_inner(service, addr, config, None)
    }

    /// Binds a server in front of a [`Replica`]: it serves the same
    /// query protocol read-only at the replica's (possibly lagging)
    /// epoch, and answers [`Request::ReplicaStatus`] with the replica's
    /// live link state instead of the primary default.
    pub fn bind_replica(
        replica: &Replica,
        addr: impl ToSocketAddrs,
        config: ServerConfig,
    ) -> io::Result<Server> {
        Self::bind_inner(
            replica.service().clone(),
            addr,
            config,
            Some(replica.monitor()),
        )
    }

    fn bind_inner(
        service: Arc<AccountService>,
        addr: impl ToSocketAddrs,
        config: ServerConfig,
        monitor: Option<Arc<ReplicationMonitor>>,
    ) -> io::Result<Server> {
        let listener = TcpListener::bind(addr)?;
        let local_addr = listener.local_addr()?;
        let shutdown = Arc::new(AtomicBool::new(false));
        let conns = Arc::new(ConnTable::default());
        let counters = Arc::new(Counters::default());
        let feeders: Arc<Mutex<Vec<JoinHandle<()>>>> = Arc::new(Mutex::new(Vec::new()));
        let (tx, rx) = mpsc::channel::<TcpStream>();
        let rx = Arc::new(Mutex::new(rx));

        let threads = config.threads.max(1);
        let mut workers = Vec::with_capacity(threads);
        for i in 0..threads {
            let rx = rx.clone();
            let service = service.clone();
            let shutdown = shutdown.clone();
            let conns = conns.clone();
            let counters = counters.clone();
            let monitor = monitor.clone();
            let feeders = feeders.clone();
            workers.push(
                std::thread::Builder::new()
                    .name(format!("spgraph-serve-{i}"))
                    .spawn(move || loop {
                        // Take the next connection; holding the lock only
                        // for the recv keeps the pool a simple queue.
                        let stream = { rx.lock().recv() };
                        let Ok(stream) = stream else { break };
                        if shutdown.load(Ordering::SeqCst) {
                            continue; // drain without serving
                        }
                        let Some(id) = conns.register(&stream) else {
                            continue;
                        };
                        let ctx = ConnCtx {
                            service: &service,
                            counters: &counters,
                            config: &config,
                            monitor: monitor.as_deref(),
                        };
                        let Some(feed) = serve_connection(&ctx, stream) else {
                            conns.deregister(id);
                            continue;
                        };
                        // An accepted subscription lives as long as the
                        // subscriber: hand it to a dedicated feeder
                        // thread so it cannot starve the query pool.
                        counters.subscriptions.fetch_add(1, Ordering::Relaxed);
                        let feeder = {
                            let service = service.clone();
                            let counters = counters.clone();
                            let shutdown = shutdown.clone();
                            let conns = conns.clone();
                            std::thread::Builder::new()
                                .name("spgraph-feeder".into())
                                .spawn(move || {
                                    let mut stream = feed.stream;
                                    let mut outbuf = Vec::with_capacity(4096);
                                    serve_subscription(
                                        &service,
                                        &counters,
                                        &shutdown,
                                        &mut stream,
                                        &feed.dir,
                                        feed.from_clock,
                                        &mut outbuf,
                                    );
                                    let _ = stream.shutdown(Shutdown::Both);
                                    conns.deregister(id);
                                })
                        };
                        match feeder {
                            Ok(handle) => {
                                let mut feeders = feeders.lock();
                                // Reap finished feeders (reconnecting
                                // subscribers create one per attempt) so
                                // the registry only grows with *live*
                                // streams; a finished handle drops
                                // detached, which is a no-op join.
                                feeders.retain(|f| !f.is_finished());
                                feeders.push(handle);
                            }
                            // Out of threads: shed the subscriber.
                            Err(_) => conns.deregister(id),
                        }
                    })
                    .expect("spawn worker thread"),
            );
        }

        let accept = {
            let shutdown = shutdown.clone();
            std::thread::Builder::new()
                .name("spgraph-accept".into())
                .spawn(move || {
                    for stream in listener.incoming() {
                        if shutdown.load(Ordering::SeqCst) {
                            break;
                        }
                        let Ok(stream) = stream else { continue };
                        if tx.send(stream).is_err() {
                            break;
                        }
                    }
                    // `tx` drops here; idle workers wake from `recv` and
                    // exit.
                })
                .expect("spawn accept thread")
        };

        Ok(Server {
            local_addr,
            shutdown,
            conns,
            counters,
            accept: Some(accept),
            workers,
            feeders,
        })
    }

    /// The address the server actually bound (resolves `:0`).
    pub fn local_addr(&self) -> SocketAddr {
        self.local_addr
    }

    /// A snapshot of the traffic counters.
    pub fn stats(&self) -> ServerStats {
        ServerStats {
            connections: self.counters.connections.load(Ordering::Relaxed),
            requests: self.counters.requests.load(Ordering::Relaxed),
            hangups: self.counters.hangups.load(Ordering::Relaxed),
            subscriptions: self.counters.subscriptions.load(Ordering::Relaxed),
            snapshots_shipped: self.counters.snapshots_shipped.load(Ordering::Relaxed),
        }
    }

    /// Stops accepting, hangs up every live connection, and joins all
    /// threads. Equivalent to dropping the server, but explicit.
    pub fn shutdown(mut self) {
        self.stop();
    }

    fn stop(&mut self) {
        if self.shutdown.swap(true, Ordering::SeqCst) {
            return;
        }
        // Unblock the accept loop with a wake-up connection; it
        // re-checks the flag per accepted connection. A wildcard bind
        // (0.0.0.0 / ::) is not dialable on every platform, so rewrite
        // it to the matching loopback.
        let mut wake_addr = self.local_addr;
        if wake_addr.ip().is_unspecified() {
            wake_addr.set_ip(match wake_addr {
                SocketAddr::V4(_) => std::net::IpAddr::V4(std::net::Ipv4Addr::LOCALHOST),
                SocketAddr::V6(_) => std::net::IpAddr::V6(std::net::Ipv6Addr::LOCALHOST),
            });
        }
        let woke =
            TcpStream::connect_timeout(&wake_addr, std::time::Duration::from_secs(1)).is_ok();
        self.conns.close_all();
        // Feeders exit on their own: their sockets just closed, and they
        // re-check the shutdown flag at least every poll interval.
        for feeder in self.feeders.lock().drain(..) {
            let _ = feeder.join();
        }
        if woke {
            if let Some(accept) = self.accept.take() {
                let _ = accept.join();
            }
            for worker in self.workers.drain(..) {
                let _ = worker.join();
            }
        } else {
            // The wake-up could not be delivered (e.g. a firewalled
            // self-connect): the accept thread stays parked in
            // `accept()` and still owns the channel sender, so joining
            // it — or the idle workers blocked in `recv` — would hang
            // forever. Live connections were hung up above; detach the
            // threads instead of deadlocking the caller.
            self.accept.take();
            self.workers.drain(..);
        }
    }
}

impl Drop for Server {
    fn drop(&mut self) {
        self.stop();
    }
}

/// Maps a service failure to what may cross the wire: the kind plus the
/// error's display form (which never includes raw graph content).
fn wire_error(e: &StoreError) -> WireError {
    let kind = match e {
        StoreError::NotAuthorized { .. } => WireErrorKind::NotAuthorized,
        StoreError::UnknownStrategy(_) => WireErrorKind::UnknownStrategy,
        StoreError::UnknownPredicate(_) => WireErrorKind::UnknownPredicate,
        StoreError::NotDurable => WireErrorKind::NotDurable,
        StoreError::UnknownRecord(_) => WireErrorKind::BadRequest,
        _ => WireErrorKind::Internal,
    };
    WireError::new(kind, e.to_string())
}

enum Outcome {
    /// Keep serving this connection.
    Continue,
    /// Protocol violation: hang up (after the best-effort error frame).
    HangUp,
}

/// Encodes and writes one response frame. An answer too large for the
/// wire — caught at encode time (a count overflowing its field) or at
/// write time (payload past the frame bound) — is reported to the client
/// as a typed error instead of desynchronizing the stream; the
/// connection stays usable.
fn send_response(stream: &mut TcpStream, response: &Response, outbuf: &mut Vec<u8>) -> bool {
    let payload = match encode_response(response) {
        Ok(payload) => payload,
        Err(_) => return send_oversize_notice(stream, outbuf),
    };
    match write_frame(stream, &payload, outbuf) {
        Ok(()) => true,
        Err(e) if e.kind() == io::ErrorKind::InvalidData => send_oversize_notice(stream, outbuf),
        Err(_) => false,
    }
}

/// The "split the batch" error frame for answers that cannot travel in
/// one frame.
fn send_oversize_notice(stream: &mut TcpStream, outbuf: &mut Vec<u8>) -> bool {
    let error = Response::Error(WireError::new(
        WireErrorKind::BadRequest,
        "response exceeds the maximum frame size; split the batch or bound max_depth",
    ));
    match encode_response(&error) {
        Ok(payload) => write_frame(stream, &payload, outbuf).is_ok(),
        Err(_) => false,
    }
}

/// Everything a connection handler needs: the service, the tuning, the
/// traffic counters, and the replica monitor when this server fronts a
/// [`Replica`].
struct ConnCtx<'a> {
    service: &'a AccountService,
    counters: &'a Counters,
    config: &'a ServerConfig,
    monitor: Option<&'a ReplicationMonitor>,
}

/// A validated subscription handed from the request loop to its
/// dedicated feeder thread.
struct Feed {
    stream: TcpStream,
    dir: PathBuf,
    from_clock: u64,
}

/// Serves one connection to completion — unless it turns into a
/// replication subscription, which is returned for a dedicated feeder
/// thread to own. All protocol policy lives here.
fn serve_connection(ctx: &ConnCtx<'_>, mut stream: TcpStream) -> Option<Feed> {
    let ConnCtx {
        service, counters, ..
    } = *ctx;
    // Per-round-trip latency is the product metric; never batch tiny
    // frames behind Nagle.
    let _ = stream.set_nodelay(true);
    let mut inbuf = Vec::with_capacity(512);
    let mut outbuf = Vec::with_capacity(512);
    let send = send_response;

    // --- Handshake -------------------------------------------------------
    let consumer = match read_frame(&mut stream, &mut inbuf) {
        Ok(Some(payload)) => match decode_request(payload) {
            Ok(Request::Hello {
                version,
                consumer,
                claims,
            }) => {
                if version != PROTOCOL_VERSION {
                    let error = WireError::new(
                        WireErrorKind::VersionMismatch,
                        format!("server speaks protocol version {PROTOCOL_VERSION}, not {version}"),
                    );
                    send(&mut stream, &Response::Error(error), &mut outbuf);
                    counters.hangups.fetch_add(1, Ordering::Relaxed);
                    return None;
                }
                let snapshot = service.snapshot();
                let mut granted: Vec<PrivilegeId> = Vec::with_capacity(claims.len());
                for claim in &claims {
                    match snapshot.lattice.by_name(claim) {
                        Some(p) => granted.push(p),
                        None => {
                            let error = WireError::new(
                                WireErrorKind::UnknownPredicate,
                                format!("predicate {claim:?} is not in the server's lattice"),
                            );
                            send(&mut stream, &Response::Error(error), &mut outbuf);
                            counters.hangups.fetch_add(1, Ordering::Relaxed);
                            return None;
                        }
                    }
                }
                let consumer = if granted.is_empty() {
                    Consumer::public(&snapshot.lattice)
                } else {
                    Consumer::new(consumer, &snapshot.lattice, &granted)
                };
                let hello = ServerHello {
                    version: PROTOCOL_VERSION,
                    epoch: snapshot.epoch(),
                    nodes: snapshot.graph.node_count() as u64,
                    predicates: snapshot
                        .lattice
                        .ids()
                        .map(|p| snapshot.lattice.name(p).to_string())
                        .collect(),
                };
                // Count the connection *before* the Hello answer goes
                // out: once a client observes the handshake complete,
                // the counter must already reflect it.
                counters.connections.fetch_add(1, Ordering::Relaxed);
                if !send(&mut stream, &Response::Hello(hello), &mut outbuf) {
                    return None;
                }
                consumer
            }
            Ok(_) => {
                let error = WireError::new(
                    WireErrorKind::BadRequest,
                    "the first frame on a connection must be Hello",
                );
                send(&mut stream, &Response::Error(error), &mut outbuf);
                counters.hangups.fetch_add(1, Ordering::Relaxed);
                return None;
            }
            Err(e) => {
                malformed_hangup(&mut stream, &e.to_string(), &mut outbuf, counters);
                return None;
            }
        },
        Ok(None) => return None, // connected and left without a word
        Err(FrameError::Malformed(e)) => {
            malformed_hangup(&mut stream, &e.to_string(), &mut outbuf, counters);
            return None;
        }
        Err(_) => return None, // torn or transport failure: nothing to say
    };

    // --- Request loop ----------------------------------------------------
    loop {
        let request = match read_frame(&mut stream, &mut inbuf) {
            Ok(Some(payload)) => match decode_request(payload) {
                Ok(request) => request,
                Err(e) => {
                    malformed_hangup(&mut stream, &e.to_string(), &mut outbuf, counters);
                    return None;
                }
            },
            Ok(None) => return None, // clean disconnect
            Err(FrameError::Malformed(e)) => {
                malformed_hangup(&mut stream, &e.to_string(), &mut outbuf, counters);
                return None;
            }
            Err(_) => return None, // torn or transport failure
        };
        counters.requests.fetch_add(1, Ordering::Relaxed);
        // Subscribe converts the connection into a one-way replication
        // stream: hand it to a dedicated feeder thread ("a feeder
        // thread per subscriber") so a long-lived subscription cannot
        // occupy one of the fixed query workers. The request loop ends
        // here either way.
        if let Request::Subscribe { from_clock } = request {
            match check_subscription(ctx, from_clock) {
                Ok(dir) => {
                    return Some(Feed {
                        stream,
                        dir,
                        from_clock,
                    });
                }
                Err(error) => {
                    // A refused subscription is recoverable, like a
                    // refused checkpoint: the connection can still query.
                    if !send(&mut stream, &Response::Error(error), &mut outbuf) {
                        return None;
                    }
                    continue;
                }
            }
        }
        // Zero-copy fast path: queries are answered from the service's
        // sealed-frame cache, whose entries are the exact framed bytes
        // (`len | crc32 | payload`) a fresh encode-and-seal would
        // produce — a repeat query writes the cached allocation straight
        // to the socket.
        let request = match request {
            Request::Query(query) => {
                let sent = match service.query_sealed(&consumer, &query) {
                    Ok(frame) => stream.write_all(&frame).is_ok(),
                    Err(StoreError::Codec(CodecError::FrameTooLarge(_))) => {
                        send_oversize_notice(&mut stream, &mut outbuf)
                    }
                    Err(e) => send(&mut stream, &Response::Error(wire_error(&e)), &mut outbuf),
                };
                if !sent {
                    return None;
                }
                continue;
            }
            Request::Batch(queries) => {
                let sent = match service.query_batch_sealed(&consumer, &queries) {
                    Ok(frame) => stream.write_all(&frame).is_ok(),
                    Err(StoreError::Codec(CodecError::FrameTooLarge(_))) => {
                        send_oversize_notice(&mut stream, &mut outbuf)
                    }
                    Err(e) => send(&mut stream, &Response::Error(wire_error(&e)), &mut outbuf),
                };
                if !sent {
                    return None;
                }
                continue;
            }
            other => other,
        };
        let (response, outcome) = answer(ctx, &consumer, request);
        if !send(&mut stream, &response, &mut outbuf) {
            return None;
        }
        if let Outcome::HangUp = outcome {
            counters.hangups.fetch_add(1, Ordering::Relaxed);
            let _ = stream.shutdown(Shutdown::Both);
            return None;
        }
    }
}

/// Best-effort typed error, then hang up: the malformed-frame path.
fn malformed_hangup(
    stream: &mut TcpStream,
    detail: &str,
    outbuf: &mut Vec<u8>,
    counters: &Counters,
) {
    let error = WireError::new(
        WireErrorKind::BadRequest,
        format!("malformed frame: {detail}"),
    );
    if let Ok(payload) = encode_response(&Response::Error(error)) {
        let _ = write_frame(stream, &payload, outbuf);
    }
    let _ = stream.shutdown(Shutdown::Both);
    counters.hangups.fetch_add(1, Ordering::Relaxed);
}

/// Validates a subscription request, returning the durable directory the
/// feeder will tail — or the typed refusal to send.
fn check_subscription(ctx: &ConnCtx<'_>, from_clock: u64) -> Result<PathBuf, WireError> {
    if !ctx.config.allow_replication {
        return Err(WireError::new(
            WireErrorKind::NotAuthorized,
            "replication is disabled on this server; its operator must opt in (--allow-replication)",
        ));
    }
    let dir = ctx
        .service
        .store()
        .and_then(|store: &Arc<Store>| store.durable_dir());
    let Some(dir) = dir else {
        return Err(WireError::new(
            WireErrorKind::NotDurable,
            "this server has no write-ahead log to stream; replication needs a durable store",
        ));
    };
    let epoch = ctx.service.epoch();
    if from_clock > epoch {
        // A subscriber ahead of its primary replayed a different
        // history; feeding it would silently fork the replica set.
        return Err(WireError::new(
            WireErrorKind::BadRequest,
            format!("subscriber clock {from_clock} is ahead of this primary's epoch {epoch}"),
        ));
    }
    Ok(dir)
}

/// Target sealed-frame bytes per [`Response::WalChunk`]; chunks stop at
/// the first frame boundary past this.
const FEED_CHUNK_BYTES: usize = 256 << 10;
/// How often a caught-up feeder re-reads the store clock.
const FEED_POLL: Duration = Duration::from_millis(10);
/// How often a caught-up feeder sends an empty heartbeat chunk — the
/// subscriber's lag/liveness signal, and the feeder's only way to notice
/// a dead peer while idle.
const FEED_HEARTBEAT: Duration = Duration::from_millis(250);

/// The feeder loop: streams [`Response::WalChunk`] frames until the
/// subscriber hangs up, the server shuts down, or the log becomes
/// unreadable. Runs on a dedicated per-subscriber thread.
fn serve_subscription(
    service: &AccountService,
    counters: &Counters,
    shutdown: &AtomicBool,
    stream: &mut TcpStream,
    dir: &std::path::Path,
    from_clock: u64,
    outbuf: &mut Vec<u8>,
) {
    let mut next = from_clock;
    // A subscriber at clock 0 has nothing — not even the lattice, which
    // frames cannot rebuild — so its stream opens with a snapshot. A
    // non-zero clock proves a snapshot was already installed once.
    let mut snapshot_due = next == 0;
    // The cursor keeps each chunk O(chunk): without it every read
    // re-scans the covering segment from its header.
    let mut tail = wal::TailCursor::default();
    let mut last_send = Instant::now();
    let send = |stream: &mut TcpStream, chunk: WalChunk, outbuf: &mut Vec<u8>| {
        let Ok(payload) = encode_response(&Response::WalChunk(chunk)) else {
            return false; // chunk cannot be framed: end the feed
        };
        write_frame(stream, &payload, outbuf).is_ok()
    };
    loop {
        if shutdown.load(Ordering::SeqCst) {
            return;
        }
        let current = service.epoch();
        if snapshot_due {
            // Backfill: the subscriber's clock predates the retained
            // log. The newest snapshot both bootstraps cold replicas
            // and fast-forwards badly lagged ones.
            let Ok((clock, bytes)) = wal::read_newest_snapshot(dir) else {
                let error = WireError::new(
                    WireErrorKind::Internal,
                    "the primary's log no longer covers this subscriber and no snapshot decodes",
                );
                if let Ok(payload) = encode_response(&Response::Error(error)) {
                    let _ = write_frame(stream, &payload, outbuf);
                }
                return;
            };
            if clock < next {
                // The snapshot is *behind* the subscriber yet the log
                // does not cover it either: diverged history.
                let error = WireError::new(
                    WireErrorKind::Internal,
                    format!(
                        "retained history restarts at clock {clock}, behind subscriber clock {next}"
                    ),
                );
                if let Ok(payload) = encode_response(&Response::Error(error)) {
                    let _ = write_frame(stream, &payload, outbuf);
                }
                return;
            }
            // A snapshot too large for one frame would make write_frame
            // refuse the chunk and the replica retry forever with no
            // diagnosis; tell it the real problem instead. (Chunked
            // snapshot shipping is the fix if stores ever grow there.)
            if bytes.len() as u64 + 256 > plus_store::codec::MAX_FRAME_LEN as u64 {
                let error = WireError::new(
                    WireErrorKind::Internal,
                    format!(
                        "the {}-byte backfill snapshot exceeds the wire frame bound; \
                         this store is too large to bootstrap a replica over this protocol",
                        bytes.len()
                    ),
                );
                if let Ok(payload) = encode_response(&Response::Error(error)) {
                    let _ = write_frame(stream, &payload, outbuf);
                }
                return;
            }
            let chunk = WalChunk {
                start_clock: clock,
                primary_epoch: current,
                snapshot: Some(bytes),
                frames: Vec::new(),
            };
            if !send(stream, chunk, outbuf) {
                return;
            }
            counters.snapshots_shipped.fetch_add(1, Ordering::Relaxed);
            last_send = Instant::now();
            next = clock;
            snapshot_due = false;
            continue;
        }
        if next < current {
            match wal::read_frames_with(dir, next, current, FEED_CHUNK_BYTES, &mut tail) {
                Ok(Some(chunk)) if chunk.end_clock > next => {
                    let end = chunk.end_clock;
                    let frame_chunk = WalChunk {
                        start_clock: chunk.start_clock,
                        primary_epoch: current,
                        snapshot: None,
                        frames: chunk.frames,
                    };
                    if !send(stream, frame_chunk, outbuf) {
                        return;
                    }
                    last_send = Instant::now();
                    next = end;
                }
                // Covered but empty: the covering segment is mid-write
                // (rotation race). Let the writer finish.
                Ok(Some(_)) => std::thread::sleep(FEED_POLL),
                // A checkpoint pruned past the subscriber mid-stream.
                Ok(None) => snapshot_due = true,
                Err(_) => {
                    let error = WireError::new(
                        WireErrorKind::Internal,
                        "the primary's write-ahead log became unreadable",
                    );
                    if let Ok(payload) = encode_response(&Response::Error(error)) {
                        let _ = write_frame(stream, &payload, outbuf);
                    }
                    return;
                }
            }
        } else if last_send.elapsed() >= FEED_HEARTBEAT {
            let heartbeat = WalChunk {
                start_clock: next,
                primary_epoch: current,
                snapshot: None,
                frames: Vec::new(),
            };
            if !send(stream, heartbeat, outbuf) {
                return;
            }
            last_send = Instant::now();
        } else {
            std::thread::sleep(FEED_POLL);
        }
    }
}

/// Computes the response for one decoded in-session request.
fn answer(ctx: &ConnCtx<'_>, consumer: &Consumer, request: Request) -> (Response, Outcome) {
    let ConnCtx {
        service, config, ..
    } = *ctx;
    match request {
        Request::Hello { .. } => (
            Response::Error(WireError::new(
                WireErrorKind::BadRequest,
                "connection is already past its Hello",
            )),
            Outcome::HangUp,
        ),
        Request::Query(query) => match service.query(consumer, &query) {
            Ok(response) => (Response::Query(response), Outcome::Continue),
            Err(e) => (Response::Error(wire_error(&e)), Outcome::Continue),
        },
        Request::Batch(queries) => match service.query_batch(consumer, &queries) {
            Ok(responses) => (Response::Batch(responses), Outcome::Continue),
            Err(e) => (Response::Error(wire_error(&e)), Outcome::Continue),
        },
        Request::Epoch => (Response::Epoch(service.epoch()), Outcome::Continue),
        Request::Checkpoint => {
            if !config.allow_remote_checkpoint {
                return (
                    Response::Error(WireError::new(
                        WireErrorKind::NotAuthorized,
                        "remote checkpoints are disabled on this server",
                    )),
                    Outcome::Continue,
                );
            }
            let result = match service.store() {
                Some(store) => store.checkpoint(),
                None => Err(StoreError::NotDurable),
            };
            match result {
                Ok(stats) => (Response::Checkpoint(stats), Outcome::Continue),
                Err(e) => (Response::Error(wire_error(&e)), Outcome::Continue),
            }
        }
        // Handled (or refused) before `answer` — a subscription owns the
        // connection and never produces a single response.
        Request::Subscribe { .. } => (
            Response::Error(WireError::new(
                WireErrorKind::Internal,
                "subscription requests are handled by the feeder",
            )),
            Outcome::HangUp,
        ),
        Request::ReplicaStatus => {
            let local_epoch = service.epoch();
            let status = match ctx.monitor {
                Some(monitor) => monitor.status(local_epoch),
                // A plain server *is* the primary of whatever it
                // serves: its epoch is authoritative by definition.
                None => ReplicaStatus {
                    role: ReplicaRole::Primary,
                    local_epoch,
                    primary_epoch: local_epoch,
                    connected: true,
                    last_error: None,
                },
            };
            (Response::ReplicaStatus(status), Outcome::Continue)
        }
    }
}
