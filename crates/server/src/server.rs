//! The readiness-based TCP query server.
//!
//! One blocking accept thread performs **admission control** (connection
//! cap, best-effort typed [`WireErrorKind::Overloaded`] refusals) and
//! hands admitted sockets round-robin to a small set of **event-loop
//! shards** ([`ServerConfig::threads`] of them). Each shard owns a
//! [`reactor::Poller`] and a slab of nonblocking per-connection state
//! machines; it only touches connections the kernel reports ready, so
//! ten thousand idle connections cost ten thousand fds and their
//! buffers — not ten thousand threads. Requests are answered inline on
//! the shard: the sealed-frame cache makes the hot path a lookup plus a
//! queued refcount, far cheaper than a cross-thread handoff.
//!
//! # Connection protocol
//!
//! A connection must open with [`Request::Hello`]; the server resolves
//! the claimed predicate names against its lattice, derives the
//! connection's [`Consumer`] (empty claims = Public), and answers with
//! its own Hello. Every later frame is a query, epoch probe, or
//! checkpoint request. Recoverable failures come back as typed
//! [`Response::Error`] frames and leave the connection open; a malformed
//! frame (bad checksum, oversized length, undecodable payload) gets a
//! best-effort error frame and a hangup — the server never guesses at
//! intent.
//!
//! # Admission control and backpressure
//!
//! Three levers keep an overloaded or hostile client from taking the
//! server down with it, each answering with the retryable
//! [`WireErrorKind::Overloaded`] where a reply is still possible:
//!
//! * **Connection cap** ([`ServerConfig::max_conns`]): past it the
//!   accept thread refuses the dial with a best-effort `Overloaded`
//!   frame and closes — no shard ever owns the socket.
//! * **Per-consumer rate limits** ([`ServerConfig::rate_limit`]): a
//!   token bucket per (peer IP, consumer name) pair — resolved at
//!   Hello, shared across that consumer's connections from that
//!   address; an exhausted bucket refuses the request but keeps the
//!   connection. Names arrive unauthenticated, so the source address
//!   in the key stops one client from draining a name it spoofed.
//! * **Write backpressure**: responses queue per connection (cached
//!   frames by refcount, never copied); past a high-water mark the shard
//!   stops *reading* that connection until the queue drains, so a slow
//!   reader's memory is bounded by roughly the mark plus one frame. A
//!   connection making no write progress for
//!   [`ServerConfig::write_stall_timeout`] is closed and counted as an
//!   overload drop.
//!
//! Connections that never complete a Hello are reaped after
//! [`ServerConfig::handshake_timeout`]; an optional
//! [`ServerConfig::idle_timeout`] reaps quiet post-handshake
//! connections.
//!
//! # Shutdown
//!
//! [`Server::shutdown`] (or drop) stops accepting and **drains**: every
//! in-flight request completes (requests run inline, so none are ever
//! abandoned half-executed), queued-but-unsent responses flush, all
//! bounded by [`ServerConfig::drain_timeout`]; then sockets close and
//! every thread joins. Idle connections close immediately.
//!
//! # Replication
//!
//! Replication subscriptions do not stay on the event loops: an accepted
//! [`Request::Subscribe`] *extracts* the socket from its shard, flips it
//! back to blocking, and hands it to a dedicated feeder thread for the
//! subscriber's lifetime — a feeder pushes a continuous WAL stream and
//! has none of the request/response rhythm the reactor is shaped for.

use std::collections::{HashMap, VecDeque};
use std::io::{self, Read, Write};
use std::net::{Shutdown, SocketAddr, TcpListener, TcpStream, ToSocketAddrs};
use std::path::PathBuf;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

use bytes::Bytes;
use parking_lot::Mutex;
use plus_store::codec::{crc32, seal_frame, FRAME_HEADER_LEN, MAX_FRAME_LEN};
use plus_store::wal;
use plus_store::wire::{
    decode_request, encode_response, ReplicaRole, ReplicaStatus, Request, Response, ServerHello,
    ShardStatusInfo, WalChunk, WireError, WireErrorKind, WriteOp, PROTOCOL_VERSION,
};
use plus_store::{AccountService, CodecError, QueryRequest, Store, StoreError};
use reactor::{Events, Interest, Poller, Token, Waker};
use surrogate_core::credential::Consumer;
use surrogate_core::privilege::PrivilegeId;
use surrogate_core::shard::Partition;

use crate::admission::RateLimiter;
use crate::metrics::{self, OverloadReason, RequestType, ServerMetrics};
use crate::replica::{Replica, ReplicationMonitor};
use crate::scatter::Gather;
use crate::topology::Topology;

/// What a server *is* in its deployment — the topology role the unified
/// [`Server::bind`] constructor serves under.
///
/// One server binary, four shapes. The role decides which requests are
/// honored, how queries are gated, and what the server announces about
/// the deployment in its Hello and `ShardStatus` answers:
///
/// * [`Primary`](Role::Primary) — an ordinary single-store server (the
///   default).
/// * [`Replica`](Role::Replica) — fronts a [`Replica`]'s store
///   read-only, answering `ReplicaStatus` with the live feed state and
///   refusing writes with a `NotWritable` redirect to the primary.
/// * [`Shard`](Role::Shard) — one shard primary of a partitioned
///   deployment: point reads and routed writes for the ids it owns,
///   typed `WrongShard` redirects for the rest. Composes with a
///   replication feed (`feed: Some(monitor)`) for a **shard replica**
///   that serves read-only until promoted.
/// * [`Gather`](Role::Gather) — fronts a [`Gather`]'s merged graph,
///   refusing cross-shard queries while any feed is down rather than
///   answering with a silent gap.
#[derive(Clone, Default)]
#[non_exhaustive]
pub enum Role {
    /// An ordinary single-store server: serves queries, owns its store.
    #[default]
    Primary,
    /// Fronts a replica store: read-only at the feed's (possibly
    /// lagging) epoch until the monitor is promoted.
    Replica {
        /// The replica's monitor, from [`Replica::monitor`].
        feed: Arc<ReplicationMonitor>,
    },
    /// One shard primary (or shard replica) of a partitioned
    /// deployment. The bound service must be backed by a store
    /// partitioned exactly `index`/`count`
    /// ([`Store::create_durable_partitioned`]); remote writes are
    /// implied on.
    Shard {
        /// This server's shard slot.
        index: u32,
        /// The deployment's shard count.
        count: u32,
        /// The full deployment map (primaries and replica sets, in
        /// shard order), so `WrongShard` redirects carry the owner's
        /// address and `ShardStatus` announces the replica table. An
        /// empty (default) topology degrades redirects to decimal
        /// shard indexes.
        topology: Topology,
        /// `Some` when this shard server fronts a [`Replica`] that has
        /// not been promoted yet — a **shard replica**: it refuses
        /// writes with `NotWritable` until promotion, then serves as
        /// the shard's new primary.
        feed: Option<Arc<ReplicationMonitor>>,
    },
    /// Fronts a [`Gather`]'s merged multi-shard graph. The bound
    /// service must be the gather's own ([`Gather::service`]).
    Gather {
        /// The running gather whose merge this server serves.
        gather: Arc<Gather>,
    },
}

impl std::fmt::Debug for Role {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            Role::Primary => f.write_str("Primary"),
            Role::Replica { .. } => f.write_str("Replica"),
            Role::Shard { index, count, .. } => write!(f, "Shard({index}/{count})"),
            Role::Gather { .. } => f.write_str("Gather"),
        }
    }
}

/// Tuning knobs for [`Server::bind`].
#[derive(Debug, Clone)]
pub struct ServerConfig {
    /// The topology role this server fills — see [`Role`]. Defaults to
    /// [`Role::Primary`].
    pub role: Role,
    /// Event-loop shards. Each owns its own poller and slab of
    /// connections; accepted sockets are dealt round-robin.
    pub threads: usize,
    /// Whether remote [`Request::Checkpoint`] frames are honored.
    /// Off by default: checkpointing is an operator action (it drives
    /// owner-side disk I/O), and the Hello handshake verifies nothing,
    /// so an open socket should not expose it to every consumer.
    pub allow_remote_checkpoint: bool,
    /// Whether [`Request::Subscribe`] frames are honored. Off by
    /// default — and **dangerous to enable on a consumer-facing
    /// socket**: the replication stream ships *raw* write-ahead-log
    /// records (original labels, features, policy), not protected
    /// views. Enable it only on a socket that stays inside the owner's
    /// trust domain (`spgraph serve --allow-replication`).
    pub allow_replication: bool,
    /// Whether [`Request::Write`] frames are honored. Off by default:
    /// the query socket serves *protected* views, and the Hello
    /// handshake verifies nothing, so writes over the wire belong only
    /// on sockets inside the owner's trust domain — the shard primaries
    /// of a partitioned deployment (`spgraph serve --shard i/n`, which
    /// implies it).
    pub allow_remote_write: bool,
    /// Most sockets the server will own at once (event loops plus
    /// feeders). Dials past the cap are refused at accept with a
    /// best-effort [`WireErrorKind::Overloaded`] frame.
    pub max_conns: usize,
    /// Per-consumer sustained request-frames-per-second budget (bursts
    /// up to one second's worth). `None` (the default) disables rate
    /// limiting. Buckets are keyed by (peer IP, consumer name as
    /// claimed at Hello), shared across all of that consumer's
    /// connections from that address — names are unauthenticated, so
    /// the address scope keeps a spoofed name from draining the real
    /// consumer's budget and gives anonymous clients per-address
    /// buckets instead of one shared one.
    pub rate_limit: Option<u64>,
    /// Where to serve the Prometheus `GET /metrics` endpoint; `None`
    /// (the default) disables it. Always a separate listener so
    /// observability survives query-socket saturation.
    pub metrics_addr: Option<SocketAddr>,
    /// How long a connection may sit without completing its Hello
    /// before being reaped (connect-and-never-speak costs one fd, not
    /// one forever).
    pub handshake_timeout: Duration,
    /// Reap a post-handshake connection after this much quiet. `None`
    /// (the default) keeps idle connections forever — connection pools
    /// rely on that.
    pub idle_timeout: Option<Duration>,
    /// How long a connection with queued responses may make zero write
    /// progress before it is closed as an overload drop (the
    /// stopped-reading client).
    pub write_stall_timeout: Duration,
    /// Shutdown grace: how long the drain (flushing queued responses)
    /// may take before remaining sockets are closed hard.
    pub drain_timeout: Duration,
}

impl Default for ServerConfig {
    fn default() -> Self {
        let threads = std::thread::available_parallelism()
            .map(|n| n.get())
            .unwrap_or(4)
            .clamp(2, 8);
        Self {
            role: Role::Primary,
            threads,
            allow_remote_checkpoint: false,
            allow_replication: false,
            allow_remote_write: false,
            max_conns: 16 * 1024,
            rate_limit: None,
            metrics_addr: None,
            handshake_timeout: Duration::from_secs(10),
            idle_timeout: None,
            write_stall_timeout: Duration::from_secs(10),
            drain_timeout: Duration::from_secs(5),
        }
    }
}

/// Monotone counters describing a server's lifetime traffic.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct ServerStats {
    /// Connections that completed a Hello handshake.
    pub connections: u64,
    /// Request frames answered (Hello excluded).
    pub requests: u64,
    /// Connections hung up on for a malformed frame or protocol
    /// violation.
    pub hangups: u64,
    /// Replication subscriptions accepted (feeder loops entered).
    pub subscriptions: u64,
    /// Snapshots shipped to backfilling subscribers. A warm subscriber
    /// resuming from its local clock never costs one.
    pub snapshots_shipped: u64,
    /// Connections or requests shed by admission control (connection
    /// cap, rate limit, write stall).
    pub overload_drops: u64,
    /// Connections reaped by the handshake or idle timeout.
    pub idle_reaped: u64,
}

/// Outbound queue high-water mark: a connection with more unsent bytes
/// than this stops being read until it drains (backpressure).
const OUT_HIGH_WATER: usize = 1 << 20;
/// Resume reading once the queue drains below this.
const OUT_LOW_WATER: usize = OUT_HIGH_WATER / 2;
/// Most bytes read from one connection per readiness event, so a
/// firehose cannot starve its shard-mates (level-triggered readiness
/// re-reports the rest immediately).
const READ_BUDGET: usize = 256 << 10;
/// How often a shard sweeps its slab for timed-out connections.
const SWEEP_INTERVAL: Duration = Duration::from_millis(250);
/// The waker's slot in each shard's token space.
const WAKE_TOKEN: Token = Token(u64::MAX);

/// A running query server. Dropping it (or calling
/// [`shutdown`](Server::shutdown)) stops the accept loop, drains live
/// connections, and joins all threads.
pub struct Server {
    local_addr: SocketAddr,
    metrics_addr: Option<SocketAddr>,
    shutdown: Arc<AtomicBool>,
    metrics: Arc<ServerMetrics>,
    inboxes: Vec<Arc<ShardInbox>>,
    shards: Vec<JoinHandle<()>>,
    accept: Option<JoinHandle<()>>,
    feeders: Arc<FeederSet>,
    metrics_thread: Option<JoinHandle<()>>,
}

impl std::fmt::Debug for Server {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Server")
            .field("local_addr", &self.local_addr)
            .field("shards", &self.shards.len())
            .field("stats", &self.stats())
            .finish()
    }
}

impl Server {
    /// Binds `addr` and starts serving `service` under
    /// [`ServerConfig::role`] — the **one** constructor every topology
    /// role goes through.
    ///
    /// * [`Role::Primary`] needs nothing else.
    /// * [`Role::Replica`] serves `replica.service().clone()` read-only;
    ///   pass `feed: replica.monitor()`.
    /// * [`Role::Shard`] requires `service` to be backed by a store
    ///   partitioned exactly `index`/`count`
    ///   ([`Store::create_durable_partitioned`]); a non-empty topology
    ///   must agree on the shard count. Remote writes are forced on.
    /// * [`Role::Gather`] requires `service` to be the gather's own
    ///   ([`Gather::service`]).
    ///
    /// Fails with [`io::ErrorKind::InvalidInput`] when the service and
    /// the role disagree.
    pub fn bind(
        service: Arc<AccountService>,
        addr: impl ToSocketAddrs,
        config: &ServerConfig,
    ) -> io::Result<Server> {
        let mut config = config.clone();
        let invalid = |message: String| io::Error::new(io::ErrorKind::InvalidInput, message);
        let (monitor, shard) = match config.role.clone() {
            Role::Primary => (None, None),
            Role::Replica { feed } => (Some(feed), None),
            Role::Shard {
                index,
                count,
                topology,
                feed,
            } => {
                let partition = service
                    .store()
                    .and_then(|store| store.partition())
                    .ok_or_else(|| {
                        invalid(
                            "Role::Shard needs a partitioned store \
                             (Store::create_durable_partitioned)"
                                .to_string(),
                        )
                    })?;
                if (partition.index(), partition.count()) != (index, count) {
                    return Err(invalid(format!(
                        "Role::Shard says shard {index}/{count} but the store is \
                         partitioned {}/{}",
                        partition.index(),
                        partition.count()
                    )));
                }
                if !topology.is_empty() && topology.shard_count() != count {
                    return Err(invalid(format!(
                        "topology names {} shards but the store is partitioned {count}-way",
                        topology.shard_count()
                    )));
                }
                config.allow_remote_write = true;
                let role = Arc::new(ShardRole::Shard {
                    partition,
                    peers: topology.primaries(),
                    replicas: topology.replica_table(),
                });
                (feed, Some(role))
            }
            Role::Gather { gather } => {
                if !Arc::ptr_eq(&service, gather.service()) {
                    return Err(invalid(
                        "Role::Gather must bind the gather's own service \
                         (pass gather.service().clone())"
                            .to_string(),
                    ));
                }
                (None, Some(Arc::new(ShardRole::Gather(gather))))
            }
        };
        Self::bind_inner(service, addr, config, monitor, shard)
    }

    /// [`bind`](Self::bind) with owned tuning.
    #[deprecated(
        since = "0.10.0",
        note = "call `Server::bind(service, addr, &config)` — the unified constructor \
                takes the config by reference and reads the topology role from \
                `ServerConfig::role`"
    )]
    pub fn bind_with(
        service: Arc<AccountService>,
        addr: impl ToSocketAddrs,
        config: ServerConfig,
    ) -> io::Result<Server> {
        Self::bind(service, addr, &config)
    }

    /// Binds a server in front of a [`Replica`]: it serves the same
    /// query protocol read-only at the replica's (possibly lagging)
    /// epoch, and answers [`Request::ReplicaStatus`] with the replica's
    /// live link state instead of the primary default.
    #[deprecated(
        since = "0.10.0",
        note = "set `config.role = Role::Replica { feed: replica.monitor() }` and call \
                `Server::bind(replica.service().clone(), addr, &config)`"
    )]
    pub fn bind_replica(
        replica: &Replica,
        addr: impl ToSocketAddrs,
        mut config: ServerConfig,
    ) -> io::Result<Server> {
        config.role = Role::Replica {
            feed: replica.monitor(),
        };
        Self::bind(replica.service().clone(), addr, &config)
    }

    /// Binds one shard primary of a partitioned deployment: the service
    /// must be backed by a partitioned store
    /// ([`Store::create_durable_partitioned`]), and `peers` — when
    /// non-empty — names every shard's address in shard order, so
    /// mis-routed writes are refused with a
    /// [`WireErrorKind::WrongShard`] redirect that carries the owner's
    /// address.
    #[deprecated(
        since = "0.10.0",
        note = "set `config.role = Role::Shard { index, count, topology, feed: None }` \
                (build the topology with `Topology::from_peers` or `Topology::parse`) \
                and call `Server::bind(service, addr, &config)`"
    )]
    pub fn bind_sharded(
        service: Arc<AccountService>,
        addr: impl ToSocketAddrs,
        mut config: ServerConfig,
        peers: &[&str],
    ) -> io::Result<Server> {
        let partition = service
            .store()
            .and_then(|store| store.partition())
            .ok_or_else(|| {
                io::Error::new(
                    io::ErrorKind::InvalidInput,
                    "bind_sharded needs a partitioned store (Store::create_durable_partitioned)",
                )
            })?;
        let topology = if peers.is_empty() {
            Topology::default()
        } else {
            Topology::from_peers(peers.iter().copied())
                .map_err(|e| io::Error::new(io::ErrorKind::InvalidInput, e.to_string()))?
        };
        if !topology.is_empty() && topology.shard_count() != partition.count() {
            return Err(io::Error::new(
                io::ErrorKind::InvalidInput,
                format!(
                    "peer list names {} shards but the store is partitioned {}-way",
                    topology.shard_count(),
                    partition.count()
                ),
            ));
        }
        config.role = Role::Shard {
            index: partition.index(),
            count: partition.count(),
            topology,
            feed: None,
        };
        Self::bind(service, addr, &config)
    }

    /// Binds a server in front of a [`Gather`]: it serves the ordinary
    /// query protocol over the merged multi-shard graph, stamps every
    /// response with the per-shard epoch vector, refuses queries with
    /// [`WireErrorKind::ShardUnavailable`] while any shard feed is down
    /// (a partial merge would be a silent gap), and answers mis-routed
    /// writes with a [`WireErrorKind::WrongShard`] redirect to the
    /// owning shard.
    #[deprecated(
        since = "0.10.0",
        note = "set `config.role = Role::Gather { gather }` and call \
                `Server::bind(gather_service, addr, &config)` with the gather's own \
                service (`gather.service().clone()`, captured before the move)"
    )]
    pub fn bind_gather(
        gather: Arc<Gather>,
        addr: impl ToSocketAddrs,
        mut config: ServerConfig,
    ) -> io::Result<Server> {
        let service = gather.service().clone();
        config.role = Role::Gather { gather };
        Self::bind(service, addr, &config)
    }

    fn bind_inner(
        service: Arc<AccountService>,
        addr: impl ToSocketAddrs,
        config: ServerConfig,
        monitor: Option<Arc<ReplicationMonitor>>,
        shard: Option<Arc<ShardRole>>,
    ) -> io::Result<Server> {
        let listener = TcpListener::bind(addr)?;
        let local_addr = listener.local_addr()?;
        let shutdown = Arc::new(AtomicBool::new(false));
        let server_metrics = Arc::new(ServerMetrics::default());
        let feeders = Arc::new(FeederSet::default());

        let (metrics_addr, metrics_thread) = match config.metrics_addr {
            Some(addr) => {
                let (bound, handle) = metrics::spawn_metrics_listener(
                    addr,
                    server_metrics.clone(),
                    service.clone(),
                    monitor.clone(),
                    shutdown.clone(),
                )?;
                (Some(bound), Some(handle))
            }
            None => (None, None),
        };

        let threads = config.threads.max(1);
        let max_conns = config.max_conns;
        let ctx = Arc::new(ShardCtx {
            service,
            metrics: server_metrics.clone(),
            limiter: config.rate_limit.map(RateLimiter::new),
            config,
            monitor,
            shutdown: shutdown.clone(),
            feeders: feeders.clone(),
            shard,
        });

        let mut inboxes = Vec::with_capacity(threads);
        let mut shards = Vec::with_capacity(threads);
        for i in 0..threads {
            let poller = Poller::new()?;
            let waker = Waker::new(&poller, WAKE_TOKEN)?;
            let inbox = Arc::new(ShardInbox {
                queue: Mutex::new(Vec::new()),
                waker,
            });
            inboxes.push(inbox.clone());
            let ctx = ctx.clone();
            shards.push(
                std::thread::Builder::new()
                    .name(format!("spgraph-shard-{i}"))
                    .spawn(move || {
                        Shard {
                            poller,
                            inbox,
                            ctx,
                            slab: Slab::default(),
                        }
                        .run()
                    })
                    .expect("spawn shard thread"),
            );
        }

        let accept = {
            let shutdown = shutdown.clone();
            let inboxes = inboxes.clone();
            let metrics = server_metrics.clone();
            std::thread::Builder::new()
                .name("spgraph-accept".into())
                .spawn(move || accept_loop(listener, shutdown, inboxes, metrics, max_conns))
                .expect("spawn accept thread")
        };

        Ok(Server {
            local_addr,
            metrics_addr,
            shutdown,
            metrics: server_metrics,
            inboxes,
            shards,
            accept: Some(accept),
            feeders,
            metrics_thread,
        })
    }

    /// The address the server actually bound (resolves `:0`).
    pub fn local_addr(&self) -> SocketAddr {
        self.local_addr
    }

    /// The address the Prometheus `GET /metrics` endpoint actually
    /// bound (resolves `:0`); `None` when
    /// [`ServerConfig::metrics_addr`] was not set.
    pub fn metrics_local_addr(&self) -> Option<SocketAddr> {
        self.metrics_addr
    }

    /// The live instrument registry — every counter, gauge, and latency
    /// histogram the `/metrics` endpoint renders, readable in-process.
    pub fn metrics(&self) -> &ServerMetrics {
        &self.metrics
    }

    /// A snapshot of the traffic counters.
    pub fn stats(&self) -> ServerStats {
        ServerStats {
            connections: self.metrics.connections_total.get(),
            requests: self.metrics.requests_total(),
            hangups: self.metrics.hangups.get(),
            subscriptions: self.metrics.subscriptions_total.get(),
            snapshots_shipped: self.metrics.snapshots_shipped.get(),
            overload_drops: self.metrics.overload_drops_total(),
            idle_reaped: self.metrics.idle_reaped.get(),
        }
    }

    /// Stops accepting, drains and hangs up every live connection
    /// (bounded by [`ServerConfig::drain_timeout`]), and joins all
    /// threads. Equivalent to dropping the server, but explicit.
    pub fn shutdown(mut self) {
        self.stop();
    }

    fn stop(&mut self) {
        if self.shutdown.swap(true, Ordering::SeqCst) {
            return;
        }
        // Shards poll with a bounded timeout, so a wake just shortens
        // the latency of noticing the flag.
        for inbox in &self.inboxes {
            let _ = inbox.waker.wake();
        }
        // Unblock the accept loop with a wake-up connection; it
        // re-checks the flag per accepted connection. A wildcard bind
        // (0.0.0.0 / ::) is not dialable on every platform, so rewrite
        // it to the matching loopback.
        let woke = TcpStream::connect_timeout(
            &dialable(self.local_addr),
            std::time::Duration::from_secs(1),
        )
        .is_ok();
        // Feeders exit on their own: their sockets just closed, and they
        // re-check the shutdown flag at least every poll interval.
        for feeder in self.feeders.close_all() {
            let _ = feeder.join();
        }
        // Shards drain (flush queued responses, bounded) and exit; they
        // never block indefinitely, so these joins always complete.
        for shard in self.shards.drain(..) {
            let _ = shard.join();
        }
        if woke {
            if let Some(accept) = self.accept.take() {
                let _ = accept.join();
            }
        } else {
            // The wake-up could not be delivered (e.g. a firewalled
            // self-connect): the accept thread stays parked in
            // `accept()`; detach it instead of deadlocking the caller.
            self.accept.take();
        }
        if let Some(handle) = self.metrics_thread.take() {
            // Same trick for the scrape listener's blocking accept.
            let addr = self.metrics_addr.expect("metrics thread implies addr");
            if TcpStream::connect_timeout(&dialable(addr), Duration::from_secs(1)).is_ok() {
                let _ = handle.join();
            }
        }
    }
}

impl Drop for Server {
    fn drop(&mut self) {
        self.stop();
    }
}

/// Rewrites a wildcard address (0.0.0.0 / ::) to the matching loopback
/// so it can be dialed for a wake-up connection.
fn dialable(mut addr: SocketAddr) -> SocketAddr {
    if addr.ip().is_unspecified() {
        addr.set_ip(match addr {
            SocketAddr::V4(_) => std::net::IpAddr::V4(std::net::Ipv4Addr::LOCALHOST),
            SocketAddr::V6(_) => std::net::IpAddr::V6(std::net::Ipv6Addr::LOCALHOST),
        });
    }
    addr
}

// ---------------------------------------------------------------------------
// Accept thread: admission control and shard handoff
// ---------------------------------------------------------------------------

/// Where the accept thread parks admitted sockets for a shard, plus the
/// waker that tells the shard to look.
struct ShardInbox {
    queue: Mutex<Vec<TcpStream>>,
    waker: Waker,
}

fn accept_loop(
    listener: TcpListener,
    shutdown: Arc<AtomicBool>,
    inboxes: Vec<Arc<ShardInbox>>,
    metrics: Arc<ServerMetrics>,
    max_conns: usize,
) {
    let mut next_shard = 0usize;
    for stream in listener.incoming() {
        if shutdown.load(Ordering::SeqCst) {
            break;
        }
        let stream = match stream {
            Ok(stream) => stream,
            // A handful of per-connection errors (the peer aborted
            // mid-handshake) resolve themselves; anything else —
            // EMFILE/ENFILE above all, which is exactly what an fd
            // flood produces — persists, and retrying instantly would
            // pin a core at 100%. Back off briefly instead.
            Err(e) => {
                if !matches!(
                    e.kind(),
                    io::ErrorKind::ConnectionAborted
                        | io::ErrorKind::ConnectionReset
                        | io::ErrorKind::Interrupted
                        | io::ErrorKind::WouldBlock
                ) {
                    std::thread::sleep(Duration::from_millis(50));
                }
                continue;
            }
        };
        // Admission: the connection cap bounds every socket the server
        // owns (event loops + feeders). Refusing *here* means no shard
        // ever spends a slab slot or a buffer on the socket.
        if metrics.connections_open.get() >= max_conns as i64 {
            metrics.count_overload(OverloadReason::ConnCap);
            shed_connection(stream, max_conns);
            continue;
        }
        metrics.connections_open.inc();
        // Per-round-trip latency is the product metric; never batch tiny
        // frames behind Nagle.
        let _ = stream.set_nodelay(true);
        if stream.set_nonblocking(true).is_err() {
            metrics.connections_open.dec();
            continue;
        }
        let inbox = &inboxes[next_shard];
        next_shard = (next_shard + 1) % inboxes.len();
        inbox.queue.lock().push(stream);
        let _ = inbox.waker.wake();
    }
}

/// Best-effort typed refusal for a dial past the connection cap, then
/// close. Short write timeout: the server will not wait on a client it
/// is refusing.
fn shed_connection(mut stream: TcpStream, max_conns: usize) {
    let error = Response::Error(WireError::new(
        WireErrorKind::Overloaded,
        format!("connection cap ({max_conns}) reached; retry later or against a replica"),
    ));
    if let Ok(payload) = encode_response(&error) {
        let _ = stream.set_write_timeout(Some(Duration::from_millis(100)));
        let _ = stream.write_all(&seal_frame(&payload));
    }
}

// ---------------------------------------------------------------------------
// Shards: the event loops
// ---------------------------------------------------------------------------

/// Everything a shard (or feeder) needs, shared across all of them.
struct ShardCtx {
    service: Arc<AccountService>,
    metrics: Arc<ServerMetrics>,
    config: ServerConfig,
    monitor: Option<Arc<ReplicationMonitor>>,
    shutdown: Arc<AtomicBool>,
    limiter: Option<RateLimiter>,
    feeders: Arc<FeederSet>,
    shard: Option<Arc<ShardRole>>,
}

/// What this server is in a partitioned deployment, when it is part of
/// one. (The event-loop "shards" above are an unrelated use of the
/// word: those split *connections* across threads, these split the
/// *keyspace* across servers.)
enum ShardRole {
    /// One shard primary: serves point reads for the ids its partition
    /// owns, accepts writes routed here, refuses the rest with typed
    /// redirects. `peers` (when non-empty) names every shard's address
    /// in shard order, so redirects can carry the owner's address.
    Shard {
        partition: Partition,
        peers: Vec<String>,
        /// Per-shard replica addresses (shard order, possibly empty) —
        /// announced in `ShardStatus` answers so clients and gathers
        /// can find promotion candidates without an out-of-band
        /// directory.
        replicas: Vec<Vec<String>>,
    },
    /// A gather node: serves cross-shard queries over the merged graph,
    /// redirects writes to the owning shard.
    Gather(Arc<Gather>),
}

/// Where a connection is in its protocol lifecycle.
enum Phase {
    /// Waiting for the opening Hello.
    AwaitHello,
    /// Handshake done; every request is answered through the session's
    /// protected account.
    Serving(Session),
}

/// The post-Hello identity a connection serves under. `Arc` fields so
/// request handling can hold the session while mutating the
/// connection's queues.
#[derive(Clone)]
struct Session {
    consumer: Arc<Consumer>,
    /// Rate-limit bucket key: peer IP plus resolved consumer name.
    /// Names arrive unauthenticated in the Hello, so a name alone would
    /// let a hostile client drain a victim's budget by claiming it —
    /// and would pool every anonymous client into one shared bucket.
    /// Scoping by source address keeps a consumer's budget shared
    /// across its own connections without either failure mode.
    limit_key: Arc<str>,
}

/// One queued response frame: either a refcounted sealed frame straight
/// from the service's cache (never copied per connection) or an owned
/// one-off encode.
enum OutFrame {
    Shared(Bytes),
    Owned(Vec<u8>),
}

impl OutFrame {
    fn bytes(&self) -> &[u8] {
        match self {
            OutFrame::Shared(b) => b,
            OutFrame::Owned(v) => v,
        }
    }
}

/// One connection's state machine.
struct Conn {
    stream: TcpStream,
    token: Token,
    phase: Phase,
    /// Unconsumed inbound bytes (at most one partial frame plus read
    /// slack once the parser has run).
    inbuf: Vec<u8>,
    outq: VecDeque<OutFrame>,
    /// Bytes of the front frame already written.
    out_head: usize,
    /// Total unwritten bytes across the queue.
    out_bytes: usize,
    /// The interest currently registered with the poller.
    interest: Interest,
    /// Backpressured: outbound queue above high water; reads paused.
    paused: bool,
    /// Close once the outbound queue drains (hangups flush their
    /// best-effort error frame first).
    close_after_flush: bool,
    /// The peer finished sending (EOF observed).
    eof: bool,
    opened: Instant,
    last_read: Instant,
    /// When the outbound queue last shrank (or first took on debt after
    /// being empty). The sweep reaps a connection still owing bytes
    /// whose clock is older than the write-stall timeout — a clock
    /// rather than a "stall observed" flag, because a stopped reader
    /// generates no further events for a flush pass to observe.
    last_write_progress: Instant,
}

impl Conn {
    fn queue(&mut self, frame: OutFrame) {
        if self.out_bytes == 0 {
            // New debt after a clean slate: the stall clock starts now,
            // not at whatever the last drain happened to leave behind.
            self.last_write_progress = Instant::now();
        }
        self.out_bytes += frame.bytes().len();
        self.outq.push_back(frame);
        if self.out_bytes > OUT_HIGH_WATER {
            self.paused = true;
        }
    }
}

/// What an event (or sweep) decided about a connection.
enum Verdict {
    Keep,
    Close,
    /// An accepted subscription: extract the socket for a feeder.
    Handoff(HandoffFeed),
}

/// A validated subscription handed from a shard to its feeder thread.
struct HandoffFeed {
    dir: PathBuf,
    from_clock: u64,
}

/// Generation-tagged connection slab. Tokens pack `generation << 32 |
/// index` so an event raced against a close (same index, new socket)
/// is detected and dropped instead of misdelivered.
#[derive(Default)]
struct Slab {
    conns: Vec<Option<Conn>>,
    free: Vec<u32>,
    next_gen: u32,
}

impl Slab {
    fn insert(&mut self, make: impl FnOnce(Token) -> Conn) -> &mut Conn {
        let gen = self.next_gen;
        self.next_gen = self.next_gen.wrapping_add(1);
        let idx = match self.free.pop() {
            Some(idx) => idx as usize,
            None => {
                self.conns.push(None);
                self.conns.len() - 1
            }
        };
        let token = Token((u64::from(gen) << 32) | idx as u64);
        self.conns[idx] = Some(make(token));
        self.conns[idx].as_mut().expect("just inserted")
    }

    /// The live connection a token refers to, if its generation still
    /// matches.
    fn get_mut(&mut self, token: Token) -> Option<&mut Conn> {
        let idx = (token.0 & 0xffff_ffff) as usize;
        match self.conns.get_mut(idx) {
            Some(Some(conn)) if conn.token == token => self.conns[idx].as_mut(),
            _ => None,
        }
    }

    fn remove(&mut self, token: Token) -> Option<Conn> {
        let idx = (token.0 & 0xffff_ffff) as usize;
        match self.conns.get(idx) {
            Some(Some(conn)) if conn.token == token => {
                self.free.push(idx as u32);
                self.conns[idx].take()
            }
            _ => None,
        }
    }

    fn is_empty(&self) -> bool {
        self.conns.iter().all(Option::is_none)
    }

    fn tokens(&self) -> Vec<Token> {
        self.conns.iter().flatten().map(|conn| conn.token).collect()
    }
}

struct Shard {
    poller: Poller,
    inbox: Arc<ShardInbox>,
    ctx: Arc<ShardCtx>,
    slab: Slab,
}

impl Shard {
    fn run(mut self) {
        let mut events = Events::with_capacity(1024);
        let mut next_sweep = Instant::now() + SWEEP_INTERVAL;
        let mut draining = false;
        let mut drain_deadline = Instant::now();
        loop {
            let timeout = if draining {
                Duration::from_millis(20)
            } else {
                SWEEP_INTERVAL
            };
            if self.poller.wait(&mut events, Some(timeout)).is_err() {
                // A broken poller cannot serve; close everything.
                break;
            }
            if !draining && self.ctx.shutdown.load(Ordering::SeqCst) {
                draining = true;
                drain_deadline = Instant::now() + self.ctx.config.drain_timeout;
                self.begin_drain();
            }
            let mut saw_wake = false;
            for event in events.iter() {
                if event.token() == WAKE_TOKEN {
                    saw_wake = true;
                    continue;
                }
                let verdict = match self.slab.get_mut(event.token()) {
                    Some(conn) => {
                        if event.is_error() {
                            Verdict::Close
                        } else {
                            on_event(&self.poller, &self.ctx, conn, event.is_readable(), draining)
                        }
                    }
                    None => continue, // raced a close; stale token
                };
                self.settle(event.token(), verdict);
            }
            if saw_wake {
                self.inbox.waker.drain();
            }
            // Collect handed-off sockets every pass (cheap), not only on
            // wake events: a wake raced against the previous drain must
            // not strand a socket until the next timeout.
            self.adopt_new(draining);
            let now = Instant::now();
            if draining {
                if self.slab.is_empty() || now >= drain_deadline {
                    self.close_all();
                    break;
                }
            } else if now >= next_sweep {
                next_sweep = now + SWEEP_INTERVAL;
                self.sweep(now);
            }
        }
    }

    /// Moves sockets from the inbox into the slab (or drops them during
    /// drain — the accept thread has already stopped, these raced it).
    fn adopt_new(&mut self, draining: bool) {
        let streams: Vec<TcpStream> = {
            let mut queue = self.inbox.queue.lock();
            if queue.is_empty() {
                return;
            }
            queue.drain(..).collect()
        };
        for stream in streams {
            if draining {
                self.ctx.metrics.connections_open.dec();
                continue;
            }
            let now = Instant::now();
            let conn = self.slab.insert(|token| Conn {
                stream,
                token,
                phase: Phase::AwaitHello,
                inbuf: Vec::with_capacity(512),
                outq: VecDeque::new(),
                out_head: 0,
                out_bytes: 0,
                interest: Interest::READABLE,
                paused: false,
                close_after_flush: false,
                eof: false,
                opened: now,
                last_read: now,
                last_write_progress: now,
            });
            let token = conn.token;
            if self
                .poller
                .register(&conn.stream, token, Interest::READABLE)
                .is_err()
            {
                self.slab.remove(token);
                self.ctx.metrics.connections_open.dec();
            }
        }
    }

    fn settle(&mut self, token: Token, verdict: Verdict) {
        match verdict {
            Verdict::Keep => {}
            Verdict::Close => self.close(token),
            Verdict::Handoff(feed) => self.handoff(token, feed),
        }
    }

    fn close(&mut self, token: Token) {
        if let Some(conn) = self.slab.remove(token) {
            let _ = self.poller.deregister(&conn.stream);
            self.ctx.metrics.connections_open.dec();
        }
    }

    /// Extracts an accepted subscriber from the event loop onto a
    /// dedicated blocking feeder thread (streaming WAL for its
    /// lifetime must not occupy the reactor).
    fn handoff(&mut self, token: Token, feed: HandoffFeed) {
        let Some(conn) = self.slab.remove(token) else {
            return;
        };
        let _ = self.poller.deregister(&conn.stream);
        if conn.stream.set_nonblocking(false).is_err() {
            self.ctx.metrics.connections_open.dec();
            return;
        }
        self.ctx.metrics.subscriptions_total.inc();
        spawn_feeder(self.ctx.clone(), conn, feed);
    }

    /// Entering drain: stop reading everywhere, close already-flushed
    /// connections immediately, keep the rest only to flush.
    fn begin_drain(&mut self) {
        for token in self.slab.tokens() {
            let conn = self.slab.get_mut(token).expect("token just listed");
            if conn.out_bytes == 0 {
                self.close(token);
            } else {
                conn.close_after_flush = true;
                update_interest(&self.poller, conn, true);
            }
        }
    }

    fn close_all(&mut self) {
        for token in self.slab.tokens() {
            self.close(token);
        }
    }

    /// Reaps timed-out connections: unfinished handshakes, optional
    /// idle, and write-stalled peers.
    fn sweep(&mut self, now: Instant) {
        for token in self.slab.tokens() {
            let conn = self.slab.get_mut(token).expect("token just listed");
            let config = &self.ctx.config;
            let reap = if conn.out_bytes > 0 {
                // Owed bytes with no recent write progress: the peer
                // stopped reading. Judged from the progress clock, not
                // from flush passes — a stopped reader produces no
                // events, so no flush pass would run to observe it.
                let stalled = now.saturating_duration_since(conn.last_write_progress)
                    > config.write_stall_timeout;
                if stalled {
                    self.ctx.metrics.count_overload(OverloadReason::WriteStall);
                }
                stalled
            } else if matches!(conn.phase, Phase::AwaitHello) {
                let late = now.saturating_duration_since(conn.opened) > config.handshake_timeout;
                if late {
                    self.ctx.metrics.idle_reaped.inc();
                }
                late
            } else if let Some(idle) = config.idle_timeout {
                let quiet =
                    conn.out_bytes == 0 && now.saturating_duration_since(conn.last_read) > idle;
                if quiet {
                    self.ctx.metrics.idle_reaped.inc();
                }
                quiet
            } else {
                false
            };
            if reap {
                self.close(token);
            }
        }
    }
}

// ---------------------------------------------------------------------------
// Per-connection event handling
// ---------------------------------------------------------------------------

/// Drives one ready connection: read, parse/execute, flush, retune
/// interest. Returns what to do with it.
fn on_event(
    poller: &Poller,
    ctx: &ShardCtx,
    conn: &mut Conn,
    readable: bool,
    draining: bool,
) -> Verdict {
    if readable && !conn.paused && !conn.close_after_flush && !conn.eof && !draining {
        match fill_inbuf(ctx, conn) {
            Fill::Progress => conn.last_read = Instant::now(),
            Fill::Idle => {}
            Fill::Eof => conn.eof = true,
            Fill::Gone => return Verdict::Close,
        }
    }
    // Parse/flush cycle. Flushing below low water unpauses the
    // connection, and the bytes already sitting in `inbuf` will never
    // re-trigger level-triggered readiness — so a successful unpause
    // loops back to the parser.
    loop {
        if !conn.paused && !conn.close_after_flush && !draining {
            if let Parsed::Handoff(feed) = parse_frames(ctx, conn) {
                return Verdict::Handoff(feed);
            }
        }
        match flush_out(ctx, conn) {
            Flush::Gone => return Verdict::Close,
            Flush::Unpaused => continue,
            Flush::Settled => break,
        }
    }
    if conn.out_bytes == 0 && (conn.close_after_flush || conn.eof) {
        // Everything owed is on the wire (or nothing is owed and the
        // peer already left).
        return Verdict::Close;
    }
    if conn.eof {
        // The peer finished sending but responses are still queued —
        // one-shot clients half-close and read the tail.
        conn.close_after_flush = true;
    }
    update_interest(poller, conn, draining);
    Verdict::Keep
}

enum Fill {
    /// Bytes arrived.
    Progress,
    /// Nothing to read after all (a spurious readiness wakeup).
    Idle,
    /// The peer half-closed (a true zero-byte read).
    Eof,
    /// The peer is gone (read error).
    Gone,
}

/// Reads what the socket has (bounded per event) into the connection's
/// buffer.
fn fill_inbuf(ctx: &ShardCtx, conn: &mut Conn) -> Fill {
    let mut chunk = [0u8; 16 << 10];
    let mut total = 0usize;
    loop {
        match conn.stream.read(&mut chunk) {
            Ok(0) => {
                return if total == 0 {
                    Fill::Eof
                } else {
                    Fill::Progress
                }
            }
            Ok(n) => {
                conn.inbuf.extend_from_slice(&chunk[..n]);
                ctx.metrics.bytes_read.add(n as u64);
                total += n;
                if total >= READ_BUDGET {
                    return Fill::Progress;
                }
            }
            // EAGAIN is not EOF: with zero bytes read this was a
            // spurious wakeup, not a half-close — leave the
            // connection exactly as it was.
            Err(e) if e.kind() == io::ErrorKind::WouldBlock => {
                return if total == 0 {
                    Fill::Idle
                } else {
                    Fill::Progress
                }
            }
            Err(e) if e.kind() == io::ErrorKind::Interrupted => continue,
            Err(_) => return Fill::Gone,
        }
    }
}

enum Parsed {
    Ok,
    Handoff(HandoffFeed),
}

/// One inspected inbound frame.
enum Step {
    /// Not enough bytes yet.
    Incomplete,
    /// Protocol violation — oversized length or checksum failure.
    Malformed(String),
    /// A whole frame: its decode result and total wire size.
    Frame(Result<Request, CodecError>, usize),
}

fn next_frame(buf: &[u8]) -> Step {
    if buf.len() < FRAME_HEADER_LEN {
        return Step::Incomplete;
    }
    let len = u32::from_le_bytes(buf[..4].try_into().expect("len 4"));
    if len > MAX_FRAME_LEN {
        return Step::Malformed(CodecError::FrameTooLarge(len).to_string());
    }
    let total = FRAME_HEADER_LEN + len as usize;
    if buf.len() < total {
        return Step::Incomplete;
    }
    let stored_crc = u32::from_le_bytes(buf[4..8].try_into().expect("len 4"));
    let payload = &buf[FRAME_HEADER_LEN..total];
    if crc32(payload) != stored_crc {
        return Step::Malformed(CodecError::ChecksumMismatch.to_string());
    }
    Step::Frame(decode_request(payload), total)
}

/// Parses and executes every complete frame buffered on the connection,
/// stopping early on backpressure, a hangup decision, or a subscription
/// handoff.
fn parse_frames(ctx: &ShardCtx, conn: &mut Conn) -> Parsed {
    let mut pos = 0usize;
    let result = loop {
        if conn.paused || conn.close_after_flush {
            break Parsed::Ok;
        }
        let (request, total) = match next_frame(&conn.inbuf[pos..]) {
            Step::Incomplete => break Parsed::Ok,
            Step::Malformed(detail) => {
                malformed_hangup(ctx, conn, &detail);
                break Parsed::Ok;
            }
            Step::Frame(request, total) => (request, total),
        };
        pos += total;
        let request = match request {
            Ok(request) => request,
            Err(e) => {
                malformed_hangup(ctx, conn, &e.to_string());
                break Parsed::Ok;
            }
        };
        match handle_request(ctx, conn, request) {
            Handled::Continue => {}
            Handled::Handoff(feed) => break Parsed::Handoff(feed),
        }
    };
    conn.inbuf.drain(..pos);
    result
}

enum Flush {
    /// Wrote what the socket would take; nothing more to do now.
    Settled,
    /// Draining below low water resumed reading — reparse the buffer.
    Unpaused,
    /// The peer is gone (write failure).
    Gone,
}

/// Writes queued frames until the socket pushes back or the queue
/// empties.
fn flush_out(ctx: &ShardCtx, conn: &mut Conn) -> Flush {
    let mut progressed = false;
    while let Some(front) = conn.outq.front() {
        let bytes = front.bytes();
        match conn.stream.write(&bytes[conn.out_head..]) {
            Ok(0) => return Flush::Gone,
            Ok(n) => {
                conn.out_head += n;
                conn.out_bytes -= n;
                ctx.metrics.bytes_written.add(n as u64);
                progressed = true;
                if conn.out_head == bytes.len() {
                    conn.outq.pop_front();
                    conn.out_head = 0;
                }
            }
            Err(e) if e.kind() == io::ErrorKind::WouldBlock => break,
            Err(e) if e.kind() == io::ErrorKind::Interrupted => continue,
            Err(_) => return Flush::Gone,
        }
    }
    if progressed {
        conn.last_write_progress = Instant::now();
    }
    if conn.paused && conn.out_bytes <= OUT_LOW_WATER {
        conn.paused = false;
        return Flush::Unpaused;
    }
    Flush::Settled
}

/// Re-registers the connection's poller interest if the desired set
/// changed: read while admitting, write while owing.
fn update_interest(poller: &Poller, conn: &mut Conn, draining: bool) {
    let wants_read = !conn.paused && !conn.close_after_flush && !conn.eof && !draining;
    let wants_write = conn.out_bytes > 0;
    let desired = match (wants_read, wants_write) {
        (true, true) => Interest::READABLE.add(Interest::WRITABLE),
        (true, false) => Interest::READABLE,
        (false, true) => Interest::WRITABLE,
        (false, false) => Interest::NONE,
    };
    if desired != conn.interest && poller.reregister(&conn.stream, conn.token, desired).is_ok() {
        conn.interest = desired;
    }
}

// ---------------------------------------------------------------------------
// Request execution (inline on the shard)
// ---------------------------------------------------------------------------

enum Handled {
    Continue,
    Handoff(HandoffFeed),
}

fn request_type(request: &Request) -> RequestType {
    match request {
        Request::Hello { .. } => RequestType::Hello,
        Request::Query(_) => RequestType::Query,
        Request::Batch(_) => RequestType::Batch,
        Request::Epoch => RequestType::Epoch,
        Request::Checkpoint => RequestType::Checkpoint,
        Request::ReplicaStatus => RequestType::ReplicaStatus,
        Request::Subscribe { .. } => RequestType::Subscribe,
        Request::LogDigests => RequestType::LogDigests,
        Request::Promote => RequestType::Promote,
        Request::Write { .. } => RequestType::Write,
        Request::ShardStatus => RequestType::ShardStatus,
    }
}

/// Why a query cannot be served at this node of a partitioned
/// deployment, if it cannot. `None` on an unsharded server, and on the
/// serving paths of a shard (owned point read) or gather (all feeds
/// up).
fn shard_query_refusal(ctx: &ShardCtx, query: &QueryRequest) -> Option<WireError> {
    match ctx.shard.as_deref()? {
        ShardRole::Shard {
            partition, peers, ..
        } => {
            if query.max_depth > 0 {
                // A traversal stopped at the shard boundary would be a
                // silently truncated answer; only a gather node sees
                // every shard's edges.
                return Some(WireError::new(
                    WireErrorKind::BadRequest,
                    format!(
                        "shard {}/{} serves point reads only (max_depth 0); send traversals to a gather node",
                        partition.index(),
                        partition.count()
                    ),
                ));
            }
            if partition.owns(query.root.0) {
                return None;
            }
            let owner = partition.map().shard_of(query.root.0);
            Some(wrong_shard(owner, peers))
        }
        ShardRole::Gather(gather) => {
            let slot = gather.first_down()?;
            Some(WireError::new(
                WireErrorKind::ShardUnavailable,
                format!(
                    "shard {slot} ({}) is unreachable; a cross-shard answer would be missing its records",
                    gather.peers()[slot as usize]
                ),
            ))
        }
    }
}

/// The gather merge's repair generation when this server fronts one;
/// `None` on every other role. Captured before an answer is computed
/// and re-checked after, so an answer that straddles a slot repair is
/// refused rather than served with a rewound epoch vector.
fn gather_generation(ctx: &ShardCtx) -> Option<u64> {
    match ctx.shard.as_deref() {
        Some(ShardRole::Gather(gather)) => Some(gather.generation()),
        _ => None,
    }
}

/// The retryable refusal for an answer invalidated by a concurrent feed
/// repair.
fn repaired_mid_answer() -> WireError {
    WireError::new(
        WireErrorKind::ShardUnavailable,
        "a shard feed was repaired while the answer was being computed; retry",
    )
}

/// The typed redirect for a record owned elsewhere. The message is the
/// owner's address when the peer list names it (mirroring NotWritable's
/// address-in-message convention, so pools re-route without a topology
/// refresh), else the owner's shard index in decimal.
fn wrong_shard(owner: u32, peers: &[String]) -> WireError {
    let target = match peers.get(owner as usize) {
        Some(addr) => addr.clone(),
        None => owner.to_string(),
    };
    WireError::new(WireErrorKind::WrongShard, target)
}

fn handle_request(ctx: &ShardCtx, conn: &mut Conn, request: Request) -> Handled {
    let session = match &conn.phase {
        Phase::AwaitHello => {
            // Handshake frames are deliberately absent from the request
            // counters: completed handshakes are `connections_total`,
            // and the `type="hello"` series counts only misplaced
            // in-session Hellos (a protocol-violation signal).
            handle_hello(ctx, conn, request);
            return Handled::Continue;
        }
        Phase::Serving(session) => session.clone(),
    };
    let consumer = session.consumer;
    let kind = request_type(&request);
    ctx.metrics.count_request(kind);
    if let Some(limiter) = &ctx.limiter {
        if !limiter.admit(&session.limit_key, Instant::now()) {
            ctx.metrics.count_overload(OverloadReason::RateLimit);
            queue_response(
                conn,
                &Response::Error(WireError::new(
                    WireErrorKind::Overloaded,
                    format!(
                        "rate limit exhausted for consumer {:?}; retry after backoff",
                        consumer.name()
                    ),
                )),
            );
            return Handled::Continue;
        }
    }
    let start = Instant::now();
    let handled = match request {
        // Zero-copy fast path: queries are answered from the service's
        // sealed-frame cache, whose entries are the exact framed bytes
        // (`len | crc32 | payload`) a fresh encode-and-seal would
        // produce — a repeat query queues the cached allocation by
        // refcount, never a copy.
        Request::Query(query) => {
            if let Some(error) = shard_query_refusal(ctx, &query) {
                queue_response(conn, &Response::Error(error));
                ctx.metrics.observe_latency(kind, start.elapsed());
                return Handled::Continue;
            }
            // Pin the merge's repair generation across the answer: a
            // feed repair (slot reset) between the refusal check and the
            // computed frame could hand out an epoch vector that rewinds
            // a slot. Refuse (retryable) instead of regressing.
            let pinned_gen = gather_generation(ctx);
            match ctx.service.query_sealed(&consumer, &query) {
                Ok(frame) => {
                    if gather_generation(ctx) != pinned_gen {
                        queue_response(conn, &Response::Error(repaired_mid_answer()));
                    } else {
                        conn.queue(OutFrame::Shared(frame));
                    }
                }
                Err(StoreError::Codec(CodecError::FrameTooLarge(_))) => queue_oversize(conn),
                Err(e) => queue_response(conn, &Response::Error(wire_error(&e))),
            }
            Handled::Continue
        }
        Request::Batch(queries) => {
            // All-or-nothing, like every other batch failure: one
            // unservable query refuses the batch rather than answering
            // a subset.
            if let Some(error) = queries.iter().find_map(|q| shard_query_refusal(ctx, q)) {
                queue_response(conn, &Response::Error(error));
                ctx.metrics.observe_latency(kind, start.elapsed());
                return Handled::Continue;
            }
            let pinned_gen = gather_generation(ctx);
            match ctx.service.query_batch_sealed(&consumer, &queries) {
                Ok(frame) => {
                    if gather_generation(ctx) != pinned_gen {
                        queue_response(conn, &Response::Error(repaired_mid_answer()));
                    } else {
                        conn.queue(OutFrame::Shared(frame));
                    }
                }
                Err(StoreError::Codec(CodecError::FrameTooLarge(_))) => queue_oversize(conn),
                Err(e) => queue_response(conn, &Response::Error(wire_error(&e))),
            }
            Handled::Continue
        }
        // Subscribe converts the connection into a one-way replication
        // stream owned by a dedicated feeder thread. A refused
        // subscription is recoverable, like a refused checkpoint: the
        // connection can still query.
        Request::Subscribe { from_clock } => match check_subscription(ctx, from_clock) {
            Ok(dir) => {
                return Handled::Handoff(HandoffFeed { dir, from_clock });
            }
            Err(error) => {
                queue_response(conn, &Response::Error(error));
                Handled::Continue
            }
        },
        other => {
            let (response, outcome) = answer(ctx, &consumer, other);
            queue_response(conn, &response);
            if let Outcome::HangUp = outcome {
                ctx.metrics.hangups.inc();
                conn.close_after_flush = true;
            }
            Handled::Continue
        }
    };
    ctx.metrics.observe_latency(kind, start.elapsed());
    handled
}

/// The opening-frame state: only a version-matched Hello with resolvable
/// claims moves the connection to `Serving`.
fn handle_hello(ctx: &ShardCtx, conn: &mut Conn, request: Request) {
    let (version, consumer_name, claims) = match request {
        Request::Hello {
            version,
            consumer,
            claims,
        } => (version, consumer, claims),
        _ => {
            protocol_hangup(
                ctx,
                conn,
                WireErrorKind::BadRequest,
                "the first frame on a connection must be Hello".to_string(),
            );
            return;
        }
    };
    if version != PROTOCOL_VERSION {
        protocol_hangup(
            ctx,
            conn,
            WireErrorKind::VersionMismatch,
            format!("server speaks protocol version {PROTOCOL_VERSION}, not {version}"),
        );
        return;
    }
    let snapshot = ctx.service.snapshot();
    let mut granted: Vec<PrivilegeId> = Vec::with_capacity(claims.len());
    for claim in &claims {
        match snapshot.lattice.by_name(claim) {
            Some(p) => granted.push(p),
            None => {
                protocol_hangup(
                    ctx,
                    conn,
                    WireErrorKind::UnknownPredicate,
                    format!("predicate {claim:?} is not in the server's lattice"),
                );
                return;
            }
        }
    }
    let consumer = if granted.is_empty() {
        Consumer::public(&snapshot.lattice)
    } else {
        Consumer::new(consumer_name, &snapshot.lattice, &granted)
    };
    // Shard topology travels in the Hello so routing is client-side and
    // stateless: a pool that knows (count, index) computes any id's
    // owner without a directory service, and the peer list (when the
    // server knows one) lets a client build its whole ShardRouter from
    // a single handshake.
    let (shard_count, shard_index, hello_peers) = match ctx.shard.as_deref() {
        Some(ShardRole::Shard {
            partition, peers, ..
        }) => (partition.count(), Some(partition.index()), peers.clone()),
        Some(ShardRole::Gather(gather)) => (gather.shard_count(), None, gather.peers().to_vec()),
        None => ctx
            .service
            .store()
            .and_then(|store| store.partition())
            .map_or((0, None, Vec::new()), |p| {
                (p.count(), Some(p.index()), Vec::new())
            }),
    };
    let hello = ServerHello {
        version: PROTOCOL_VERSION,
        epoch: snapshot.epoch(),
        nodes: snapshot.graph.node_count() as u64,
        shard_count,
        shard_index,
        predicates: snapshot
            .lattice
            .ids()
            .map(|p| snapshot.lattice.name(p).to_string())
            .collect(),
        peers: hello_peers,
    };
    // Count the connection *before* the Hello answer is queued: once a
    // client observes the handshake complete, the counter must already
    // reflect it.
    ctx.metrics.connections_total.inc();
    queue_response(conn, &Response::Hello(hello));
    // A failed peer_addr() (the socket died mid-handshake) still needs
    // *a* key; the connection is about to error out anyway, so the
    // shared fallback bucket is harmless.
    let peer_ip = conn
        .stream
        .peer_addr()
        .map(|addr| addr.ip().to_string())
        .unwrap_or_else(|_| "unknown".into());
    conn.phase = Phase::Serving(Session {
        limit_key: format!("{peer_ip}|{}", consumer.name()).into(),
        consumer: Arc::new(consumer),
    });
}

/// Best-effort typed error, then close after it flushes: the
/// protocol-violation path (misplaced Hello, version mismatch, unknown
/// predicate).
fn protocol_hangup(ctx: &ShardCtx, conn: &mut Conn, kind: WireErrorKind, detail: String) {
    ctx.metrics.hangups.inc();
    queue_response(conn, &Response::Error(WireError::new(kind, detail)));
    conn.close_after_flush = true;
}

/// Best-effort typed error, then close: the malformed-frame path.
fn malformed_hangup(ctx: &ShardCtx, conn: &mut Conn, detail: &str) {
    protocol_hangup(
        ctx,
        conn,
        WireErrorKind::BadRequest,
        format!("malformed frame: {detail}"),
    );
}

/// Encodes and queues one response frame. An answer too large for the
/// wire — caught at encode time (a count overflowing its field) or at
/// seal time (payload past the frame bound) — is reported to the client
/// as a typed error instead of desynchronizing the stream; the
/// connection stays usable.
fn queue_response(conn: &mut Conn, response: &Response) {
    match encode_response(response) {
        Ok(payload) if payload.len() as u64 <= MAX_FRAME_LEN as u64 => {
            conn.queue(OutFrame::Owned(seal_frame(&payload)));
        }
        _ => queue_oversize(conn),
    }
}

/// The "split the batch" error frame for answers that cannot travel in
/// one frame.
fn queue_oversize(conn: &mut Conn) {
    let error = Response::Error(WireError::new(
        WireErrorKind::BadRequest,
        "response exceeds the maximum frame size; split the batch or bound max_depth",
    ));
    if let Ok(payload) = encode_response(&error) {
        conn.queue(OutFrame::Owned(seal_frame(&payload)));
    }
}

/// Maps a service failure to what may cross the wire: the kind plus the
/// error's display form (which never includes raw graph content).
fn wire_error(e: &StoreError) -> WireError {
    let kind = match e {
        StoreError::NotAuthorized { .. } => WireErrorKind::NotAuthorized,
        StoreError::UnknownStrategy(_) => WireErrorKind::UnknownStrategy,
        StoreError::UnknownPredicate(_) => WireErrorKind::UnknownPredicate,
        StoreError::NotDurable => WireErrorKind::NotDurable,
        StoreError::UnknownRecord(_) => WireErrorKind::BadRequest,
        StoreError::WrongShard { .. } => WireErrorKind::WrongShard,
        _ => WireErrorKind::Internal,
    };
    WireError::new(kind, e.to_string())
}

enum Outcome {
    /// Keep serving this connection.
    Continue,
    /// Protocol violation: hang up (after the best-effort error frame).
    HangUp,
}

/// Computes the response for one decoded in-session request (the
/// non-fast-path types).
fn answer(ctx: &ShardCtx, consumer: &Consumer, request: Request) -> (Response, Outcome) {
    let service = &ctx.service;
    match request {
        Request::Hello { .. } => (
            Response::Error(WireError::new(
                WireErrorKind::BadRequest,
                "connection is already past its Hello",
            )),
            Outcome::HangUp,
        ),
        Request::Query(query) => match service.query(consumer, &query) {
            Ok(response) => (Response::Query(response), Outcome::Continue),
            Err(e) => (Response::Error(wire_error(&e)), Outcome::Continue),
        },
        Request::Batch(queries) => match service.query_batch(consumer, &queries) {
            Ok(responses) => (Response::Batch(responses), Outcome::Continue),
            Err(e) => (Response::Error(wire_error(&e)), Outcome::Continue),
        },
        Request::Epoch => (Response::Epoch(service.epoch()), Outcome::Continue),
        Request::Checkpoint => {
            if let Some(monitor) = ctx.monitor.as_deref() {
                if !monitor.is_promoted() {
                    // A checkpoint is a write-side operator action; on a
                    // replica the caller almost certainly wanted the
                    // primary. The NotWritable message carries the
                    // writable address (when known) so client pools
                    // re-resolve after a failover instead of restarting.
                    let addr = monitor
                        .status(service.epoch())
                        .primary_addr
                        .unwrap_or_default();
                    return (
                        Response::Error(WireError::new(WireErrorKind::NotWritable, addr)),
                        Outcome::Continue,
                    );
                }
            }
            if !ctx.config.allow_remote_checkpoint {
                return (
                    Response::Error(WireError::new(
                        WireErrorKind::NotAuthorized,
                        "remote checkpoints are disabled on this server",
                    )),
                    Outcome::Continue,
                );
            }
            let result = match service.store() {
                Some(store) => store.checkpoint(),
                None => Err(StoreError::NotDurable),
            };
            match result {
                Ok(stats) => (Response::Checkpoint(stats), Outcome::Continue),
                Err(e) => (Response::Error(wire_error(&e)), Outcome::Continue),
            }
        }
        // Handled (or refused) before `answer` — a subscription owns the
        // connection and never produces a single response.
        Request::Subscribe { .. } => (
            Response::Error(WireError::new(
                WireErrorKind::Internal,
                "subscription requests are handled by the feeder",
            )),
            Outcome::HangUp,
        ),
        Request::ReplicaStatus => {
            let local_epoch = service.epoch();
            let status = match ctx.monitor.as_deref() {
                Some(monitor) => monitor.status(local_epoch),
                // A plain server *is* the primary of whatever it
                // serves: its epoch is authoritative by definition.
                None => ReplicaStatus {
                    role: ReplicaRole::Primary,
                    local_epoch,
                    primary_epoch: local_epoch,
                    term: service
                        .store()
                        .map(|store| store.replication_term())
                        .unwrap_or(0),
                    connected: true,
                    last_error: None,
                    primary_addr: None,
                },
            };
            (Response::ReplicaStatus(status), Outcome::Continue)
        }
        // Anti-entropy: a peer comparing logs. Gated exactly like
        // Subscribe — digests reveal history shape (clock ranges, sizes)
        // and exist only to support replication inside the owner's
        // trust domain.
        Request::LogDigests => {
            if !ctx.config.allow_replication {
                return (
                    Response::Error(WireError::new(
                        WireErrorKind::NotAuthorized,
                        "replication is disabled on this server; its operator must opt in (--allow-replication)",
                    )),
                    Outcome::Continue,
                );
            }
            let dir = service.store().and_then(|store| store.durable_dir());
            let (Some(store), Some(dir)) = (service.store(), dir) else {
                return (
                    Response::Error(WireError::new(
                        WireErrorKind::NotDurable,
                        "this server has no write-ahead log to digest; anti-entropy needs a durable store",
                    )),
                    Outcome::Continue,
                );
            };
            match wal::segment_digests(&dir) {
                Ok(segments) => (
                    Response::LogDigests {
                        term: store.replication_term(),
                        segments,
                    },
                    Outcome::Continue,
                ),
                Err(e) => (Response::Error(wire_error(&e)), Outcome::Continue),
            }
        }
        // Live promotion over the wire (`spgraph promote <addr>`).
        // Owner-side like Subscribe; idempotent on a node that is
        // already primary (answers the standing term without bumping).
        Request::Promote => {
            if !ctx.config.allow_replication {
                return (
                    Response::Error(WireError::new(
                        WireErrorKind::NotAuthorized,
                        "promotion is disabled on this server; its operator must opt in (--allow-replication)",
                    )),
                    Outcome::Continue,
                );
            }
            let Some(store) = service.store() else {
                return (
                    Response::Error(WireError::new(
                        WireErrorKind::NotDurable,
                        "this server has no durable store; the fencing term has nowhere to live",
                    )),
                    Outcome::Continue,
                );
            };
            match ctx.monitor.as_deref() {
                Some(monitor) if !monitor.is_promoted() => match monitor.promote(store) {
                    Ok(term) => {
                        ctx.metrics.promotions.inc();
                        (Response::Promoted { term }, Outcome::Continue)
                    }
                    Err(e) => (Response::Error(wire_error(&e)), Outcome::Continue),
                },
                _ => (
                    Response::Promoted {
                        term: store.replication_term(),
                    },
                    Outcome::Continue,
                ),
            }
        }
        // A remote write, routed to a shard primary by the client
        // (edges by their source, policy by the governed node). Gated
        // like Checkpoint: a replica redirects to its primary, and the
        // operator must have opted in — the Hello verifies nothing, so
        // a write-open socket belongs inside the owner's trust domain.
        Request::Write { op } => {
            if let Some(monitor) = ctx.monitor.as_deref() {
                if !monitor.is_promoted() {
                    let addr = monitor
                        .status(service.epoch())
                        .primary_addr
                        .unwrap_or_default();
                    return (
                        Response::Error(WireError::new(WireErrorKind::NotWritable, addr)),
                        Outcome::Continue,
                    );
                }
            }
            if !ctx.config.allow_remote_write {
                return (
                    Response::Error(WireError::new(
                        WireErrorKind::NotAuthorized,
                        "remote writes are disabled on this server; its operator must opt in (--shard or --allow-remote-write)",
                    )),
                    Outcome::Continue,
                );
            }
            // A gather owns no partition — every write belongs on a
            // shard primary; redirect to the owner when the op names
            // one (an AppendNode routes anywhere, so the message is
            // empty and the client picks a shard itself).
            if let Some(ShardRole::Gather(gather)) = ctx.shard.as_deref() {
                let target = op
                    .routing_id()
                    .map(|id| gather.peer_of(id.0).to_string())
                    .unwrap_or_default();
                return (
                    Response::Error(WireError::new(WireErrorKind::WrongShard, target)),
                    Outcome::Continue,
                );
            }
            let Some(store) = service.store() else {
                return (
                    Response::Error(WireError::new(
                        WireErrorKind::BadRequest,
                        "this server serves a frozen graph; it has no writable store",
                    )),
                    Outcome::Continue,
                );
            };
            let result = match op {
                WriteOp::AppendNode {
                    label,
                    kind,
                    features,
                    lowest,
                } => store
                    .try_append_node(label, kind, features, lowest)
                    .map(Some),
                WriteOp::AppendEdge { from, to, kind } => {
                    store.append_edge(from, to, kind).map(|()| None)
                }
                WriteOp::ApplyPolicy(statement) => store.apply_policy(statement).map(|()| None),
            };
            match result {
                Ok(id) => (
                    Response::Written {
                        clock: store.version(),
                        id,
                    },
                    Outcome::Continue,
                ),
                // The store's ownership check names the owner; put the
                // owner's *address* in the message when the peer list
                // knows it, so the client re-routes without a topology
                // refresh (the NotWritable convention).
                Err(StoreError::WrongShard { owner, .. }) => {
                    let peers: &[String] = match ctx.shard.as_deref() {
                        Some(ShardRole::Shard { peers, .. }) => peers,
                        _ => &[],
                    };
                    (
                        Response::Error(wrong_shard(owner, peers)),
                        Outcome::Continue,
                    )
                }
                Err(e) => (Response::Error(wire_error(&e)), Outcome::Continue),
            }
        }
        Request::ShardStatus => {
            let status = match ctx.shard.as_deref() {
                Some(ShardRole::Shard {
                    partition,
                    replicas,
                    ..
                }) => shard_primary_status(service, *partition, replicas.clone()),
                Some(ShardRole::Gather(gather)) => ShardStatusInfo {
                    count: gather.shard_count(),
                    index: None,
                    epochs: gather.clocks(),
                    replicas: gather.replicas(),
                },
                // A plain server in front of a partitioned store still
                // reports its slice; a truly unsharded one answers the
                // degenerate topology (count 0, its version as the one
                // epoch).
                None => match service.store().and_then(|store| store.partition()) {
                    Some(partition) => shard_primary_status(service, partition, Vec::new()),
                    None => ShardStatusInfo {
                        count: 0,
                        index: None,
                        epochs: vec![service.epoch()],
                        replicas: Vec::new(),
                    },
                },
            };
            (Response::ShardStatus(status), Outcome::Continue)
        }
    }
}

/// A shard primary knows one live epoch — its own; its status vector
/// carries zeros in the slots only a gather observes.
fn shard_primary_status(
    service: &AccountService,
    partition: Partition,
    replicas: Vec<Vec<String>>,
) -> ShardStatusInfo {
    let mut epochs = vec![0u64; partition.count() as usize];
    epochs[partition.index() as usize] = service.epoch();
    ShardStatusInfo {
        count: partition.count(),
        index: Some(partition.index()),
        epochs,
        replicas,
    }
}

// ---------------------------------------------------------------------------
// Replication feeders (dedicated blocking threads)
// ---------------------------------------------------------------------------

/// Live feeder threads and clones of their sockets, so shutdown can
/// unblock a feeder parked in a blocking write.
#[derive(Default)]
struct FeederSet {
    inner: Mutex<FeederInner>,
}

#[derive(Default)]
struct FeederInner {
    closed: bool,
    next_id: u64,
    streams: HashMap<u64, TcpStream>,
    handles: Vec<JoinHandle<()>>,
}

impl FeederSet {
    /// Registers a feeder's socket; `None` once the set is closed (the
    /// caller must drop the stream instead of serving it).
    fn register(&self, stream: &TcpStream) -> Option<u64> {
        let mut inner = self.inner.lock();
        if inner.closed {
            return None;
        }
        let id = inner.next_id;
        inner.next_id += 1;
        // No clone means close_all() could never hang this feeder up and
        // shutdown would block on the join — refuse instead (fd
        // exhaustion is the typical cause, so shedding is right anyway).
        let clone = stream.try_clone().ok()?;
        inner.streams.insert(id, clone);
        Some(id)
    }

    fn deregister(&self, id: u64) {
        self.inner.lock().streams.remove(&id);
    }

    fn adopt(&self, handle: JoinHandle<()>) {
        let mut inner = self.inner.lock();
        // Reap finished feeders (reconnecting subscribers create one per
        // attempt) so the registry only grows with *live* streams; a
        // finished handle drops detached, which is a no-op join.
        inner.handles.retain(|h| !h.is_finished());
        inner.handles.push(handle);
    }

    /// Marks the set closed, shuts every feeder socket down (unblocking
    /// parked reads/writes), and returns the handles for joining.
    fn close_all(&self) -> Vec<JoinHandle<()>> {
        let mut inner = self.inner.lock();
        inner.closed = true;
        for stream in inner.streams.values() {
            let _ = stream.shutdown(Shutdown::Both);
        }
        inner.streams.clear();
        std::mem::take(&mut inner.handles)
    }
}

/// Moves an extracted (blocking again) subscriber connection onto its
/// dedicated feeder thread: flush whatever the reactor still owed it,
/// then stream WAL.
fn spawn_feeder(ctx: Arc<ShardCtx>, conn: Conn, feed: HandoffFeed) {
    let Some(id) = ctx.feeders.register(&conn.stream) else {
        // Shutting down: the subscription dies with the server.
        ctx.metrics.connections_open.dec();
        return;
    };
    let thread_ctx = ctx.clone();
    let handle = std::thread::Builder::new()
        .name("spgraph-feeder".into())
        .spawn(move || {
            let ctx = thread_ctx;
            ctx.metrics.subscriptions_active.inc();
            let mut stream = conn.stream;
            let mut head = conn.out_head;
            let mut delivered = true;
            for frame in &conn.outq {
                if stream.write_all(&frame.bytes()[head..]).is_err() {
                    delivered = false;
                    break;
                }
                head = 0;
            }
            if delivered {
                let mut outbuf = Vec::with_capacity(4096);
                serve_subscription(
                    &ctx.service,
                    &ctx.metrics,
                    &ctx.shutdown,
                    &mut stream,
                    &feed.dir,
                    feed.from_clock,
                    &mut outbuf,
                );
            }
            let _ = stream.shutdown(Shutdown::Both);
            ctx.feeders.deregister(id);
            ctx.metrics.subscriptions_active.dec();
            ctx.metrics.connections_open.dec();
        });
    match handle {
        Ok(handle) => ctx.feeders.adopt(handle),
        // Out of threads: shed the subscriber.
        Err(_) => {
            ctx.feeders.deregister(id);
            ctx.metrics.connections_open.dec();
        }
    }
}

/// Validates a subscription request, returning the durable directory the
/// feeder will tail — or the typed refusal to send.
fn check_subscription(ctx: &ShardCtx, from_clock: u64) -> Result<PathBuf, WireError> {
    if !ctx.config.allow_replication {
        return Err(WireError::new(
            WireErrorKind::NotAuthorized,
            "replication is disabled on this server; its operator must opt in (--allow-replication)",
        ));
    }
    let dir = ctx
        .service
        .store()
        .and_then(|store: &Arc<Store>| store.durable_dir());
    let Some(dir) = dir else {
        return Err(WireError::new(
            WireErrorKind::NotDurable,
            "this server has no write-ahead log to stream; replication needs a durable store",
        ));
    };
    let epoch = ctx.service.epoch();
    if from_clock > epoch {
        // A subscriber ahead of its primary replayed a different
        // history; feeding it would silently fork the replica set.
        return Err(WireError::new(
            WireErrorKind::BadRequest,
            format!("subscriber clock {from_clock} is ahead of this primary's epoch {epoch}"),
        ));
    }
    Ok(dir)
}

/// Target sealed-frame bytes per [`Response::WalChunk`]; chunks stop at
/// the first frame boundary past this.
const FEED_CHUNK_BYTES: usize = 256 << 10;
/// How often a caught-up feeder re-reads the store clock.
const FEED_POLL: Duration = Duration::from_millis(10);
/// How often a caught-up feeder sends an empty heartbeat chunk — the
/// subscriber's lag/liveness signal, and the feeder's only way to notice
/// a dead peer while idle.
const FEED_HEARTBEAT: Duration = Duration::from_millis(250);

/// Writes `payload` as one sealed frame over a blocking stream.
fn write_blocking_frame(stream: &mut TcpStream, payload: &[u8], scratch: &mut Vec<u8>) -> bool {
    crate::frame::write_frame(stream, payload, scratch).is_ok()
}

/// The feeder loop: streams [`Response::WalChunk`] frames until the
/// subscriber hangs up, the server shuts down, or the log becomes
/// unreadable. Runs on a dedicated per-subscriber thread.
fn serve_subscription(
    service: &AccountService,
    metrics: &ServerMetrics,
    shutdown: &AtomicBool,
    stream: &mut TcpStream,
    dir: &std::path::Path,
    from_clock: u64,
    outbuf: &mut Vec<u8>,
) {
    let mut next = from_clock;
    // A subscriber at clock 0 has nothing — not even the lattice, which
    // frames cannot rebuild — so its stream opens with a snapshot. A
    // non-zero clock proves a snapshot was already installed once.
    let mut snapshot_due = next == 0;
    // The cursor keeps each chunk O(chunk): without it every read
    // re-scans the covering segment from its header.
    let mut tail = wal::TailCursor::default();
    let mut last_send = Instant::now();
    let send = |stream: &mut TcpStream, chunk: WalChunk, outbuf: &mut Vec<u8>| {
        let Ok(payload) = encode_response(&Response::WalChunk(chunk)) else {
            return false; // chunk cannot be framed: end the feed
        };
        write_blocking_frame(stream, &payload, outbuf)
    };
    let send_error = |stream: &mut TcpStream, error: WireError, outbuf: &mut Vec<u8>| {
        if let Ok(payload) = encode_response(&Response::Error(error)) {
            let _ = write_blocking_frame(stream, &payload, outbuf);
        }
    };
    loop {
        if shutdown.load(Ordering::SeqCst) {
            return;
        }
        let current = service.epoch();
        // Re-read per chunk, not once: a promotion of *this* node (or a
        // higher term adopted from upstream) must reach subscribers with
        // the next chunk, so their fencing state tracks the feeder's.
        let term = service
            .store()
            .map(|store| store.replication_term())
            .unwrap_or(0);
        if snapshot_due {
            // Backfill: the subscriber's clock predates the retained
            // log. The newest snapshot both bootstraps cold replicas
            // and fast-forwards badly lagged ones.
            let Ok((clock, bytes)) = wal::read_newest_snapshot(dir) else {
                send_error(
                    stream,
                    WireError::new(
                        WireErrorKind::Internal,
                        "the primary's log no longer covers this subscriber and no snapshot decodes",
                    ),
                    outbuf,
                );
                return;
            };
            if clock < next {
                // The snapshot is *behind* the subscriber yet the log
                // does not cover it either: diverged history.
                send_error(
                    stream,
                    WireError::new(
                        WireErrorKind::Internal,
                        format!(
                            "retained history restarts at clock {clock}, behind subscriber clock {next}"
                        ),
                    ),
                    outbuf,
                );
                return;
            }
            // A snapshot too large for one frame would make the frame
            // writer refuse the chunk and the replica retry forever with
            // no diagnosis; tell it the real problem instead. (Chunked
            // snapshot shipping is the fix if stores ever grow there.)
            if bytes.len() as u64 + 256 > MAX_FRAME_LEN as u64 {
                send_error(
                    stream,
                    WireError::new(
                        WireErrorKind::Internal,
                        format!(
                            "the {}-byte backfill snapshot exceeds the wire frame bound; \
                             this store is too large to bootstrap a replica over this protocol",
                            bytes.len()
                        ),
                    ),
                    outbuf,
                );
                return;
            }
            let chunk = WalChunk {
                start_clock: clock,
                primary_epoch: current,
                term,
                snapshot: Some(bytes),
                frames: Vec::new(),
            };
            if !send(stream, chunk, outbuf) {
                return;
            }
            metrics.snapshots_shipped.inc();
            last_send = Instant::now();
            next = clock;
            snapshot_due = false;
            continue;
        }
        if next < current {
            match wal::read_frames_with(dir, next, current, FEED_CHUNK_BYTES, &mut tail) {
                Ok(Some(chunk)) if chunk.end_clock > next => {
                    let end = chunk.end_clock;
                    let frame_chunk = WalChunk {
                        start_clock: chunk.start_clock,
                        primary_epoch: current,
                        term,
                        snapshot: None,
                        frames: chunk.frames,
                    };
                    if !send(stream, frame_chunk, outbuf) {
                        return;
                    }
                    last_send = Instant::now();
                    next = end;
                }
                // Covered but empty: the covering segment is mid-write
                // (rotation race). Let the writer finish.
                Ok(Some(_)) => std::thread::sleep(FEED_POLL),
                // A checkpoint pruned past the subscriber mid-stream.
                Ok(None) => snapshot_due = true,
                Err(_) => {
                    send_error(
                        stream,
                        WireError::new(
                            WireErrorKind::Internal,
                            "the primary's write-ahead log became unreadable",
                        ),
                        outbuf,
                    );
                    return;
                }
            }
        } else if last_send.elapsed() >= FEED_HEARTBEAT {
            let heartbeat = WalChunk {
                start_clock: next,
                primary_epoch: current,
                term,
                snapshot: None,
                frames: Vec::new(),
            };
            if !send(stream, heartbeat, outbuf) {
                return;
            }
            last_send = Instant::now();
        } else {
            std::thread::sleep(FEED_POLL);
        }
    }
}
