//! First-class observability for the serving edge: cheap atomic
//! [`Counter`]s / [`Gauge`]s, fixed-bucket latency [`Histogram`]s, and a
//! Prometheus text-exposition endpoint.
//!
//! Every hot-path instrument is a relaxed atomic — one `fetch_add` per
//! observation, no locks, no allocation — so instrumentation costs
//! nanoseconds against a ~40µs request round trip. Rendering walks the
//! atomics at scrape time and serializes the
//! [text exposition format](https://prometheus.io/docs/instrumenting/exposition_formats/)
//! (`text/plain; version=0.0.4`), the format every Prometheus-compatible
//! scraper speaks.
//!
//! The endpoint listens on a **separate** listener from the query
//! protocol ([`ServerConfig::metrics_addr`](crate::ServerConfig)):
//! operators scrape it with plain HTTP (`GET /metrics`), and a saturated
//! query socket cannot starve observability (nor can a scraper consume a
//! query-connection slot).
//!
//! What the server exposes, by family:
//!
//! | metric | kind | meaning |
//! |---|---|---|
//! | `spgraph_connections_open` | gauge | sockets currently owned by the server (event loops + feeders) |
//! | `spgraph_connections_total` | counter | completed Hello handshakes |
//! | `spgraph_subscriptions_active` | gauge | live replication feeders |
//! | `spgraph_requests_total{type=…}` | counter | request frames answered, per type |
//! | `spgraph_request_latency_seconds{type=…}` | histogram | service time per request type |
//! | `spgraph_overload_drops_total{reason=…}` | counter | admission-control sheds (`conn_cap`, `rate_limit`, `write_stall`) |
//! | `spgraph_idle_reaped_total` | counter | connections reaped by idle/handshake timeouts |
//! | `spgraph_hangups_total` | counter | protocol-violation hangups |
//! | `spgraph_frame_cache_{hits,misses}_total` | counter | sealed-frame cache traffic |
//! | `spgraph_frame_cache_hit_rate` | gauge | hits / (hits + misses), for humans |
//! | `spgraph_bytes_{read,written}_total` | counter | query-socket traffic volume |
//! | `spgraph_epoch` | gauge | the served store's current epoch |
//! | `spgraph_snapshots_shipped_total` | counter | replica backfill snapshots |
//! | `spgraph_replication_term` | gauge | the fencing term this node has observed (promotion generation) |
//! | `spgraph_replication_lag` | gauge | mutations behind the primary (0 on a primary; stale lower bound while disconnected) |
//! | `spgraph_promotions_total` | counter | replica-to-primary promotions served by this process |

use std::io::{Read, Write};
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::sync::atomic::{AtomicBool, AtomicI64, AtomicU64, Ordering};
use std::sync::Arc;
use std::thread::JoinHandle;
use std::time::Duration;

use plus_store::AccountService;

use crate::replica::ReplicationMonitor;

/// A monotone event count. Relaxed atomics: totals are exact, momentary
/// cross-counter skew is acceptable (standard scrape semantics).
#[derive(Debug, Default)]
pub struct Counter(AtomicU64);

impl Counter {
    /// Adds one.
    pub fn inc(&self) {
        self.0.fetch_add(1, Ordering::Relaxed);
    }

    /// Adds `n`.
    pub fn add(&self, n: u64) {
        self.0.fetch_add(n, Ordering::Relaxed);
    }

    /// Current total.
    pub fn get(&self) -> u64 {
        self.0.load(Ordering::Relaxed)
    }
}

/// A value that goes up and down (open connections, live feeders).
#[derive(Debug, Default)]
pub struct Gauge(AtomicI64);

impl Gauge {
    /// Adds one.
    pub fn inc(&self) {
        self.0.fetch_add(1, Ordering::Relaxed);
    }

    /// Subtracts one.
    pub fn dec(&self) {
        self.0.fetch_sub(1, Ordering::Relaxed);
    }

    /// Current value.
    pub fn get(&self) -> i64 {
        self.0.load(Ordering::Relaxed)
    }
}

/// Upper bounds (µs) of the latency histogram buckets, chosen to bracket
/// the serving edge: cache hits land around tens of µs, cold protections
/// at ms, and the top buckets catch pathological stalls. Fixed at compile
/// time so `observe` is a linear scan of 16 integers — no allocation, no
/// float math on the hot path.
const LATENCY_BUCKETS_US: [u64; 16] = [
    10, 25, 50, 100, 250, 500, 1_000, 2_500, 5_000, 10_000, 25_000, 50_000, 100_000, 250_000,
    1_000_000, 5_000_000,
];

/// A fixed-bucket latency histogram (cumulative at render time, like
/// Prometheus expects; stored per-bucket so `observe` touches exactly
/// one bucket counter).
#[derive(Debug, Default)]
pub struct Histogram {
    buckets: [Counter; LATENCY_BUCKETS_US.len()],
    /// Observations above the last bound (rendered into `+Inf`).
    overflow: Counter,
    sum_us: Counter,
    count: Counter,
}

impl Histogram {
    /// Records one duration.
    pub fn observe(&self, elapsed: Duration) {
        let us = elapsed.as_micros().min(u128::from(u64::MAX)) as u64;
        match LATENCY_BUCKETS_US.iter().position(|&bound| us <= bound) {
            Some(i) => self.buckets[i].inc(),
            None => self.overflow.inc(),
        }
        self.sum_us.add(us);
        self.count.inc();
    }

    /// Total observations.
    pub fn count(&self) -> u64 {
        self.count.get()
    }

    /// An approximate quantile (0.0–1.0) in µs, resolved to the upper
    /// bound of the bucket the quantile falls in — good enough for
    /// alerting and the load-smoke assertions, cheap enough to compute
    /// in-process.
    pub fn quantile_us(&self, q: f64) -> u64 {
        let total = self.count.get();
        if total == 0 {
            return 0;
        }
        let rank = ((total as f64) * q.clamp(0.0, 1.0)).ceil().max(1.0) as u64;
        let mut seen = 0u64;
        for (i, bucket) in self.buckets.iter().enumerate() {
            seen += bucket.get();
            if seen >= rank {
                return LATENCY_BUCKETS_US[i];
            }
        }
        u64::MAX
    }

    fn render(&self, out: &mut String, name: &str, labels: &str) {
        use std::fmt::Write as _;
        let mut cumulative = 0u64;
        for (i, bucket) in self.buckets.iter().enumerate() {
            cumulative += bucket.get();
            let le = LATENCY_BUCKETS_US[i] as f64 / 1e6;
            let _ = writeln!(out, "{name}_bucket{{{labels}le=\"{le}\"}} {cumulative}");
        }
        cumulative += self.overflow.get();
        let _ = writeln!(out, "{name}_bucket{{{labels}le=\"+Inf\"}} {cumulative}");
        let _ = writeln!(
            out,
            "{name}_sum{{{labels_trimmed}}} {sum}",
            labels_trimmed = labels.trim_end_matches(','),
            sum = self.sum_us.get() as f64 / 1e6
        );
        let _ = writeln!(
            out,
            "{name}_count{{{labels_trimmed}}} {count}",
            labels_trimmed = labels.trim_end_matches(','),
            count = self.count.get()
        );
    }
}

/// The request types the server distinguishes in its counters and
/// latency histograms (the `type` label of `spgraph_requests_total`).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum RequestType {
    /// A (misplaced, in-session) `Hello`.
    Hello,
    /// A single lineage query.
    Query,
    /// A batched query frame.
    Batch,
    /// An epoch probe.
    Epoch,
    /// A checkpoint request.
    Checkpoint,
    /// A replication-status probe.
    ReplicaStatus,
    /// A subscription request.
    Subscribe,
    /// An anti-entropy digest exchange.
    LogDigests,
    /// A live promotion request.
    Promote,
    /// A remote write (sharded deployments).
    Write,
    /// A shard-topology probe.
    ShardStatus,
}

/// All request types, in render order.
pub const REQUEST_TYPES: [RequestType; 11] = [
    RequestType::Hello,
    RequestType::Query,
    RequestType::Batch,
    RequestType::Epoch,
    RequestType::Checkpoint,
    RequestType::ReplicaStatus,
    RequestType::Subscribe,
    RequestType::LogDigests,
    RequestType::Promote,
    RequestType::Write,
    RequestType::ShardStatus,
];

impl RequestType {
    /// The `type` label value.
    pub fn as_str(self) -> &'static str {
        match self {
            RequestType::Hello => "hello",
            RequestType::Query => "query",
            RequestType::Batch => "batch",
            RequestType::Epoch => "epoch",
            RequestType::Checkpoint => "checkpoint",
            RequestType::ReplicaStatus => "replica_status",
            RequestType::Subscribe => "subscribe",
            RequestType::LogDigests => "log_digests",
            RequestType::Promote => "promote",
            RequestType::Write => "write",
            RequestType::ShardStatus => "shard_status",
        }
    }

    fn index(self) -> usize {
        self as usize
    }
}

/// Why the server shed work (the `reason` label of
/// `spgraph_overload_drops_total`).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum OverloadReason {
    /// The connection cap was reached; the dial was refused.
    ConnCap,
    /// A consumer exhausted its token bucket; the request was refused.
    RateLimit,
    /// A connection stopped draining its responses; it was closed.
    WriteStall,
}

impl OverloadReason {
    fn as_str(self) -> &'static str {
        match self {
            OverloadReason::ConnCap => "conn_cap",
            OverloadReason::RateLimit => "rate_limit",
            OverloadReason::WriteStall => "write_stall",
        }
    }

    fn index(self) -> usize {
        self as usize
    }
}

/// Every instrument the serving edge maintains. One instance per
/// [`Server`](crate::Server), shared by the accept thread, the event
/// loop shards, the feeders, and the metrics endpoint.
#[derive(Debug, Default)]
pub struct ServerMetrics {
    /// Sockets currently owned by the server: event-loop connections in any
    /// state plus replication feeder threads.
    pub connections_open: Gauge,
    /// Completed Hello handshakes, ever.
    pub connections_total: Counter,
    /// Live replication feeder threads.
    pub subscriptions_active: Gauge,
    /// Accepted subscriptions, ever.
    pub subscriptions_total: Counter,
    /// Backfill snapshots shipped to subscribers, ever.
    pub snapshots_shipped: Counter,
    /// Request frames answered, per [`RequestType`].
    pub requests: [Counter; REQUEST_TYPES.len()],
    /// Service time per [`RequestType`].
    pub latency: [Histogram; REQUEST_TYPES.len()],
    /// Admission-control sheds, per [`OverloadReason`].
    pub overload_drops: [Counter; 3],
    /// Connections reaped by the handshake or idle timeout.
    pub idle_reaped: Counter,
    /// Protocol-violation hangups (malformed frames, misplaced Hello…).
    pub hangups: Counter,
    /// Bytes read off query sockets.
    pub bytes_read: Counter,
    /// Bytes written to query sockets.
    pub bytes_written: Counter,
    /// Replica-to-primary promotions served (`Request::Promote` frames
    /// that actually bumped the term — idempotent re-asks are free).
    pub promotions: Counter,
}

impl ServerMetrics {
    /// Counts one answered request frame of `t`.
    pub fn count_request(&self, t: RequestType) {
        self.requests[t.index()].inc();
    }

    /// Records the service time of one request of `t`.
    pub fn observe_latency(&self, t: RequestType, elapsed: Duration) {
        self.latency[t.index()].observe(elapsed);
    }

    /// Counts one shed for `reason`.
    pub fn count_overload(&self, reason: OverloadReason) {
        self.overload_drops[reason.index()].inc();
    }

    /// Request frames answered across all types — the
    /// [`ServerStats::requests`](crate::ServerStats) aggregate.
    pub fn requests_total(&self) -> u64 {
        self.requests.iter().map(Counter::get).sum()
    }

    /// Sheds across all reasons — the
    /// [`ServerStats::overload_drops`](crate::ServerStats) aggregate.
    pub fn overload_drops_total(&self) -> u64 {
        self.overload_drops.iter().map(Counter::get).sum()
    }

    /// Serializes the full Prometheus text exposition. `service` supplies
    /// the scrape-time store facts (epoch, sealed-frame cache counters);
    /// `monitor` — present when the server fronts a replica — supplies
    /// the replication link facts (observed term, lag).
    pub fn render_prometheus(
        &self,
        service: &AccountService,
        monitor: Option<&ReplicationMonitor>,
    ) -> String {
        use std::fmt::Write as _;
        let mut out = String::with_capacity(8192);

        let mut counter = |name: &str, help: &str, value: u64| {
            let _ = writeln!(out, "# HELP {name} {help}");
            let _ = writeln!(out, "# TYPE {name} counter");
            let _ = writeln!(out, "{name} {value}");
        };
        counter(
            "spgraph_connections_total",
            "Completed Hello handshakes.",
            self.connections_total.get(),
        );
        counter(
            "spgraph_subscriptions_total",
            "Accepted replication subscriptions.",
            self.subscriptions_total.get(),
        );
        counter(
            "spgraph_snapshots_shipped_total",
            "Backfill snapshots shipped to subscribers.",
            self.snapshots_shipped.get(),
        );
        counter(
            "spgraph_idle_reaped_total",
            "Connections reaped by the handshake or idle timeout.",
            self.idle_reaped.get(),
        );
        counter(
            "spgraph_hangups_total",
            "Connections hung up on for protocol violations.",
            self.hangups.get(),
        );
        counter(
            "spgraph_bytes_read_total",
            "Bytes read off query sockets.",
            self.bytes_read.get(),
        );
        counter(
            "spgraph_bytes_written_total",
            "Bytes written to query sockets.",
            self.bytes_written.get(),
        );
        let (hits, misses) = service.frame_cache_stats();
        counter(
            "spgraph_frame_cache_hits_total",
            "Sealed-frame cache hits.",
            hits,
        );
        counter(
            "spgraph_frame_cache_misses_total",
            "Sealed-frame cache misses.",
            misses,
        );
        counter(
            "spgraph_promotions_total",
            "Replica-to-primary promotions served by this process.",
            self.promotions.get(),
        );

        let _ = writeln!(
            out,
            "# HELP spgraph_requests_total Request frames answered, by type."
        );
        let _ = writeln!(out, "# TYPE spgraph_requests_total counter");
        for t in REQUEST_TYPES {
            let _ = writeln!(
                out,
                "spgraph_requests_total{{type=\"{}\"}} {}",
                t.as_str(),
                self.requests[t.index()].get()
            );
        }

        let _ = writeln!(
            out,
            "# HELP spgraph_overload_drops_total Requests or connections shed by admission control, by reason."
        );
        let _ = writeln!(out, "# TYPE spgraph_overload_drops_total counter");
        for reason in [
            OverloadReason::ConnCap,
            OverloadReason::RateLimit,
            OverloadReason::WriteStall,
        ] {
            let _ = writeln!(
                out,
                "spgraph_overload_drops_total{{reason=\"{}\"}} {}",
                reason.as_str(),
                self.overload_drops[reason.index()].get()
            );
        }

        let mut gauge = |name: &str, help: &str, value: f64| {
            let _ = writeln!(out, "# HELP {name} {help}");
            let _ = writeln!(out, "# TYPE {name} gauge");
            let _ = writeln!(out, "{name} {value}");
        };
        gauge(
            "spgraph_connections_open",
            "Sockets currently owned by the server (event loops + feeders).",
            self.connections_open.get() as f64,
        );
        gauge(
            "spgraph_subscriptions_active",
            "Live replication feeders.",
            self.subscriptions_active.get() as f64,
        );
        gauge(
            "spgraph_epoch",
            "Current epoch of the served store.",
            service.epoch() as f64,
        );
        // The term a replica-fronting server reports is the monitor's
        // (refreshed by the feed without locking the store); a plain
        // primary reads its store directly.
        let term = match monitor {
            Some(monitor) => monitor.term(),
            None => service
                .store()
                .map(|store| store.replication_term())
                .unwrap_or(0),
        };
        gauge(
            "spgraph_replication_term",
            "The replication fencing term this node has observed (promotion generation).",
            term as f64,
        );
        gauge(
            "spgraph_replication_lag",
            "Mutations behind the primary (0 on a primary; a stale lower bound while disconnected).",
            monitor
                .map(|monitor| monitor.status(service.epoch()).lag())
                .unwrap_or(0) as f64,
        );
        let total = hits + misses;
        gauge(
            "spgraph_frame_cache_hit_rate",
            "Sealed-frame cache hits / (hits + misses).",
            if total == 0 {
                0.0
            } else {
                hits as f64 / total as f64
            },
        );

        let _ = writeln!(
            out,
            "# HELP spgraph_request_latency_seconds Service time per request frame, by type."
        );
        let _ = writeln!(out, "# TYPE spgraph_request_latency_seconds histogram");
        for t in REQUEST_TYPES {
            self.latency[t.index()].render(
                &mut out,
                "spgraph_request_latency_seconds",
                &format!("type=\"{}\",", t.as_str()),
            );
        }
        out
    }
}

/// Longest request head the scrape listener reads before answering; a
/// scraper that sends more gets a 400 and a hangup.
const MAX_SCRAPE_REQUEST: usize = 8 << 10;

/// Serves `GET /metrics` (HTTP/1.x, `Connection: close`) until
/// `shutdown` flips. One sequential thread: scrapes are rare, tiny, and
/// must never compete with query serving for event-loop capacity.
pub(crate) fn serve_metrics(
    listener: TcpListener,
    metrics: Arc<ServerMetrics>,
    service: Arc<AccountService>,
    monitor: Option<Arc<ReplicationMonitor>>,
    shutdown: Arc<AtomicBool>,
) {
    for stream in listener.incoming() {
        if shutdown.load(Ordering::SeqCst) {
            break;
        }
        let Ok(stream) = stream else { continue };
        // A stuck scraper must not wedge observability for the next one.
        let _ = stream.set_read_timeout(Some(Duration::from_secs(2)));
        let _ = stream.set_write_timeout(Some(Duration::from_secs(10)));
        let _ = answer_scrape(stream, &metrics, &service, monitor.as_deref());
    }
}

fn answer_scrape(
    mut stream: TcpStream,
    metrics: &ServerMetrics,
    service: &AccountService,
    monitor: Option<&ReplicationMonitor>,
) -> std::io::Result<()> {
    let mut head = [0u8; MAX_SCRAPE_REQUEST];
    let mut got = 0usize;
    // Read until the header terminator; tolerate curl-style dribble.
    while got < head.len() && !head[..got].windows(4).any(|w| w == b"\r\n\r\n") {
        match stream.read(&mut head[got..]) {
            Ok(0) => break,
            Ok(n) => got += n,
            Err(e) if e.kind() == std::io::ErrorKind::Interrupted => continue,
            Err(e) => return Err(e),
        }
    }
    let request = String::from_utf8_lossy(&head[..got]);
    let target = request
        .lines()
        .next()
        .and_then(|line| line.split_whitespace().nth(1))
        .unwrap_or("");
    let (status, content_type, body) = if target == "/metrics" || target.starts_with("/metrics?") {
        (
            "200 OK",
            "text/plain; version=0.0.4; charset=utf-8",
            metrics.render_prometheus(service, monitor),
        )
    } else {
        (
            "404 Not Found",
            "text/plain; charset=utf-8",
            "only /metrics lives here\n".to_string(),
        )
    };
    let response = format!(
        "HTTP/1.1 {status}\r\nContent-Type: {content_type}\r\nContent-Length: {}\r\nConnection: close\r\n\r\n{body}",
        body.len()
    );
    stream.write_all(response.as_bytes())
}

/// Binds the scrape listener and spawns its serving thread; returns the
/// actually-bound address (resolving `:0`) with the join handle.
pub(crate) fn spawn_metrics_listener(
    addr: SocketAddr,
    metrics: Arc<ServerMetrics>,
    service: Arc<AccountService>,
    monitor: Option<Arc<ReplicationMonitor>>,
    shutdown: Arc<AtomicBool>,
) -> std::io::Result<(SocketAddr, JoinHandle<()>)> {
    let listener = TcpListener::bind(addr)?;
    let bound = listener.local_addr()?;
    let handle = std::thread::Builder::new()
        .name("spgraph-metrics".into())
        .spawn(move || serve_metrics(listener, metrics, service, monitor, shutdown))?;
    Ok((bound, handle))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn histogram_buckets_and_quantiles() {
        let h = Histogram::default();
        assert_eq!(h.quantile_us(0.99), 0, "empty histogram");
        for us in [5u64, 30, 30, 90, 400, 2_000_000, 99_000_000] {
            h.observe(Duration::from_micros(us));
        }
        assert_eq!(h.count(), 7);
        // p50 of 7 samples is the 4th (90µs) → bucket bound 100µs.
        assert_eq!(h.quantile_us(0.50), 100);
        // The 99µs-over-everything sample overflows into +Inf.
        assert_eq!(h.quantile_us(1.0), u64::MAX);
        let mut out = String::new();
        h.render(&mut out, "test_seconds", "type=\"t\",");
        assert!(out.contains("test_seconds_bucket{type=\"t\",le=\"+Inf\"} 7"));
        assert!(out.contains("test_seconds_count{type=\"t\"} 7"));
        // Cumulative counts are monotone.
        let counts: Vec<u64> = out
            .lines()
            .filter(|l| l.contains("_bucket"))
            .map(|l| l.rsplit(' ').next().unwrap().parse().unwrap())
            .collect();
        assert!(counts.windows(2).all(|w| w[0] <= w[1]));
    }

    #[test]
    fn exposition_is_well_formed() {
        let metrics = ServerMetrics::default();
        metrics.count_request(RequestType::Query);
        metrics.observe_latency(RequestType::Query, Duration::from_micros(42));
        metrics.count_overload(OverloadReason::RateLimit);
        metrics.connections_open.inc();
        metrics.promotions.inc();
        let store = plus_store::Store::new(&["Public"], &[]).unwrap();
        let service = AccountService::new(std::sync::Arc::new(store));
        let text = metrics.render_prometheus(&service, None);
        for needle in [
            "spgraph_requests_total{type=\"query\"} 1",
            "spgraph_requests_total{type=\"promote\"} 0",
            "spgraph_requests_total{type=\"log_digests\"} 0",
            "spgraph_overload_drops_total{reason=\"rate_limit\"} 1",
            "spgraph_overload_drops_total{reason=\"conn_cap\"} 0",
            "spgraph_connections_open 1",
            "spgraph_frame_cache_hits_total 0",
            "spgraph_frame_cache_hit_rate 0",
            "spgraph_replication_term 0",
            "spgraph_replication_lag 0",
            "spgraph_promotions_total 1",
            "spgraph_request_latency_seconds_bucket{type=\"query\",le=\"0.00005\"} 1",
            "spgraph_request_latency_seconds_count{type=\"query\"} 1",
            "# TYPE spgraph_request_latency_seconds histogram",
        ] {
            assert!(text.contains(needle), "missing {needle:?} in:\n{text}");
        }
        // Every non-comment line is `name{labels} value` with a numeric
        // value — the shape scrapers require.
        for line in text.lines().filter(|l| !l.starts_with('#')) {
            let value = line.rsplit(' ').next().unwrap();
            assert!(value.parse::<f64>().is_ok(), "non-numeric sample {line:?}");
        }
    }
}
