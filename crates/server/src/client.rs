//! The blocking client and connection pool.

use std::net::{TcpStream, ToSocketAddrs};
use std::sync::atomic::{AtomicUsize, Ordering};

use parking_lot::Mutex;
use plus_store::wire::{
    decode_batch_response_into, decode_response, encode_batch_request, encode_request, ReplicaRole,
    ReplicaStatus, Request, Response, ServerHello, WireErrorKind, PROTOCOL_VERSION,
};
use plus_store::{CheckpointStats, QueryRequest, QueryResponse};
use surrogate_core::privilege::PrivilegeId;

use crate::error::ClientError;
use crate::frame::{read_frame, write_frame};

/// A blocking connection to a query server.
///
/// One request is in flight at a time (the protocol is strict
/// request/response); clone connections or use a [`ClientPool`] for
/// parallelism. Connecting performs the Hello handshake, so a
/// constructed client is always usable and knows the server's lattice
/// ([`ServerHello::predicates`]) without ever seeing the graph.
pub struct Client {
    stream: TcpStream,
    hello: ServerHello,
    inbuf: Vec<u8>,
    outbuf: Vec<u8>,
    healthy: bool,
}

impl std::fmt::Debug for Client {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Client")
            .field("peer", &self.stream.peer_addr().ok())
            .field("epoch_at_connect", &self.hello.epoch)
            .field("healthy", &self.healthy)
            .finish()
    }
}

impl Client {
    /// Connects and handshakes as `consumer`, claiming `claims`
    /// predicates by name (empty = the Public consumer).
    pub fn connect(
        addr: impl ToSocketAddrs,
        consumer: &str,
        claims: &[&str],
    ) -> Result<Client, ClientError> {
        let stream = TcpStream::connect(addr)?;
        stream.set_nodelay(true)?;
        let mut client = Client {
            stream,
            hello: ServerHello {
                version: PROTOCOL_VERSION,
                epoch: 0,
                nodes: 0,
                predicates: Vec::new(),
            },
            inbuf: Vec::with_capacity(512),
            outbuf: Vec::with_capacity(512),
            healthy: true,
        };
        let hello = Request::Hello {
            version: PROTOCOL_VERSION,
            consumer: consumer.to_string(),
            claims: claims.iter().map(|c| c.to_string()).collect(),
        };
        match client.call(&hello)? {
            Response::Hello(hello) => {
                if hello.version != PROTOCOL_VERSION {
                    return Err(ClientError::VersionMismatch {
                        server: hello.version,
                    });
                }
                client.hello = hello;
                Ok(client)
            }
            // A typed refusal (unknown predicate claim, version skew):
            // surface the server's own words.
            Response::Error(e) => Err(ClientError::Remote(e)),
            _ => Err(ClientError::Unexpected("non-Hello")),
        }
    }

    /// What the server announced at handshake time.
    pub fn hello(&self) -> &ServerHello {
        &self.hello
    }

    /// Resolves a predicate name against the server's lattice.
    pub fn predicate(&self, name: &str) -> Option<PrivilegeId> {
        self.hello.predicate(name)
    }

    /// Whether the connection is still believed usable. Typed server
    /// errors do not poison a client; transport and framing failures do.
    pub fn is_healthy(&self) -> bool {
        self.healthy
    }

    /// One framed round trip. Typed error frames come back as
    /// `Ok(Response::Error(_))`; the public wrappers turn them into
    /// [`ClientError::Remote`].
    fn call(&mut self, request: &Request) -> Result<Response, ClientError> {
        // An unencodable request never touches the wire, so it refuses
        // only itself: the connection stays healthy and in sync.
        let payload = encode_request(request).map_err(ClientError::Unencodable)?;
        if let Err(e) = write_frame(&mut self.stream, &payload, &mut self.outbuf) {
            self.healthy = false;
            return Err(e.into());
        }
        match read_frame(&mut self.stream, &mut self.inbuf) {
            Ok(Some(payload)) => match decode_response(payload) {
                Ok(response) => Ok(response),
                Err(e) => {
                    self.healthy = false;
                    Err(ClientError::Malformed(e))
                }
            },
            Ok(None) => {
                self.healthy = false;
                Err(ClientError::Disconnected)
            }
            Err(e) => {
                self.healthy = false;
                Err(e.into())
            }
        }
    }

    /// Answers one lineage query remotely.
    pub fn query(&mut self, request: &QueryRequest) -> Result<QueryResponse, ClientError> {
        match self.call(&Request::Query(request.clone()))? {
            Response::Query(response) => Ok(response),
            Response::Error(e) => Err(ClientError::Remote(e)),
            _ => {
                self.healthy = false;
                Err(ClientError::Unexpected("non-Query"))
            }
        }
    }

    /// Answers many lineage queries against one pinned server epoch.
    pub fn query_batch(
        &mut self,
        requests: &[QueryRequest],
    ) -> Result<Vec<QueryResponse>, ClientError> {
        let mut responses = Vec::with_capacity(requests.len());
        self.query_batch_into(requests, &mut responses)?;
        Ok(responses)
    }

    /// [`query_batch`](Self::query_batch), decoding into `out` and
    /// reusing its allocations — the response vector, each response's
    /// rows, and each row's label buffer are overwritten in place. A
    /// closed loop that drains batch after batch through one `out`
    /// buffer performs no per-round heap allocation on the receive
    /// path; see the module docs of [`plus_store::wire`].
    pub fn query_batch_into(
        &mut self,
        requests: &[QueryRequest],
        out: &mut Vec<QueryResponse>,
    ) -> Result<(), ClientError> {
        let payload = encode_batch_request(requests).map_err(ClientError::Unencodable)?;
        if let Err(e) = write_frame(&mut self.stream, &payload, &mut self.outbuf) {
            self.healthy = false;
            return Err(e.into());
        }
        match read_frame(&mut self.stream, &mut self.inbuf) {
            Ok(Some(payload)) => match decode_batch_response_into(payload, out) {
                Ok(None) => Ok(()),
                Ok(Some(remote)) => Err(ClientError::Remote(remote)),
                Err(e) => {
                    self.healthy = false;
                    Err(ClientError::Malformed(e))
                }
            },
            Ok(None) => {
                self.healthy = false;
                Err(ClientError::Disconnected)
            }
            Err(e) => {
                self.healthy = false;
                Err(e.into())
            }
        }
    }

    /// The server's current epoch.
    pub fn epoch(&mut self) -> Result<u64, ClientError> {
        match self.call(&Request::Epoch)? {
            Response::Epoch(epoch) => Ok(epoch),
            Response::Error(e) => Err(ClientError::Remote(e)),
            _ => {
                self.healthy = false;
                Err(ClientError::Unexpected("non-Epoch"))
            }
        }
    }

    /// Asks the server to checkpoint its durable store.
    pub fn checkpoint(&mut self) -> Result<CheckpointStats, ClientError> {
        match self.call(&Request::Checkpoint)? {
            Response::Checkpoint(stats) => Ok(stats),
            Response::Error(e) => Err(ClientError::Remote(e)),
            _ => {
                self.healthy = false;
                Err(ClientError::Unexpected("non-Checkpoint"))
            }
        }
    }

    /// The server's replication status: role (primary or replica),
    /// epochs, fencing term, lag, and link health. Safe against any
    /// server.
    pub fn replica_status(&mut self) -> Result<ReplicaStatus, ClientError> {
        match self.call(&Request::ReplicaStatus)? {
            Response::ReplicaStatus(status) => Ok(status),
            Response::Error(e) => Err(ClientError::Remote(e)),
            _ => {
                self.healthy = false;
                Err(ClientError::Unexpected("non-ReplicaStatus"))
            }
        }
    }

    /// Asks the server to promote the replica it fronts to primary,
    /// bumping the fencing term (owner-side: the server must have
    /// replication enabled). Idempotent — an already-primary server
    /// answers with its current term.
    pub fn promote(&mut self) -> Result<u64, ClientError> {
        match self.call(&Request::Promote)? {
            Response::Promoted { term } => Ok(term),
            Response::Error(e) => Err(ClientError::Remote(e)),
            _ => {
                self.healthy = false;
                Err(ClientError::Unexpected("non-Promoted"))
            }
        }
    }
}

/// A pool of [`Client`] connections to one logical service — a primary
/// and, optionally, its read replicas — for callers that fan requests
/// out across threads.
///
/// [`get`](ClientPool::get) hands out an idle connection or dials a new
/// one. Every acquisition **probes** the connection with a cheap
/// `Epoch` round trip first: a server restart leaves dead sockets in
/// the idle set (the peer's FIN is only visible on the next I/O), and
/// without the probe those dead connections would be redealt and fail
/// mid-request. Stale entries are dropped and replaced by a fresh dial.
/// The guard returns the connection on drop if it is still
/// [healthy](Client::is_healthy), so transport failures age out of the
/// pool instead of being redealt.
///
/// With [`with_replicas`](Self::with_replicas), fresh dials spread
/// round-robin across the replica addresses and **fall back to the
/// primary** when a replica is down. Replica answers may lag the
/// primary by a few epochs (each response says which); pin reads that
/// must be fresh to a primary-only pool.
pub struct ClientPool {
    addr: String,
    replicas: Vec<String>,
    next_replica: AtomicUsize,
    consumer: String,
    claims: Vec<String>,
    idle: Mutex<Vec<Client>>,
    max_idle: usize,
    /// Where writes last landed: the address [`writable`](Self::writable)
    /// resolved, or a `NotWritable` redirect target. Tried first on the
    /// next resolution.
    writable_addr: Mutex<Option<String>>,
}

impl std::fmt::Debug for ClientPool {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("ClientPool")
            .field("addr", &self.addr)
            .field("replicas", &self.replicas)
            .field("consumer", &self.consumer)
            .field("idle", &self.idle.lock().len())
            .finish()
    }
}

impl ClientPool {
    /// A pool dialing `addr` as `consumer` with `claims`. No connection
    /// is opened until the first [`get`](Self::get).
    pub fn new(addr: impl Into<String>, consumer: impl Into<String>, claims: &[&str]) -> Self {
        Self {
            addr: addr.into(),
            replicas: Vec::new(),
            next_replica: AtomicUsize::new(0),
            consumer: consumer.into(),
            claims: claims.iter().map(|c| c.to_string()).collect(),
            idle: Mutex::new(Vec::new()),
            max_idle: 16,
            writable_addr: Mutex::new(None),
        }
    }

    /// Caps how many idle connections the pool retains (default 16).
    pub fn with_max_idle(mut self, max_idle: usize) -> Self {
        self.max_idle = max_idle;
        self
    }

    /// Adds read-replica addresses: fresh dials round-robin across them
    /// and fall back to the primary when none answers.
    pub fn with_replicas(mut self, addrs: &[&str]) -> Self {
        self.replicas = addrs.iter().map(|a| a.to_string()).collect();
        self
    }

    /// Checks out a connection, dialing if none is idle. Idle
    /// connections are probed (one `Epoch` round trip) before being
    /// handed out; a probe failure drops the stale entry and the next
    /// candidate — or a fresh dial — takes its place.
    pub fn get(&self) -> Result<PooledClient<'_>, ClientError> {
        loop {
            let candidate = self.idle.lock().pop();
            let Some(mut client) = candidate else { break };
            // The probe also rechecks the health flag: epoch() poisons
            // the client on any transport or framing failure.
            if client.is_healthy() && client.epoch().is_ok() {
                return Ok(PooledClient {
                    pool: self,
                    client: Some(client),
                });
            }
            // Stale (a restarted or dead peer): drop and keep looking.
        }
        let client = self.dial()?;
        Ok(PooledClient {
            pool: self,
            client: Some(client),
        })
    }

    /// Dials replicas round-robin, then the primary as the fallback.
    /// With no replicas configured, dials the primary directly.
    fn dial(&self) -> Result<Client, ClientError> {
        let claims: Vec<&str> = self.claims.iter().map(String::as_str).collect();
        if !self.replicas.is_empty() {
            let start = self.next_replica.fetch_add(1, Ordering::Relaxed);
            for i in 0..self.replicas.len() {
                let addr = &self.replicas[(start + i) % self.replicas.len()];
                if let Ok(client) = Client::connect(addr.as_str(), &self.consumer, &claims) {
                    return Ok(client);
                }
            }
            // Every replica refused: the primary serves the read.
        }
        Client::connect(self.addr.as_str(), &self.consumer, &claims)
    }

    /// Idle connections currently held.
    pub fn idle(&self) -> usize {
        self.idle.lock().len()
    }

    /// Resolves the **writable** endpoint: dials candidates — the last
    /// known writable address, the configured primary, then the replica
    /// list — asks each for its [`replica_status`](Client::replica_status),
    /// and returns the first that identifies as a primary. Replicas that
    /// answer contribute their `primary_addr` hint to the candidate
    /// list, so after a failover the pool follows the breadcrumbs to the
    /// promoted node even when it was never configured. The resolved
    /// address is cached and tried first next time.
    ///
    /// Fails with [`ClientError::NoWritable`] when every candidate is
    /// down or read-only.
    pub fn writable(&self) -> Result<PooledClient<'_>, ClientError> {
        let claims: Vec<&str> = self.claims.iter().map(String::as_str).collect();
        let mut candidates: Vec<String> = Vec::new();
        let push = |list: &mut Vec<String>, addr: String| {
            if !addr.is_empty() && !list.contains(&addr) {
                list.push(addr);
            }
        };
        if let Some(cached) = self.writable_addr.lock().clone() {
            push(&mut candidates, cached);
        }
        push(&mut candidates, self.addr.clone());
        for replica in &self.replicas {
            push(&mut candidates, replica.clone());
        }
        let mut next = 0;
        while next < candidates.len() {
            let addr = candidates[next].clone();
            next += 1;
            let Ok(mut client) = Client::connect(addr.as_str(), &self.consumer, &claims) else {
                continue;
            };
            match client.replica_status() {
                Ok(status) if status.role == ReplicaRole::Primary => {
                    *self.writable_addr.lock() = Some(addr);
                    return Ok(PooledClient {
                        pool: self,
                        client: Some(client),
                    });
                }
                Ok(status) => {
                    if let Some(hint) = status.primary_addr {
                        push(&mut candidates, hint);
                    }
                }
                Err(_) => {}
            }
        }
        Err(ClientError::NoWritable)
    }

    /// Feeds a write failure back into the pool's routing: a
    /// `NotWritable` refusal carries the writable primary's address when
    /// the refusing replica knows it. Returns `true` when the error was
    /// a redirect and the cached writable address was updated — retry
    /// via [`writable`](Self::writable); on any other error, `false`.
    pub fn note_redirect(&self, error: &ClientError) -> bool {
        let ClientError::Remote(remote) = error else {
            return false;
        };
        if remote.kind != WireErrorKind::NotWritable || remote.message.is_empty() {
            return false;
        }
        *self.writable_addr.lock() = Some(remote.message.clone());
        true
    }
}

/// A checked-out pool connection; dereferences to [`Client`] and returns
/// to the pool on drop when still healthy.
pub struct PooledClient<'a> {
    pool: &'a ClientPool,
    client: Option<Client>,
}

impl std::ops::Deref for PooledClient<'_> {
    type Target = Client;

    fn deref(&self) -> &Client {
        self.client.as_ref().expect("present until drop")
    }
}

impl std::ops::DerefMut for PooledClient<'_> {
    fn deref_mut(&mut self) -> &mut Client {
        self.client.as_mut().expect("present until drop")
    }
}

impl Drop for PooledClient<'_> {
    fn drop(&mut self) {
        if let Some(client) = self.client.take() {
            if client.healthy {
                let mut idle = self.pool.idle.lock();
                if idle.len() < self.pool.max_idle {
                    idle.push(client);
                }
            }
        }
    }
}
