//! The blocking client and connection pool.

use std::net::{TcpStream, ToSocketAddrs};
use std::sync::atomic::{AtomicUsize, Ordering};

use parking_lot::Mutex;
use plus_store::wire::{
    decode_batch_response_into, decode_response, encode_batch_request, encode_request, ReplicaRole,
    ReplicaStatus, Request, Response, ServerHello, ShardStatusInfo, WireErrorKind, WriteOp,
    PROTOCOL_VERSION,
};
use plus_store::{CheckpointStats, QueryRequest, QueryResponse, RecordId};
use surrogate_core::privilege::PrivilegeId;
use surrogate_core::shard::ShardMap;

use crate::error::ClientError;
use crate::frame::{read_frame, write_frame};
use crate::topology::Topology;

/// A blocking connection to a query server.
///
/// One request is in flight at a time (the protocol is strict
/// request/response); clone connections or use a [`ClientPool`] for
/// parallelism. Connecting performs the Hello handshake, so a
/// constructed client is always usable and knows the server's lattice
/// ([`ServerHello::predicates`]) without ever seeing the graph.
pub struct Client {
    stream: TcpStream,
    hello: ServerHello,
    inbuf: Vec<u8>,
    outbuf: Vec<u8>,
    healthy: bool,
}

impl std::fmt::Debug for Client {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Client")
            .field("peer", &self.stream.peer_addr().ok())
            .field("epoch_at_connect", &self.hello.epoch)
            .field("healthy", &self.healthy)
            .finish()
    }
}

impl Client {
    /// Connects and handshakes as `consumer`, claiming `claims`
    /// predicates by name (empty = the Public consumer).
    pub fn connect(
        addr: impl ToSocketAddrs,
        consumer: &str,
        claims: &[&str],
    ) -> Result<Client, ClientError> {
        let stream = TcpStream::connect(addr)?;
        stream.set_nodelay(true)?;
        let mut client = Client {
            stream,
            hello: ServerHello {
                version: PROTOCOL_VERSION,
                epoch: 0,
                nodes: 0,
                shard_count: 0,
                shard_index: None,
                predicates: Vec::new(),
                peers: Vec::new(),
            },
            inbuf: Vec::with_capacity(512),
            outbuf: Vec::with_capacity(512),
            healthy: true,
        };
        let hello = Request::Hello {
            version: PROTOCOL_VERSION,
            consumer: consumer.to_string(),
            claims: claims.iter().map(|c| c.to_string()).collect(),
        };
        match client.call(&hello)? {
            Response::Hello(hello) => {
                if hello.version != PROTOCOL_VERSION {
                    return Err(ClientError::VersionMismatch {
                        server: hello.version,
                    });
                }
                client.hello = hello;
                Ok(client)
            }
            // A typed refusal (unknown predicate claim, version skew):
            // surface the server's own words.
            Response::Error(e) => Err(ClientError::Remote(e)),
            _ => Err(ClientError::Unexpected("non-Hello")),
        }
    }

    /// What the server announced at handshake time.
    pub fn hello(&self) -> &ServerHello {
        &self.hello
    }

    /// Resolves a predicate name against the server's lattice.
    pub fn predicate(&self, name: &str) -> Option<PrivilegeId> {
        self.hello.predicate(name)
    }

    /// Whether the connection is still believed usable. Typed server
    /// errors do not poison a client; transport and framing failures do.
    pub fn is_healthy(&self) -> bool {
        self.healthy
    }

    /// One framed round trip. Typed error frames come back as
    /// `Ok(Response::Error(_))`; the public wrappers turn them into
    /// [`ClientError::Remote`].
    fn call(&mut self, request: &Request) -> Result<Response, ClientError> {
        // An unencodable request never touches the wire, so it refuses
        // only itself: the connection stays healthy and in sync.
        let payload = encode_request(request).map_err(ClientError::Unencodable)?;
        if let Err(e) = write_frame(&mut self.stream, &payload, &mut self.outbuf) {
            self.healthy = false;
            return Err(e.into());
        }
        match read_frame(&mut self.stream, &mut self.inbuf) {
            Ok(Some(payload)) => match decode_response(payload) {
                Ok(response) => Ok(response),
                Err(e) => {
                    self.healthy = false;
                    Err(ClientError::Malformed(e))
                }
            },
            Ok(None) => {
                self.healthy = false;
                Err(ClientError::Disconnected)
            }
            Err(e) => {
                self.healthy = false;
                Err(e.into())
            }
        }
    }

    /// Answers one lineage query remotely.
    pub fn query(&mut self, request: &QueryRequest) -> Result<QueryResponse, ClientError> {
        match self.call(&Request::Query(request.clone()))? {
            Response::Query(response) => Ok(response),
            Response::Error(e) => Err(ClientError::Remote(e)),
            _ => {
                self.healthy = false;
                Err(ClientError::Unexpected("non-Query"))
            }
        }
    }

    /// Answers many lineage queries against one pinned server epoch.
    pub fn query_batch(
        &mut self,
        requests: &[QueryRequest],
    ) -> Result<Vec<QueryResponse>, ClientError> {
        let mut responses = Vec::with_capacity(requests.len());
        self.query_batch_into(requests, &mut responses)?;
        Ok(responses)
    }

    /// [`query_batch`](Self::query_batch), decoding into `out` and
    /// reusing its allocations — the response vector, each response's
    /// rows, and each row's label buffer are overwritten in place. A
    /// closed loop that drains batch after batch through one `out`
    /// buffer performs no per-round heap allocation on the receive
    /// path; see the module docs of [`plus_store::wire`].
    pub fn query_batch_into(
        &mut self,
        requests: &[QueryRequest],
        out: &mut Vec<QueryResponse>,
    ) -> Result<(), ClientError> {
        let payload = encode_batch_request(requests).map_err(ClientError::Unencodable)?;
        if let Err(e) = write_frame(&mut self.stream, &payload, &mut self.outbuf) {
            self.healthy = false;
            return Err(e.into());
        }
        match read_frame(&mut self.stream, &mut self.inbuf) {
            Ok(Some(payload)) => match decode_batch_response_into(payload, out) {
                Ok(None) => Ok(()),
                Ok(Some(remote)) => Err(ClientError::Remote(remote)),
                Err(e) => {
                    self.healthy = false;
                    Err(ClientError::Malformed(e))
                }
            },
            Ok(None) => {
                self.healthy = false;
                Err(ClientError::Disconnected)
            }
            Err(e) => {
                self.healthy = false;
                Err(e.into())
            }
        }
    }

    /// The server's current epoch.
    pub fn epoch(&mut self) -> Result<u64, ClientError> {
        match self.call(&Request::Epoch)? {
            Response::Epoch(epoch) => Ok(epoch),
            Response::Error(e) => Err(ClientError::Remote(e)),
            _ => {
                self.healthy = false;
                Err(ClientError::Unexpected("non-Epoch"))
            }
        }
    }

    /// Asks the server to checkpoint its durable store.
    pub fn checkpoint(&mut self) -> Result<CheckpointStats, ClientError> {
        match self.call(&Request::Checkpoint)? {
            Response::Checkpoint(stats) => Ok(stats),
            Response::Error(e) => Err(ClientError::Remote(e)),
            _ => {
                self.healthy = false;
                Err(ClientError::Unexpected("non-Checkpoint"))
            }
        }
    }

    /// The server's replication status: role (primary or replica),
    /// epochs, fencing term, lag, and link health. Safe against any
    /// server.
    pub fn replica_status(&mut self) -> Result<ReplicaStatus, ClientError> {
        match self.call(&Request::ReplicaStatus)? {
            Response::ReplicaStatus(status) => Ok(status),
            Response::Error(e) => Err(ClientError::Remote(e)),
            _ => {
                self.healthy = false;
                Err(ClientError::Unexpected("non-ReplicaStatus"))
            }
        }
    }

    /// Asks the server to promote the replica it fronts to primary,
    /// bumping the fencing term (owner-side: the server must have
    /// replication enabled). Idempotent — an already-primary server
    /// answers with its current term.
    pub fn promote(&mut self) -> Result<u64, ClientError> {
        match self.call(&Request::Promote)? {
            Response::Promoted { term } => Ok(term),
            Response::Error(e) => Err(ClientError::Remote(e)),
            _ => {
                self.healthy = false;
                Err(ClientError::Unexpected("non-Promoted"))
            }
        }
    }

    /// Applies one write on the server (owner-side: the server must
    /// have remote writes enabled, as a shard primary does). Returns
    /// the server's store clock after the write and, for an
    /// [`WriteOp::AppendNode`], the assigned global id.
    ///
    /// A write routed to the wrong shard of a partitioned deployment
    /// fails with a typed [`WireErrorKind::WrongShard`] refusal whose
    /// message names the owner; [`ShardRouter::write`] does the routing
    /// and the redirect retry for you.
    pub fn write(&mut self, op: WriteOp) -> Result<(u64, Option<RecordId>), ClientError> {
        match self.call(&Request::Write { op })? {
            Response::Written { clock, id } => Ok((clock, id)),
            Response::Error(e) => Err(ClientError::Remote(e)),
            _ => {
                self.healthy = false;
                Err(ClientError::Unexpected("non-Written"))
            }
        }
    }

    /// The server's shard topology and per-shard epochs: its own slot
    /// live on a shard primary, the full merge vector on a gather, the
    /// degenerate single-epoch answer on an unsharded server. Safe
    /// against any server.
    pub fn shard_status(&mut self) -> Result<ShardStatusInfo, ClientError> {
        match self.call(&Request::ShardStatus)? {
            Response::ShardStatus(status) => Ok(status),
            Response::Error(e) => Err(ClientError::Remote(e)),
            _ => {
                self.healthy = false;
                Err(ClientError::Unexpected("non-ShardStatus"))
            }
        }
    }
}

/// A pool of [`Client`] connections to one logical service — a primary
/// and, optionally, its read replicas — for callers that fan requests
/// out across threads.
///
/// [`get`](ClientPool::get) hands out an idle connection or dials a new
/// one. Every acquisition **probes** the connection with a cheap
/// `Epoch` round trip first: a server restart leaves dead sockets in
/// the idle set (the peer's FIN is only visible on the next I/O), and
/// without the probe those dead connections would be redealt and fail
/// mid-request. Stale entries are dropped and replaced by a fresh dial.
/// The guard returns the connection on drop if it is still
/// [healthy](Client::is_healthy), so transport failures age out of the
/// pool instead of being redealt.
///
/// With [`with_replicas`](Self::with_replicas), fresh dials spread
/// round-robin across the replica addresses and **fall back to the
/// primary** when a replica is down. Replica answers may lag the
/// primary by a few epochs (each response says which); pin reads that
/// must be fresh to a primary-only pool.
pub struct ClientPool {
    addr: String,
    replicas: Vec<String>,
    next_replica: AtomicUsize,
    consumer: String,
    claims: Vec<String>,
    idle: Mutex<Vec<Client>>,
    max_idle: usize,
    /// Where writes last landed: the address [`writable`](Self::writable)
    /// resolved, or a `NotWritable` redirect target. Tried first on the
    /// next resolution.
    writable_addr: Mutex<Option<String>>,
}

impl std::fmt::Debug for ClientPool {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("ClientPool")
            .field("addr", &self.addr)
            .field("replicas", &self.replicas)
            .field("consumer", &self.consumer)
            .field("idle", &self.idle.lock().len())
            .finish()
    }
}

impl ClientPool {
    /// A pool dialing `addr` as `consumer` with `claims`. No connection
    /// is opened until the first [`get`](Self::get).
    pub fn new(addr: impl Into<String>, consumer: impl Into<String>, claims: &[&str]) -> Self {
        Self {
            addr: addr.into(),
            replicas: Vec::new(),
            next_replica: AtomicUsize::new(0),
            consumer: consumer.into(),
            claims: claims.iter().map(|c| c.to_string()).collect(),
            idle: Mutex::new(Vec::new()),
            max_idle: 16,
            writable_addr: Mutex::new(None),
        }
    }

    /// Caps how many idle connections the pool retains (default 16).
    pub fn with_max_idle(mut self, max_idle: usize) -> Self {
        self.max_idle = max_idle;
        self
    }

    /// Adds read-replica addresses: fresh dials round-robin across them
    /// and fall back to the primary when none answers. Accepts any
    /// iterable of string-likes — `&["a:1"]`, `vec!["a:1".to_string()]`,
    /// or a [`Topology`](crate::Topology) slot's
    /// [`replicas`](crate::Topology::replicas).
    pub fn with_replicas(mut self, addrs: impl IntoIterator<Item = impl Into<String>>) -> Self {
        self.replicas = addrs.into_iter().map(Into::into).collect();
        self
    }

    /// Checks out a connection, dialing if none is idle. Idle
    /// connections are probed (one `Epoch` round trip) before being
    /// handed out; a probe failure drops the stale entry and the next
    /// candidate — or a fresh dial — takes its place.
    pub fn get(&self) -> Result<PooledClient<'_>, ClientError> {
        loop {
            let candidate = self.idle.lock().pop();
            let Some(mut client) = candidate else { break };
            // The probe also rechecks the health flag: epoch() poisons
            // the client on any transport or framing failure.
            if client.is_healthy() && client.epoch().is_ok() {
                return Ok(PooledClient {
                    pool: self,
                    client: Some(client),
                });
            }
            // Stale (a restarted or dead peer): drop and keep looking.
        }
        let client = self.dial()?;
        Ok(PooledClient {
            pool: self,
            client: Some(client),
        })
    }

    /// Dials replicas round-robin, then the primary as the fallback.
    /// With no replicas configured, dials the primary directly.
    fn dial(&self) -> Result<Client, ClientError> {
        let claims: Vec<&str> = self.claims.iter().map(String::as_str).collect();
        if !self.replicas.is_empty() {
            let start = self.next_replica.fetch_add(1, Ordering::Relaxed);
            for i in 0..self.replicas.len() {
                let addr = &self.replicas[(start + i) % self.replicas.len()];
                if let Ok(client) = Client::connect(addr.as_str(), &self.consumer, &claims) {
                    return Ok(client);
                }
            }
            // Every replica refused: the primary serves the read.
        }
        Client::connect(self.addr.as_str(), &self.consumer, &claims)
    }

    /// Idle connections currently held.
    pub fn idle(&self) -> usize {
        self.idle.lock().len()
    }

    /// Resolves the **writable** endpoint: dials candidates — the last
    /// known writable address, the configured primary, then the replica
    /// list — asks each for its [`replica_status`](Client::replica_status),
    /// and returns the first that identifies as a primary. Replicas that
    /// answer contribute their `primary_addr` hint to the candidate
    /// list, so after a failover the pool follows the breadcrumbs to the
    /// promoted node even when it was never configured. The resolved
    /// address is cached and tried first next time.
    ///
    /// Fails with [`ClientError::NoWritable`] when every candidate is
    /// down or read-only.
    pub fn writable(&self) -> Result<PooledClient<'_>, ClientError> {
        let claims: Vec<&str> = self.claims.iter().map(String::as_str).collect();
        let mut candidates: Vec<String> = Vec::new();
        let push = |list: &mut Vec<String>, addr: String| {
            if !addr.is_empty() && !list.contains(&addr) {
                list.push(addr);
            }
        };
        if let Some(cached) = self.writable_addr.lock().clone() {
            push(&mut candidates, cached);
        }
        push(&mut candidates, self.addr.clone());
        for replica in &self.replicas {
            push(&mut candidates, replica.clone());
        }
        let mut next = 0;
        while next < candidates.len() {
            let addr = candidates[next].clone();
            next += 1;
            let Ok(mut client) = Client::connect(addr.as_str(), &self.consumer, &claims) else {
                continue;
            };
            match client.replica_status() {
                Ok(status) if status.role == ReplicaRole::Primary => {
                    *self.writable_addr.lock() = Some(addr);
                    return Ok(PooledClient {
                        pool: self,
                        client: Some(client),
                    });
                }
                Ok(status) => {
                    if let Some(hint) = status.primary_addr {
                        push(&mut candidates, hint);
                    }
                }
                Err(_) => {}
            }
        }
        Err(ClientError::NoWritable)
    }

    /// Feeds a write failure back into the pool's routing: a
    /// `NotWritable` refusal carries the writable primary's address when
    /// the refusing replica knows it. Returns `true` when the error was
    /// a redirect and the cached writable address was updated — retry
    /// via [`writable`](Self::writable); on any other error, `false`.
    pub fn note_redirect(&self, error: &ClientError) -> bool {
        let ClientError::Remote(remote) = error else {
            return false;
        };
        if remote.kind != WireErrorKind::NotWritable || remote.message.is_empty() {
            return false;
        }
        *self.writable_addr.lock() = Some(remote.message.clone());
        true
    }
}

/// A checked-out pool connection; dereferences to [`Client`] and returns
/// to the pool on drop when still healthy.
pub struct PooledClient<'a> {
    pool: &'a ClientPool,
    client: Option<Client>,
}

impl std::ops::Deref for PooledClient<'_> {
    type Target = Client;

    fn deref(&self) -> &Client {
        self.client.as_ref().expect("present until drop")
    }
}

impl std::ops::DerefMut for PooledClient<'_> {
    fn deref_mut(&mut self) -> &mut Client {
        self.client.as_mut().expect("present until drop")
    }
}

impl Drop for PooledClient<'_> {
    fn drop(&mut self) {
        if let Some(client) = self.client.take() {
            if client.healthy {
                let mut idle = self.pool.idle.lock();
                if idle.len() < self.pool.max_idle {
                    idle.push(client);
                }
            }
        }
    }
}

/// Shard-aware routing over a partitioned deployment: one [`ClientPool`]
/// per shard primary, writes and point reads steered to the owner.
///
/// Routing is stateless arithmetic (shard `i` of `N` owns ids ≡ `i` mod
/// `N`; see [`surrogate_core::shard`]): no directory service, no
/// topology refresh. Node appends have no routing id — the store assigns
/// the id — so they round-robin across shards, which keeps the keyspace
/// dense everywhere. Edges route by their source's owner, policy by the
/// governed node's owner.
///
/// A write the router mis-steered (say, the operator re-ordered the peer
/// list) comes back as a typed [`WireErrorKind::WrongShard`] refusal
/// whose message names the owner — its address when the refusing server
/// knows the peer list, its shard index in decimal otherwise. The router
/// follows that redirect **once**; a second refusal is surfaced, because
/// two disagreeing servers mean the topology itself is misconfigured and
/// retrying would bounce forever.
///
/// When the [`Topology`] names replicas for a shard, the router also
/// survives that shard's **primary dying**: a dead connection or a
/// [`WireErrorKind::NotWritable`] refusal makes it re-resolve the
/// slot's writable endpoint through
/// [`ClientPool::writable`](ClientPool::writable) — the replica set
/// plus any redirect breadcrumbs — and retry the write once against the
/// promoted primary.
///
/// Traversals (`max_depth > 0`) need every shard's edges and belong on a
/// gather node's pool, not here — shard primaries refuse them.
pub struct ShardRouter {
    pools: Vec<ClientPool>,
    map: ShardMap,
    next_node: AtomicUsize,
}

impl std::fmt::Debug for ShardRouter {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("ShardRouter")
            .field("shards", &self.pools.len())
            .finish()
    }
}

impl ShardRouter {
    /// A router over the deployment `topology`: one pool per shard, in
    /// shard order, each dialing that shard's primary with its replicas
    /// as read spill-over and failover candidates, handshaking as the
    /// topology's consumer. Fails with [`ClientError::BadTopology`]
    /// when the topology names no shards.
    pub fn new(topology: &Topology) -> Result<Self, ClientError> {
        let map = topology.map()?;
        let claims: Vec<&str> = topology.claims().iter().map(String::as_str).collect();
        Ok(Self {
            pools: topology
                .shards()
                .iter()
                .map(|site| {
                    ClientPool::new(site.primary.clone(), topology.consumer(), &claims)
                        .with_replicas(site.replicas.iter().cloned())
                })
                .collect(),
            map,
            next_node: AtomicUsize::new(0),
        })
    }

    /// How many shards the router spreads over.
    pub fn shard_count(&self) -> u32 {
        self.map.count()
    }

    /// The shard that owns global id `id`.
    pub fn shard_of(&self, id: u32) -> u32 {
        self.map.shard_of(id)
    }

    /// The pool for shard `slot`, for callers that need to pin one
    /// (epoch probes, shard status, per-shard maintenance).
    pub fn pool(&self, slot: u32) -> &ClientPool {
        &self.pools[slot as usize]
    }

    /// Applies one write on the owning shard: edges to their source's
    /// owner, policy to the governed node's owner, node appends
    /// round-robin. Follows one [`WireErrorKind::WrongShard`] redirect.
    /// Returns the answering shard's clock and, for a node append, the
    /// assigned global id.
    ///
    /// A dead shard primary or a [`WireErrorKind::NotWritable`] refusal
    /// triggers **failover**: the slot's writable endpoint is
    /// re-resolved through [`ClientPool::writable`] (replica set plus
    /// redirect breadcrumbs) and the write retried once against the
    /// promoted primary. The original error is surfaced when no
    /// candidate identifies as writable.
    pub fn write(&self, op: WriteOp) -> Result<(u64, Option<RecordId>), ClientError> {
        let slot = match op.routing_id() {
            Some(id) => self.map.shard_of(id.0),
            None => (self.next_node.fetch_add(1, Ordering::Relaxed) % self.pools.len()) as u32,
        };
        let pool = &self.pools[slot as usize];
        let error = match pool.get().and_then(|mut client| client.write(op.clone())) {
            Ok(ack) => return Ok(ack),
            Err(error) => error,
        };
        if Self::failover_worthy(&error) {
            // A redirect breadcrumb seeds the resolution when present;
            // otherwise writable() walks the replica set itself.
            pool.note_redirect(&error);
            return match pool.writable() {
                Ok(mut client) => client.write(op),
                Err(_) => Err(error),
            };
        }
        let Some(target) = self.redirect_slot(&error) else {
            return Err(error);
        };
        self.pools[target as usize].get()?.write(op)
    }

    /// Whether a write failure means "the shard primary is gone or
    /// deposed" — the cases worth a failover resolution — rather than a
    /// refusal that would just repeat (authorization, encoding, wrong
    /// shard).
    fn failover_worthy(error: &ClientError) -> bool {
        match error {
            ClientError::Io(_) | ClientError::Disconnected => true,
            ClientError::Remote(remote) => remote.kind == WireErrorKind::NotWritable,
            _ => false,
        }
    }

    /// Answers a point read (`max_depth == 0`) on the shard that owns
    /// the root. Traversals belong on a gather pool.
    pub fn query(&self, request: &QueryRequest) -> Result<QueryResponse, ClientError> {
        let slot = self.map.shard_of(request.root.0);
        self.pools[slot as usize].get()?.query(request)
    }

    /// Decodes a [`WireErrorKind::WrongShard`] refusal into the slot to
    /// retry on: the message is the owner's address when the server knew
    /// its peers, else the owner's index in decimal.
    fn redirect_slot(&self, error: &ClientError) -> Option<u32> {
        let ClientError::Remote(remote) = error else {
            return None;
        };
        if remote.kind != WireErrorKind::WrongShard || remote.message.is_empty() {
            return None;
        }
        if let Some(slot) = self
            .pools
            .iter()
            .position(|pool| pool.addr == remote.message)
        {
            return Some(slot as u32);
        }
        remote
            .message
            .parse::<u32>()
            .ok()
            .filter(|&slot| slot < self.map.count())
    }
}
