//! # server
//!
//! The network edge of the reproduction: a std-only threaded TCP server
//! that puts the epoch-versioned
//! [`AccountService`](plus_store::AccountService) behind the wire
//! protocol of [`plus_store::wire`], plus the blocking [`Client`] /
//! [`ClientPool`] that speak it.
//!
//! # The trust boundary
//!
//! The paper's protection guarantee (and SurrogateShield's deployment
//! argument) is only real when the unprotected graph physically cannot
//! reach an untrusted consumer. This crate is that boundary:
//!
//! * **Server side (trusted).** The raw [`Store`](plus_store::Store),
//!   its write-ahead log, the materialized graph, and every
//!   [`ProtectedAccount`](surrogate_core::account::ProtectedAccount)
//!   live inside the server process and are never serialized to a
//!   socket.
//! * **Wire (untrusted).** Only [`QueryResponse`](plus_store::QueryResponse)
//!   rows — labels and depths *as seen through the consumer's protected
//!   account* — plus epochs, checkpoint statistics, lattice predicate
//!   *names*, and typed error frames ever cross. A surrogate row carries
//!   the surrogate's label, never the original's.
//! * **Client side (untrusted).** [`Client`] holds the handshake
//!   metadata ([`ServerHello`](plus_store::ServerHello)) and decoded
//!   response rows; there is no API for fetching the graph, the
//!   markings, or another consumer's account.
//!
//! Consumers identify themselves at Hello time by *claiming* predicate
//! names (credential verification is out of scope for the paper, §2;
//! slot a verifier into the handshake before trusting claims in
//! production). Every request on the connection is then answered through
//! the account the claimed credential set is entitled to — exactly the
//! in-process [`AccountService`](plus_store::AccountService)
//! authorization rules, applied at the network edge.
//!
//! # Quick start
//!
//! ```
//! use std::sync::Arc;
//! use plus_store::{AccountService, Direction, NodeKind, QueryRequest, Store, Strategy};
//! use surrogate_core::feature::Features;
//!
//! # fn main() -> Result<(), Box<dyn std::error::Error>> {
//! let store = Arc::new(Store::new(&["Public"], &[])?);
//! let public = store.predicate("Public").unwrap();
//! let report = store.append_node("report", NodeKind::Data, Features::new(), public);
//!
//! // Owner side: bind the service to a socket.
//! let config = server::ServerConfig::default();
//! let server = server::Server::bind(Arc::new(AccountService::new(store)), "127.0.0.1:0", &config)?;
//!
//! // Consumer side: connect, query, never see the store.
//! let mut client = server::Client::connect(server.local_addr(), "reader", &[])?;
//! let response = client.query(&QueryRequest::new(
//!     report,
//!     Direction::Backward,
//!     u32::MAX,
//!     Strategy::Surrogate,
//! ))?;
//! assert_eq!(response.epoch, client.hello().epoch);
//! server.shutdown();
//! # Ok(())
//! # }
//! ```
//!
//! # Design notes
//!
//! No async runtime: an accept thread performs admission control
//! (connection caps, typed `Overloaded` refusals) and deals admitted
//! sockets round-robin to a few event-loop shards built on the vendored
//! [`reactor`] crate (epoll behind a safe `Poller` API). Each shard owns
//! nonblocking per-connection state machines, so tens of thousands of
//! idle connections cost file descriptors and buffers, not threads —
//! while the active set keeps the blocking-era round-trip latency
//! (`TCP_NODELAY` on, >100k single-query round trips per second on
//! loopback; see `BENCH_PR4.json` and successors). Slow readers get
//! bounded write backpressure instead of unbounded buffering, and the
//! [`metrics`] module exposes the whole edge — request latency
//! histograms, frame-cache hit rates, overload drops — as a Prometheus
//! `GET /metrics` endpoint on a separate listener
//! ([`ServerConfig::metrics_addr`]). Frames reuse the WAL's
//! `len | crc32 | payload` convention, so the same corruption
//! discipline covers disk and wire: a frame that fails its checksum or
//! declares an implausible length is answered with a typed error frame
//! (best effort) and a hangup, never a guess.
//!
//! # Replication
//!
//! Read traffic scales horizontally by **WAL shipping**: a primary
//! server whose operator enabled [`ServerConfig::allow_replication`]
//! streams its sealed write-ahead-log frames to [`Replica`]s, each of
//! which replays them into its own durable store and re-serves the same
//! query protocol read-only at a coherent (possibly lagging) epoch —
//! bind one with [`Role::Replica`]. The unprotected graph still
//! never crosses a *consumer* socket; the replication stream carries
//! raw records and belongs inside the owner's trust domain. See the
//! [`replica`] module docs for the full model, and
//! [`ClientPool::with_replicas`] for spreading reads across a replica
//! set with primary fallback.
//!
//! When a primary dies, a replica can be **promoted** in place
//! ([`Replica::promote`], or [`Client::promote`] against its fronting
//! server): promotion durably bumps a **fencing term** that every
//! shipped WAL chunk carries, so frames from the deposed primary are
//! refused rather than applied, and a restarted deposed primary
//! truncates its unreplicated tail via anti-entropy digests and rejoins
//! as a replica. [`ClientPool::writable`] re-resolves the writable
//! endpoint across a failover. The [`replica`] module's *Failover*
//! section has the runbook and the guarantees.
//!
//! # Sharding
//!
//! *Write* traffic scales horizontally by **partitioning the keyspace**:
//! shard `i` of `N` owns the ids ≡ `i` (mod `N`) and runs an ordinary
//! primary over a partitioned store, accepting remote
//! [`WriteOp`](plus_store::WriteOp)s for the ids it owns — bind one with
//! [`Role::Shard`], route to them with a [`ShardRouter`]. Cross-shard
//! traversals are served by a **gather node** ([`scatter::Gather`],
//! bound with [`Role::Gather`]): it follows every shard's replication
//! feed, folds them into one order-canonical merged graph, and stamps
//! each response with the per-shard epoch vector it was computed at.
//! Mis-routed writes come back as typed `WrongShard` redirects; a
//! gather missing a feed *refuses* queries (`ShardUnavailable`) instead
//! of serving an answer with a silent gap.
//!
//! The whole deployment — shard primaries, their replica sets, and the
//! consumer identity — is described once by a [`Topology`] (parsed from
//! the operator's `--peers` spec) and consumed by [`ShardRouter`],
//! [`Gather`], and the server [`Role`]s, so every layer agrees on shard
//! order and failover candidates. Each shard primary may carry its own
//! replica set with fenced promotion; the gather and the router both
//! re-resolve a promoted shard primary on their own. See the
//! [`scatter`] module docs and `docs/ARCHITECTURE.md` for the topology.

#![warn(missing_docs)]
#![warn(rust_2018_idioms)]
#![forbid(unsafe_code)]

mod admission;
mod client;
mod error;
mod frame;
pub mod metrics;
pub mod replica;
pub mod scatter;
mod server;
pub mod topology;

pub use client::{Client, ClientPool, PooledClient, ShardRouter};
pub use error::{ClientError, ReplicaError};
pub use frame::{read_frame, write_frame, FrameError};
pub use metrics::{OverloadReason, RequestType, ServerMetrics};
pub use reactor::sys::raise_nofile_limit;
pub use replica::{Replica, ReplicaConfig, ReplicationMonitor};
pub use scatter::{Gather, GatherConfig};
pub use server::{Role, Server, ServerConfig, ServerStats};
pub use topology::{ShardSite, Topology};
