//! Admission control: per-consumer token-bucket rate limiting.
//!
//! The other two admission levers — the global connection cap and
//! per-connection write backpressure — live where their state lives (the
//! accept loop and the connection state machine in `server.rs`). The
//! rate limiter is the one piece with cross-connection state: one bucket
//! per consumer *name*, shared by every connection that consumer opens,
//! resolved once at Hello time.
//!
//! A refill-on-demand token bucket: capacity `burst`, refill `rate`
//! tokens per second, one token per request frame. A consumer that stays
//! under its rate never notices; one that bursts past it gets typed
//! [`WireErrorKind::Overloaded`](plus_store::wire::WireErrorKind)
//! refusals (retryable — the connection stays open) until the bucket
//! refills.

use std::collections::HashMap;
use std::time::Instant;

use parking_lot::Mutex;

/// Most consumer names tracked at once. Names arrive from untrusted
/// Hello frames, so the map must not grow without bound; past the cap
/// the stalest bucket is recycled (a full bucket is the correct state
/// for a consumer unseen for that long anyway).
const MAX_TRACKED_CONSUMERS: usize = 64 * 1024;

#[derive(Debug, Clone, Copy)]
struct Bucket {
    tokens: f64,
    refilled: Instant,
}

/// A per-consumer token-bucket rate limiter keyed by consumer name.
#[derive(Debug)]
pub(crate) struct RateLimiter {
    /// Tokens added per second.
    rate: f64,
    /// Bucket capacity — the largest tolerated burst (one second's
    /// allowance, with a floor so tiny rates still admit a few frames).
    burst: f64,
    buckets: Mutex<HashMap<String, Bucket>>,
}

impl RateLimiter {
    /// A limiter admitting `rate` request frames per second per
    /// consumer, sustained; bursts up to one second's worth.
    pub(crate) fn new(rate: u64) -> RateLimiter {
        let rate = rate.max(1) as f64;
        RateLimiter {
            rate,
            burst: rate.max(8.0),
            buckets: Mutex::new(HashMap::new()),
        }
    }

    /// Takes one token from `consumer`'s bucket; `false` means the
    /// request must be refused with `Overloaded`.
    pub(crate) fn admit(&self, consumer: &str, now: Instant) -> bool {
        let mut buckets = self.buckets.lock();
        if !buckets.contains_key(consumer) && buckets.len() >= MAX_TRACKED_CONSUMERS {
            // Recycle the stalest bucket instead of growing: an O(n)
            // scan, but only ever on the 64k-th fresh name.
            if let Some(stalest) = buckets
                .iter()
                .min_by_key(|(_, b)| b.refilled)
                .map(|(name, _)| name.clone())
            {
                buckets.remove(&stalest);
            }
        }
        let bucket = buckets.entry(consumer.to_string()).or_insert(Bucket {
            tokens: self.burst,
            refilled: now,
        });
        let elapsed = now.saturating_duration_since(bucket.refilled).as_secs_f64();
        bucket.tokens = (bucket.tokens + elapsed * self.rate).min(self.burst);
        bucket.refilled = now;
        if bucket.tokens >= 1.0 {
            bucket.tokens -= 1.0;
            true
        } else {
            false
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::time::Duration;

    #[test]
    fn burst_then_refusal_then_refill() {
        let limiter = RateLimiter::new(10);
        let t0 = Instant::now();
        // The full burst (max(rate, 8) = 10) admits...
        for i in 0..10 {
            assert!(limiter.admit("alice", t0), "burst frame {i}");
        }
        // ...then the bucket is dry...
        assert!(!limiter.admit("alice", t0));
        // ...other consumers are unaffected...
        assert!(limiter.admit("bob", t0));
        // ...and half a second refills five tokens.
        let t1 = t0 + Duration::from_millis(500);
        for i in 0..5 {
            assert!(limiter.admit("alice", t1), "refilled frame {i}");
        }
        assert!(!limiter.admit("alice", t1));
    }

    #[test]
    fn sustained_rate_is_admitted() {
        let limiter = RateLimiter::new(100);
        let t0 = Instant::now();
        // 1 request every 10ms = exactly the sustained rate: no refusal,
        // even long past the burst allowance.
        for i in 0..300u32 {
            let t = t0 + Duration::from_millis(10 * u64::from(i));
            assert!(limiter.admit("steady", t), "frame {i}");
        }
    }

    #[test]
    fn map_growth_is_bounded() {
        let limiter = RateLimiter::new(5);
        let t0 = Instant::now();
        // More distinct names than the cap; the map must not exceed it.
        for i in 0..(MAX_TRACKED_CONSUMERS + 100) {
            limiter.admit(
                &format!("consumer-{i}"),
                t0 + Duration::from_micros(i as u64),
            );
        }
        assert!(limiter.buckets.lock().len() <= MAX_TRACKED_CONSUMERS);
        // Recycled names come back with a full (not stale) bucket.
        assert!(limiter.admit("consumer-0", t0 + Duration::from_secs(1)));
    }
}
