//! Admission control: per-consumer token-bucket rate limiting.
//!
//! The other two admission levers — the global connection cap and
//! per-connection write backpressure — live where their state lives (the
//! accept loop and the connection state machine in `server.rs`). The
//! rate limiter is the one piece with cross-connection state: one bucket
//! per key, shared by every connection resolving to that key. The
//! server keys buckets by (peer IP, consumer name) — the name alone is
//! an unauthenticated client claim — but the limiter itself is
//! key-agnostic.
//!
//! A refill-on-demand token bucket: capacity `burst`, refill `rate`
//! tokens per second, one token per request frame. A consumer that stays
//! under its rate never notices; one that bursts past it gets typed
//! [`WireErrorKind::Overloaded`](plus_store::wire::WireErrorKind)
//! refusals (retryable — the connection stays open) until the bucket
//! refills.

use std::collections::{HashMap, VecDeque};
use std::time::Instant;

use parking_lot::Mutex;

/// Most bucket keys tracked at once. Keys derive from untrusted Hello
/// frames, so the map must not grow without bound; past the cap a
/// not-recently-used bucket is recycled (a full bucket is the correct
/// state for a key unseen for that long anyway).
const MAX_TRACKED_CONSUMERS: usize = 64 * 1024;

/// How many second-chance candidates one eviction will examine before
/// evicting unconditionally. Bounds the worst case; the common case
/// under a fresh-key flood is one probe (flood keys are never
/// re-referenced).
const EVICT_PROBES: usize = 8;

#[derive(Debug, Clone)]
struct Bucket {
    tokens: f64,
    refilled: Instant,
    /// Second-chance bit: set when an existing bucket is used again,
    /// cleared when the eviction clock sweeps past it.
    referenced: bool,
}

#[derive(Debug, Default)]
struct Buckets {
    map: HashMap<String, Bucket>,
    /// The eviction clock: every tracked key exactly once, oldest
    /// insertion at the front. Kept in lockstep with `map`.
    clock: VecDeque<String>,
}

impl Buckets {
    /// Frees one slot via the clock/second-chance sweep: pop the oldest
    /// key; if it was used since the clock last passed it, give it
    /// another lap instead of evicting. O(EVICT_PROBES) worst case, so
    /// a flood of fresh keys cannot turn admission into a linear scan.
    fn evict_one(&mut self) {
        for _ in 0..EVICT_PROBES {
            let Some(key) = self.clock.pop_front() else {
                return;
            };
            match self.map.get_mut(&key) {
                Some(bucket) if bucket.referenced => {
                    bucket.referenced = false;
                    self.clock.push_back(key);
                }
                _ => {
                    self.map.remove(&key);
                    return;
                }
            }
        }
        // Every probe earned its second chance; evict the next key
        // unconditionally so the map stays bounded regardless.
        if let Some(key) = self.clock.pop_front() {
            self.map.remove(&key);
        }
    }
}

/// A token-bucket rate limiter with one bucket per key.
#[derive(Debug)]
pub(crate) struct RateLimiter {
    /// Tokens added per second.
    rate: f64,
    /// Bucket capacity — the largest tolerated burst (one second's
    /// allowance, with a floor so tiny rates still admit a few frames).
    burst: f64,
    buckets: Mutex<Buckets>,
}

impl RateLimiter {
    /// A limiter admitting `rate` request frames per second per key,
    /// sustained; bursts up to one second's worth.
    pub(crate) fn new(rate: u64) -> RateLimiter {
        let rate = rate.max(1) as f64;
        RateLimiter {
            rate,
            burst: rate.max(8.0),
            buckets: Mutex::new(Buckets::default()),
        }
    }

    /// Takes one token from `key`'s bucket; `false` means the request
    /// must be refused with `Overloaded`.
    pub(crate) fn admit(&self, key: &str, now: Instant) -> bool {
        let buckets = &mut *self.buckets.lock();
        match buckets.map.get_mut(key) {
            Some(bucket) => {
                bucket.referenced = true;
                let elapsed = now.saturating_duration_since(bucket.refilled).as_secs_f64();
                bucket.tokens = (bucket.tokens + elapsed * self.rate).min(self.burst);
                bucket.refilled = now;
                if bucket.tokens >= 1.0 {
                    bucket.tokens -= 1.0;
                    true
                } else {
                    false
                }
            }
            None => {
                if buckets.map.len() >= MAX_TRACKED_CONSUMERS {
                    buckets.evict_one();
                }
                buckets.map.insert(
                    key.to_string(),
                    Bucket {
                        tokens: self.burst - 1.0,
                        refilled: now,
                        // A fresh key starts unreferenced: if it never
                        // comes back, the clock evicts it on first
                        // sight instead of granting a wasted lap.
                        referenced: false,
                    },
                );
                buckets.clock.push_back(key.to_string());
                true
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::time::Duration;

    #[test]
    fn burst_then_refusal_then_refill() {
        let limiter = RateLimiter::new(10);
        let t0 = Instant::now();
        // The full burst (max(rate, 8) = 10) admits...
        for i in 0..10 {
            assert!(limiter.admit("alice", t0), "burst frame {i}");
        }
        // ...then the bucket is dry...
        assert!(!limiter.admit("alice", t0));
        // ...other consumers are unaffected...
        assert!(limiter.admit("bob", t0));
        // ...and half a second refills five tokens.
        let t1 = t0 + Duration::from_millis(500);
        for i in 0..5 {
            assert!(limiter.admit("alice", t1), "refilled frame {i}");
        }
        assert!(!limiter.admit("alice", t1));
    }

    #[test]
    fn sustained_rate_is_admitted() {
        let limiter = RateLimiter::new(100);
        let t0 = Instant::now();
        // 1 request every 10ms = exactly the sustained rate: no refusal,
        // even long past the burst allowance.
        for i in 0..300u32 {
            let t = t0 + Duration::from_millis(10 * u64::from(i));
            assert!(limiter.admit("steady", t), "frame {i}");
        }
    }

    #[test]
    fn map_growth_is_bounded() {
        let limiter = RateLimiter::new(5);
        let t0 = Instant::now();
        // More distinct keys than the cap; the map must not exceed it.
        for i in 0..(MAX_TRACKED_CONSUMERS + 100) {
            limiter.admit(
                &format!("consumer-{i}"),
                t0 + Duration::from_micros(i as u64),
            );
        }
        let buckets = limiter.buckets.lock();
        assert!(buckets.map.len() <= MAX_TRACKED_CONSUMERS);
        assert_eq!(buckets.map.len(), buckets.clock.len(), "clock in lockstep");
        drop(buckets);
        // Recycled keys come back with a full (not stale) bucket.
        assert!(limiter.admit("consumer-0", t0 + Duration::from_secs(1)));
    }

    #[test]
    fn eviction_spares_active_keys_under_name_flood() {
        let limiter = RateLimiter::new(1000);
        let t0 = Instant::now();
        // A key used repeatedly keeps its referenced bit set...
        limiter.admit("regular", t0);
        let mut regular_admits = 1u32;
        for i in 0..(2 * MAX_TRACKED_CONSUMERS) {
            limiter.admit(&format!("flood-{i}"), t0 + Duration::from_micros(i as u64));
            if i % 1024 == 0 {
                // Always at t0, so the bucket never refills: every
                // admit drains one token — identity evidence below.
                limiter.admit("regular", t0);
                regular_admits += 1;
            }
        }
        // ...so a flood of single-use keys recycles its own buckets,
        // not the active consumer's. A recycled-then-recreated bucket
        // would be nearly full; the original is short exactly one
        // token per admit.
        let buckets = limiter.buckets.lock();
        assert!(buckets.map.len() <= MAX_TRACKED_CONSUMERS);
        let regular = buckets.map.get("regular").expect("active key survives");
        let drained = limiter.burst - f64::from(regular_admits);
        assert!(
            (regular.tokens - drained).abs() < 1e-6,
            "original bucket survived: {} tokens, expected {drained}",
            regular.tokens
        );
    }
}
