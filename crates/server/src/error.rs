//! Client-side errors.

use std::fmt;
use std::io;

use plus_store::{CodecError, StoreError, WireError};

/// Why a [`Client`](crate::Client) call failed.
///
/// `#[non_exhaustive]`: transports and the protocol will grow failure
/// modes; downstream matches need a wildcard arm.
#[derive(Debug)]
#[non_exhaustive]
pub enum ClientError {
    /// The transport failed (connect, read, or write).
    Io(io::Error),
    /// The server closed the connection (cleanly or mid-frame) where a
    /// response was expected.
    Disconnected,
    /// The server sent bytes that are not a valid response frame — a
    /// version skew or a corrupted link. The connection is unusable.
    Malformed(CodecError),
    /// The server answered with a typed error frame. The connection
    /// stays usable for further requests.
    Remote(WireError),
    /// The request cannot be encoded at all — a count in it exceeds its
    /// wire field (e.g. a batch beyond `MAX_BATCH`). Nothing went on the
    /// wire, so the connection stays usable; only this request is
    /// refused.
    Unencodable(CodecError),
    /// The server answered with the wrong response type for the request
    /// (e.g. a Batch answer to a Query). Protocol bug; unusable.
    Unexpected(&'static str),
    /// The server speaks a different protocol version.
    VersionMismatch {
        /// What the server announced in its Hello.
        server: u16,
    },
    /// No configured endpoint (primary, replicas, or redirect hints)
    /// currently identifies as a writable primary — see
    /// [`ClientPool::writable`](crate::ClientPool::writable).
    NoWritable,
    /// The deployment descriptor itself is unusable — an empty peer
    /// list, an empty address, or a shard/replica count beyond the wire
    /// caps. See [`Topology::parse`](crate::Topology::parse); the
    /// message says which rule was broken.
    BadTopology(String),
}

impl fmt::Display for ClientError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ClientError::Io(e) => write!(f, "transport error: {e}"),
            ClientError::Disconnected => write!(f, "server closed the connection"),
            ClientError::Malformed(e) => write!(f, "malformed response frame: {e}"),
            ClientError::Remote(e) => write!(f, "server error: {e}"),
            ClientError::Unencodable(e) => write!(f, "request cannot be encoded: {e}"),
            ClientError::Unexpected(what) => {
                write!(f, "protocol violation: unexpected {what} response")
            }
            ClientError::VersionMismatch { server } => write!(
                f,
                "server speaks protocol version {server}, this client speaks {}",
                plus_store::PROTOCOL_VERSION
            ),
            ClientError::NoWritable => {
                write!(f, "no configured endpoint identifies as a writable primary")
            }
            ClientError::BadTopology(reason) => write!(f, "bad topology: {reason}"),
        }
    }
}

impl std::error::Error for ClientError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            ClientError::Io(e) => Some(e),
            ClientError::Malformed(e) => Some(e),
            ClientError::Remote(e) => Some(e),
            ClientError::Unencodable(e) => Some(e),
            _ => None,
        }
    }
}

impl From<io::Error> for ClientError {
    fn from(e: io::Error) -> Self {
        ClientError::Io(e)
    }
}

impl From<crate::frame::FrameError> for ClientError {
    fn from(e: crate::frame::FrameError) -> Self {
        match e {
            crate::frame::FrameError::Io(e) => ClientError::Io(e),
            crate::frame::FrameError::Torn => ClientError::Disconnected,
            crate::frame::FrameError::Malformed(e) => ClientError::Malformed(e),
        }
    }
}

/// Why a [`Replica`](crate::Replica) failed to start or lost its feed.
///
/// `#[non_exhaustive]`: the replication runtime will grow failure modes;
/// downstream matches need a wildcard arm.
#[derive(Debug)]
#[non_exhaustive]
pub enum ReplicaError {
    /// The replica's local store failed (recovery, apply, install).
    Store(StoreError),
    /// The link to the primary failed (transport, handshake, or a typed
    /// refusal such as replication being disabled on the primary).
    Client(ClientError),
    /// The primary violated the replication protocol (a cold stream
    /// without a snapshot, a non-chunk frame mid-subscription, damage
    /// inside a checksum-valid chunk).
    Protocol(String),
}

impl ReplicaError {
    pub(crate) fn protocol(message: &str) -> Self {
        ReplicaError::Protocol(message.to_string())
    }
}

impl fmt::Display for ReplicaError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ReplicaError::Store(e) => write!(f, "replica store error: {e}"),
            ReplicaError::Client(e) => write!(f, "replication link error: {e}"),
            ReplicaError::Protocol(detail) => write!(f, "replication protocol violation: {detail}"),
        }
    }
}

impl std::error::Error for ReplicaError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            ReplicaError::Store(e) => Some(e),
            ReplicaError::Client(e) => Some(e),
            ReplicaError::Protocol(_) => None,
        }
    }
}

impl From<StoreError> for ReplicaError {
    fn from(e: StoreError) -> Self {
        ReplicaError::Store(e)
    }
}

impl From<ClientError> for ReplicaError {
    fn from(e: ClientError) -> Self {
        ReplicaError::Client(e)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use plus_store::WireErrorKind;

    #[test]
    fn displays_are_informative() {
        let e = ClientError::Remote(WireError::new(WireErrorKind::NotAuthorized, "no"));
        assert!(e.to_string().contains("not authorized"), "{e}");
        let e = ClientError::VersionMismatch { server: 9 };
        assert!(e.to_string().contains('9'), "{e}");
        assert!(ClientError::Disconnected.to_string().contains("closed"));
        let e = ClientError::BadTopology("empty peer list".to_string());
        assert!(e.to_string().contains("empty peer list"), "{e}");
    }

    #[test]
    fn replica_errors_wrap_their_sources() {
        let e: ReplicaError = StoreError::NotDurable.into();
        assert!(e.to_string().contains("replica store error"), "{e}");
        let e: ReplicaError = ClientError::Disconnected.into();
        assert!(e.to_string().contains("replication link error"), "{e}");
        let e = ReplicaError::protocol("no snapshot");
        assert!(e.to_string().contains("no snapshot"), "{e}");
    }
}
