//! The shared deployment descriptor: who the shard primaries are, which
//! replicas back each of them, and how clients identify themselves.
//!
//! A sharded deployment used to be described three different ways — a
//! `&[&str]` peer list for [`ShardRouter`](crate::ShardRouter), another
//! for [`Gather`](crate::Gather), and replica addresses bolted onto
//! individual [`ClientPool`](crate::ClientPool)s — which made the
//! replicated-shard composition impossible to even express. A
//! [`Topology`] is parsed **once** (usually from the operator's
//! `--peers` flag) and handed to all three consumers, so every layer
//! agrees on shard order, replica sets, and consumer identity.
//!
//! # Spec syntax
//!
//! One entry per shard, comma-separated, in shard order. Each entry is
//! the shard primary's address optionally followed by `+`-joined
//! replica addresses:
//!
//! ```text
//! 127.0.0.1:7655+127.0.0.1:7665,127.0.0.1:7656+127.0.0.1:7666
//! ```
//!
//! describes two shards, each with one replica. [`Display`](fmt::Display)
//! renders the same syntax back, so a topology round-trips through its
//! spec.
//!
//! ```
//! use server::Topology;
//!
//! let topo = Topology::parse("a:1+a:2,b:1").unwrap();
//! assert_eq!(topo.shard_count(), 2);
//! assert_eq!(topo.primary(0), Some("a:1"));
//! assert_eq!(topo.replicas(0), ["a:2"]);
//! assert!(topo.replicas(1).is_empty());
//! assert_eq!(topo.to_string(), "a:1+a:2,b:1");
//! ```

use std::fmt;

use plus_store::{MAX_REPLICAS, MAX_SHARDS};
use surrogate_core::shard::ShardMap;

use crate::error::ClientError;

/// One shard's sites: the writable primary and its read replicas, which
/// double as promotion candidates after the primary dies.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ShardSite {
    /// The shard primary's address.
    pub primary: String,
    /// The shard's replica addresses (may be empty).
    pub replicas: Vec<String>,
}

/// A parsed deployment descriptor: per-shard sites in shard order, plus
/// the consumer identity clients should dial with.
///
/// See the [module docs](self) for the spec syntax. The consumer
/// defaults to the empty string (the Public consumer) with no claims;
/// use [`with_consumer`](Self::with_consumer) to set both.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct Topology {
    shards: Vec<ShardSite>,
    consumer: String,
    claims: Vec<String>,
}

impl Topology {
    /// Parses a spec string — see the [module docs](self) for syntax.
    ///
    /// Refused with a typed [`ClientError::BadTopology`]: an empty spec,
    /// an empty address anywhere in it, more than
    /// [`MAX_SHARDS`] shards, or more than [`MAX_REPLICAS`] replicas on
    /// one shard.
    pub fn parse(spec: &str) -> Result<Topology, ClientError> {
        let bad = |reason: String| ClientError::BadTopology(reason);
        if spec.trim().is_empty() {
            return Err(bad("empty topology spec".to_string()));
        }
        let mut shards = Vec::new();
        for (slot, entry) in spec.split(',').enumerate() {
            let mut addrs = entry.split('+').map(str::trim);
            let primary = addrs.next().unwrap_or("");
            if primary.is_empty() {
                return Err(bad(format!("shard {slot} has an empty primary address")));
            }
            let mut replicas = Vec::new();
            for addr in addrs {
                if addr.is_empty() {
                    return Err(bad(format!("shard {slot} has an empty replica address")));
                }
                replicas.push(addr.to_string());
            }
            if replicas.len() > MAX_REPLICAS as usize {
                return Err(bad(format!(
                    "shard {slot} names {} replicas, the wire caps at {MAX_REPLICAS}",
                    replicas.len()
                )));
            }
            shards.push(ShardSite {
                primary: primary.to_string(),
                replicas,
            });
        }
        if shards.len() > MAX_SHARDS as usize {
            return Err(bad(format!(
                "{} shards named, the wire caps at {MAX_SHARDS}",
                shards.len()
            )));
        }
        Ok(Topology {
            shards,
            consumer: String::new(),
            claims: Vec::new(),
        })
    }

    /// A topology of bare primaries (no replicas), in shard order —
    /// what a pre-replica `&[&str]` peer list used to describe.
    pub fn from_peers(
        peers: impl IntoIterator<Item = impl Into<String>>,
    ) -> Result<Topology, ClientError> {
        let shards: Vec<ShardSite> = peers
            .into_iter()
            .map(|p| ShardSite {
                primary: p.into(),
                replicas: Vec::new(),
            })
            .collect();
        if shards.is_empty() {
            return Err(ClientError::BadTopology("empty peer list".to_string()));
        }
        if shards.len() > MAX_SHARDS as usize {
            return Err(ClientError::BadTopology(format!(
                "{} shards named, the wire caps at {MAX_SHARDS}",
                shards.len()
            )));
        }
        if let Some(slot) = shards.iter().position(|s| s.primary.is_empty()) {
            return Err(ClientError::BadTopology(format!(
                "shard {slot} has an empty primary address"
            )));
        }
        Ok(Topology {
            shards,
            consumer: String::new(),
            claims: Vec::new(),
        })
    }

    /// Sets the consumer identity clients built from this topology dial
    /// with (empty = the Public consumer).
    pub fn with_consumer(
        mut self,
        consumer: impl Into<String>,
        claims: impl IntoIterator<Item = impl Into<String>>,
    ) -> Self {
        self.consumer = consumer.into();
        self.claims = claims.into_iter().map(Into::into).collect();
        self
    }

    /// How many shards the topology describes.
    pub fn shard_count(&self) -> u32 {
        self.shards.len() as u32
    }

    /// Whether the topology describes no shards at all (only possible
    /// via [`Default`]; parsing refuses empty specs).
    pub fn is_empty(&self) -> bool {
        self.shards.is_empty()
    }

    /// The per-shard sites, in shard order.
    pub fn shards(&self) -> &[ShardSite] {
        &self.shards
    }

    /// Shard `slot`'s primary address, if the slot is in range.
    pub fn primary(&self, slot: u32) -> Option<&str> {
        self.shards.get(slot as usize).map(|s| s.primary.as_str())
    }

    /// Shard `slot`'s replica addresses (empty when out of range).
    pub fn replicas(&self, slot: u32) -> &[String] {
        self.shards
            .get(slot as usize)
            .map(|s| s.replicas.as_slice())
            .unwrap_or(&[])
    }

    /// Every shard's primary address, in shard order — the legacy peer
    /// list.
    pub fn primaries(&self) -> Vec<String> {
        self.shards.iter().map(|s| s.primary.clone()).collect()
    }

    /// Every shard's replica addresses, in shard order — what a shard
    /// server announces in its `ShardStatus` answers.
    pub fn replica_table(&self) -> Vec<Vec<String>> {
        self.shards.iter().map(|s| s.replicas.clone()).collect()
    }

    /// Shard `slot`'s candidate addresses for resolving the writable
    /// endpoint: the primary first, then the replicas.
    pub fn candidates(&self, slot: u32) -> Vec<String> {
        let Some(site) = self.shards.get(slot as usize) else {
            return Vec::new();
        };
        let mut out = Vec::with_capacity(1 + site.replicas.len());
        out.push(site.primary.clone());
        out.extend(site.replicas.iter().cloned());
        out
    }

    /// The consumer identity (empty = the Public consumer).
    pub fn consumer(&self) -> &str {
        &self.consumer
    }

    /// The predicate claims to present at handshake time.
    pub fn claims(&self) -> &[String] {
        &self.claims
    }

    /// The keyspace map this topology implies. Fails with
    /// [`ClientError::BadTopology`] on an empty topology.
    pub fn map(&self) -> Result<ShardMap, ClientError> {
        ShardMap::new(self.shard_count())
            .ok_or_else(|| ClientError::BadTopology("empty topology has no keyspace".to_string()))
    }
}

impl fmt::Display for Topology {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        for (i, site) in self.shards.iter().enumerate() {
            if i > 0 {
                f.write_str(",")?;
            }
            f.write_str(&site.primary)?;
            for replica in &site.replicas {
                write!(f, "+{replica}")?;
            }
        }
        Ok(())
    }
}

impl std::str::FromStr for Topology {
    type Err = ClientError;

    fn from_str(s: &str) -> Result<Self, Self::Err> {
        Topology::parse(s)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_primaries_and_replicas() {
        let topo = Topology::parse("a:1+a:2+a:3,b:1,c:1+c:2").unwrap();
        assert_eq!(topo.shard_count(), 3);
        assert_eq!(topo.primaries(), ["a:1", "b:1", "c:1"]);
        assert_eq!(topo.replicas(0), ["a:2", "a:3"]);
        assert!(topo.replicas(1).is_empty());
        assert_eq!(topo.candidates(2), ["c:1", "c:2"]);
        assert_eq!(
            topo.replica_table(),
            [
                vec!["a:2".to_string(), "a:3".into()],
                vec![],
                vec!["c:2".into()]
            ]
        );
        assert_eq!(topo.map().unwrap().count(), 3);
        assert_eq!(topo.to_string(), "a:1+a:2+a:3,b:1,c:1+c:2");
        assert_eq!("a:1+a:2+a:3,b:1,c:1+c:2".parse::<Topology>().unwrap(), topo);
    }

    #[test]
    fn refuses_malformed_specs() {
        for spec in ["", "  ", "a:1,,b:1", "a:1+,b:1", ",a:1"] {
            assert!(
                matches!(Topology::parse(spec), Err(ClientError::BadTopology(_))),
                "spec {spec:?} should be refused"
            );
        }
    }

    #[test]
    fn refuses_oversized_topologies() {
        let peers: Vec<String> = (0..=MAX_SHARDS).map(|i| format!("p{i}:1")).collect();
        assert!(matches!(
            Topology::from_peers(peers),
            Err(ClientError::BadTopology(_))
        ));
        let mut spec = String::from("p:1");
        for i in 0..=MAX_REPLICAS {
            spec.push_str(&format!("+r{i}:1"));
        }
        assert!(matches!(
            Topology::parse(&spec),
            Err(ClientError::BadTopology(_))
        ));
        assert!(matches!(
            Topology::from_peers(Vec::<String>::new()),
            Err(ClientError::BadTopology(_))
        ));
    }

    #[test]
    fn consumer_identity_rides_along() {
        let topo = Topology::parse("a:1")
            .unwrap()
            .with_consumer("analyst", ["clearance"]);
        assert_eq!(topo.consumer(), "analyst");
        assert_eq!(topo.claims(), ["clearance"]);
    }
}
