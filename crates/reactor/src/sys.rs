//! The crate's entire `unsafe` surface: thin FFI declarations for the
//! four syscalls the reactor needs (`epoll_create1`, `epoll_ctl`,
//! `epoll_wait`, `eventfd`) plus the `rlimit` pair, each wrapped in a
//! safe function that owns the fd lifetime through [`OwnedFd`] and turns
//! `-1` into [`io::Error::last_os_error`]. Nothing above this module
//! touches a raw pointer or a raw fd it does not own.
//!
//! The declarations mirror the Linux kernel ABI (the `libc` crate's
//! definitions, vendored down to what is used). `epoll_event` is
//! `packed` on x86 — the kernel declares it so — and naturally aligned
//! elsewhere.

use std::io;
use std::os::fd::{AsRawFd, FromRawFd, OwnedFd, RawFd};
use std::os::raw::{c_int, c_uint};

// --- epoll constants (uapi/linux/eventpoll.h) ---------------------------

/// `EPOLLIN`: readable (or a pending accept).
pub const EPOLLIN: u32 = 0x001;
/// `EPOLLOUT`: writable.
pub const EPOLLOUT: u32 = 0x004;
/// `EPOLLERR`: error condition; always reported, never requested.
pub const EPOLLERR: u32 = 0x008;
/// `EPOLLHUP`: hangup; always reported, never requested.
pub const EPOLLHUP: u32 = 0x010;
/// `EPOLLRDHUP`: peer shut down its write half.
pub const EPOLLRDHUP: u32 = 0x2000;

const EPOLL_CLOEXEC: c_int = 0x8_0000;
const EPOLL_CTL_ADD: c_int = 1;
const EPOLL_CTL_DEL: c_int = 2;
const EPOLL_CTL_MOD: c_int = 3;

const EFD_CLOEXEC: c_int = 0x8_0000;
const EFD_NONBLOCK: c_int = 0x800;

const RLIMIT_NOFILE: c_int = 7;

/// One readiness record, kernel layout. `data` round-trips the caller's
/// token verbatim.
#[repr(C)]
#[cfg_attr(any(target_arch = "x86_64", target_arch = "x86"), repr(packed))]
#[derive(Clone, Copy)]
pub struct EpollEvent {
    /// Ready-state bit set (`EPOLL*` constants above).
    pub events: u32,
    /// The token registered with the fd.
    pub data: u64,
}

#[repr(C)]
#[derive(Clone, Copy)]
struct Rlimit {
    rlim_cur: u64,
    rlim_max: u64,
}

extern "C" {
    fn epoll_create1(flags: c_int) -> c_int;
    fn epoll_ctl(epfd: c_int, op: c_int, fd: c_int, event: *mut EpollEvent) -> c_int;
    fn epoll_wait(epfd: c_int, events: *mut EpollEvent, maxevents: c_int, timeout: c_int) -> c_int;
    fn eventfd(initval: c_uint, flags: c_int) -> c_int;
    fn getrlimit(resource: c_int, rlim: *mut Rlimit) -> c_int;
    fn setrlimit(resource: c_int, rlim: *const Rlimit) -> c_int;
}

fn cvt(ret: c_int) -> io::Result<c_int> {
    if ret < 0 {
        Err(io::Error::last_os_error())
    } else {
        Ok(ret)
    }
}

/// Creates an epoll instance (`CLOEXEC`), owned: dropping the fd closes
/// it.
pub fn epoll_create() -> io::Result<OwnedFd> {
    let fd = cvt(unsafe { epoll_create1(EPOLL_CLOEXEC) })?;
    // SAFETY: epoll_create1 returned a fresh fd we now uniquely own.
    Ok(unsafe { OwnedFd::from_raw_fd(fd) })
}

/// Creates a nonblocking `eventfd` (`CLOEXEC`), owned — the wake-up
/// channel a [`Waker`](crate::Waker) writes into.
pub fn eventfd_create() -> io::Result<OwnedFd> {
    let fd = cvt(unsafe { eventfd(0, EFD_CLOEXEC | EFD_NONBLOCK) })?;
    // SAFETY: eventfd returned a fresh fd we now uniquely own.
    Ok(unsafe { OwnedFd::from_raw_fd(fd) })
}

fn ctl(epfd: &OwnedFd, op: c_int, fd: RawFd, events: u32, token: u64) -> io::Result<()> {
    let mut event = EpollEvent {
        events,
        data: token,
    };
    // SAFETY: `event` outlives the call; the kernel copies it. The fds
    // are live for the duration (epfd borrowed, fd is the caller's).
    cvt(unsafe { epoll_ctl(epfd.as_raw_fd(), op, fd, &mut event) })?;
    Ok(())
}

/// `EPOLL_CTL_ADD`.
pub fn epoll_add(epfd: &OwnedFd, fd: RawFd, events: u32, token: u64) -> io::Result<()> {
    ctl(epfd, EPOLL_CTL_ADD, fd, events, token)
}

/// `EPOLL_CTL_MOD`.
pub fn epoll_mod(epfd: &OwnedFd, fd: RawFd, events: u32, token: u64) -> io::Result<()> {
    ctl(epfd, EPOLL_CTL_MOD, fd, events, token)
}

/// `EPOLL_CTL_DEL`.
pub fn epoll_del(epfd: &OwnedFd, fd: RawFd) -> io::Result<()> {
    ctl(epfd, EPOLL_CTL_DEL, fd, 0, 0)
}

/// Waits for readiness, filling `buf` from the front; returns how many
/// records landed. `timeout_ms < 0` blocks indefinitely. `EINTR` is
/// retried here so callers never see a spurious zero.
pub fn epoll_wait_into(
    epfd: &OwnedFd,
    buf: &mut [EpollEvent],
    timeout_ms: i32,
) -> io::Result<usize> {
    loop {
        // SAFETY: `buf` is valid for `buf.len()` records for the call's
        // duration; the kernel writes at most `maxevents` of them.
        let n = unsafe {
            epoll_wait(
                epfd.as_raw_fd(),
                buf.as_mut_ptr(),
                buf.len().min(c_int::MAX as usize) as c_int,
                timeout_ms,
            )
        };
        match cvt(n) {
            Ok(n) => return Ok(n as usize),
            Err(e) if e.kind() == io::ErrorKind::Interrupted => continue,
            Err(e) => return Err(e),
        }
    }
}

/// Best-effort raise of this process's open-file limit toward `target`
/// (serving tens of thousands of sockets needs more than the common
/// 1024-fd default). Returns the resulting soft limit. Never fails the
/// caller: an `EPERM` (hard limit lower than `target`, no privilege)
/// just leaves the limit where it was.
pub fn raise_nofile_limit(target: u64) -> io::Result<u64> {
    let mut lim = Rlimit {
        rlim_cur: 0,
        rlim_max: 0,
    };
    // SAFETY: `lim` is a valid out-pointer for the call's duration.
    cvt(unsafe { getrlimit(RLIMIT_NOFILE, &mut lim) })?;
    if lim.rlim_cur >= target {
        return Ok(lim.rlim_cur);
    }
    let want = Rlimit {
        rlim_cur: target.min(lim.rlim_max),
        rlim_max: lim.rlim_max,
    };
    // SAFETY: `want` is a valid in-pointer for the call's duration.
    if unsafe { setrlimit(RLIMIT_NOFILE, &want) } == 0 {
        Ok(want.rlim_cur)
    } else {
        Ok(lim.rlim_cur)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn epoll_instance_creates_and_closes() {
        let fd = epoll_create().unwrap();
        assert!(fd.as_raw_fd() >= 0);
    }

    #[test]
    fn nofile_limit_reports_a_sane_value() {
        let current = raise_nofile_limit(1024).unwrap();
        assert!(current >= 256, "limit {current} is implausibly low");
    }
}
