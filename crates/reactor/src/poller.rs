//! The safe reactor surface: [`Poller`], [`Events`], [`Waker`].

use std::fs::File;
use std::io::{self, Read, Write};
use std::os::fd::{AsRawFd, OwnedFd};
use std::time::Duration;

use crate::sys;
use crate::{Interest, Token};

/// One `epoll` instance. Register nonblocking sockets with a [`Token`]
/// and an [`Interest`]; [`wait`](Poller::wait) reports which are ready.
///
/// Registration methods take `&self`: the kernel serializes `epoll_ctl`
/// against `epoll_wait`, so a [`Waker`]-owning thread may register while
/// another waits. (The server keeps one poller per event-loop shard and
/// never shares registrations across shards.)
pub struct Poller {
    epfd: OwnedFd,
}

impl std::fmt::Debug for Poller {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Poller")
            .field("epfd", &self.epfd.as_raw_fd())
            .finish()
    }
}

fn interest_bits(interest: Interest) -> u32 {
    let mut bits = sys::EPOLLRDHUP; // peer hangups are always relevant
    if interest.is_readable() {
        bits |= sys::EPOLLIN;
    }
    if interest.is_writable() {
        bits |= sys::EPOLLOUT;
    }
    bits
}

impl Poller {
    /// Creates an empty poller.
    pub fn new() -> io::Result<Poller> {
        Ok(Poller {
            epfd: sys::epoll_create()?,
        })
    }

    /// Starts watching `fd` for `interest`, tagging its events with
    /// `token`. The fd should already be nonblocking; registration does
    /// not change its modes. Registering the same fd twice is an error
    /// (`EEXIST`) — use [`reregister`](Self::reregister).
    pub fn register(&self, fd: &impl AsRawFd, token: Token, interest: Interest) -> io::Result<()> {
        sys::epoll_add(&self.epfd, fd.as_raw_fd(), interest_bits(interest), token.0)
    }

    /// Replaces the interest set (and token) of an already-registered
    /// fd — how a connection flips write readiness on and off.
    pub fn reregister(
        &self,
        fd: &impl AsRawFd,
        token: Token,
        interest: Interest,
    ) -> io::Result<()> {
        sys::epoll_mod(&self.epfd, fd.as_raw_fd(), interest_bits(interest), token.0)
    }

    /// Stops watching `fd`. Safe to call on an fd about to be closed;
    /// events already collected for it may still be delivered from the
    /// current [`wait`](Self::wait) batch (tag tokens with a generation
    /// to detect that).
    pub fn deregister(&self, fd: &impl AsRawFd) -> io::Result<()> {
        sys::epoll_del(&self.epfd, fd.as_raw_fd())
    }

    /// Blocks until a registered fd is ready (or `timeout` passes, or a
    /// [`Waker`] fires), filling `events`. Returns the number of events
    /// delivered; `0` means the timeout elapsed. `EINTR` retries
    /// internally.
    pub fn wait(&self, events: &mut Events, timeout: Option<Duration>) -> io::Result<usize> {
        let timeout_ms: i32 = match timeout {
            // Round up so a 1ns timeout cannot spin as 0ms.
            Some(t) => t
                .as_millis()
                .saturating_add(u128::from(t.subsec_nanos() % 1_000_000 != 0))
                .min(i32::MAX as u128) as i32,
            None => -1,
        };
        events.len = sys::epoll_wait_into(&self.epfd, &mut events.buf, timeout_ms)?;
        Ok(events.len)
    }
}

/// A reusable buffer of readiness [`Event`]s filled by [`Poller::wait`].
pub struct Events {
    buf: Vec<sys::EpollEvent>,
    len: usize,
}

impl std::fmt::Debug for Events {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Events")
            .field("capacity", &self.buf.len())
            .field("len", &self.len)
            .finish()
    }
}

impl Events {
    /// A buffer that can carry up to `capacity` events per wait (at
    /// least 1).
    pub fn with_capacity(capacity: usize) -> Events {
        Events {
            buf: vec![sys::EpollEvent { events: 0, data: 0 }; capacity.max(1)],
            len: 0,
        }
    }

    /// Events delivered by the last [`Poller::wait`].
    pub fn iter(&self) -> impl Iterator<Item = Event> + '_ {
        self.buf[..self.len].iter().map(|raw| Event {
            // Copy out of the (possibly packed) kernel record before
            // reading fields.
            bits: { *raw }.events,
            token: Token({ *raw }.data),
        })
    }

    /// How many events the last wait delivered.
    pub fn len(&self) -> usize {
        self.len
    }

    /// Whether the last wait delivered none (timeout).
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }
}

/// One readiness report.
#[derive(Debug, Clone, Copy)]
pub struct Event {
    bits: u32,
    token: Token,
}

impl Event {
    /// The token the ready fd was registered with.
    pub fn token(&self) -> Token {
        self.token
    }

    /// Ready to read — bytes available, a pending accept, or a peer
    /// close (a read will observe the EOF).
    pub fn is_readable(&self) -> bool {
        self.bits & (sys::EPOLLIN | sys::EPOLLRDHUP | sys::EPOLLHUP) != 0
    }

    /// Ready to accept more outgoing bytes.
    pub fn is_writable(&self) -> bool {
        self.bits & sys::EPOLLOUT != 0
    }

    /// The fd is in an error state (e.g. a connection reset); reads and
    /// writes will surface the specific error.
    pub fn is_error(&self) -> bool {
        self.bits & sys::EPOLLERR != 0
    }

    /// The peer closed (fully, or its write half): after draining any
    /// buffered bytes, the connection is over.
    pub fn is_hangup(&self) -> bool {
        self.bits & (sys::EPOLLHUP | sys::EPOLLRDHUP) != 0
    }
}

/// Wakes a [`Poller::wait`] from another thread — an `eventfd`
/// registered like any socket, delivered as a readable [`Event`] with
/// the token chosen at construction.
///
/// Cross-thread handoff pattern: the sender queues work somewhere
/// shared, then calls [`wake`](Waker::wake); the event loop sees the
/// waker's token, [`drain`](Waker::drain)s it, and picks the work up.
pub struct Waker {
    fd: File,
    token: Token,
}

impl std::fmt::Debug for Waker {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Waker")
            .field("fd", &self.fd.as_raw_fd())
            .field("token", &self.token)
            .finish()
    }
}

impl Waker {
    /// Creates a waker and registers it with `poller` under `token`.
    pub fn new(poller: &Poller, token: Token) -> io::Result<Waker> {
        let fd = File::from(sys::eventfd_create()?);
        poller.register(&fd, token, Interest::READABLE)?;
        Ok(Waker { fd, token })
    }

    /// The token this waker's events carry.
    pub fn token(&self) -> Token {
        self.token
    }

    /// Makes the poller's current (or next) wait return. Cheap, safe
    /// from any thread, and coalescing: many wakes before a drain still
    /// produce one readable event.
    pub fn wake(&self) -> io::Result<()> {
        match (&self.fd).write(&1u64.to_ne_bytes()) {
            Ok(_) => Ok(()),
            // Counter saturated: the poller is provably wake-pending.
            Err(e) if e.kind() == io::ErrorKind::WouldBlock => Ok(()),
            Err(e) => Err(e),
        }
    }

    /// Clears pending wake-ups; the event loop calls this when it sees
    /// the waker's token, before collecting the handed-off work.
    pub fn drain(&self) {
        let mut buf = [0u8; 8];
        // One read empties an eventfd counter entirely.
        let _ = (&self.fd).read(&mut buf);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::net::{TcpListener, TcpStream};

    const T_LISTENER: Token = Token(1);
    const T_CONN: Token = Token(2);
    const T_WAKER: Token = Token(99);

    #[test]
    fn readiness_roundtrip_over_loopback() {
        let poller = Poller::new().unwrap();
        let listener = TcpListener::bind("127.0.0.1:0").unwrap();
        listener.set_nonblocking(true).unwrap();
        poller
            .register(&listener, T_LISTENER, Interest::READABLE)
            .unwrap();

        let mut client = TcpStream::connect(listener.local_addr().unwrap()).unwrap();
        let mut events = Events::with_capacity(8);

        // The pending accept surfaces as listener readability.
        poller
            .wait(&mut events, Some(Duration::from_secs(5)))
            .unwrap();
        assert!(events
            .iter()
            .any(|e| e.token() == T_LISTENER && e.is_readable()));
        let (conn, _) = listener.accept().unwrap();
        conn.set_nonblocking(true).unwrap();
        poller.register(&conn, T_CONN, Interest::READABLE).unwrap();

        // Payload from the client surfaces as connection readability.
        client.write_all(b"ping").unwrap();
        let deadline = std::time::Instant::now() + Duration::from_secs(5);
        let mut saw_conn = false;
        while !saw_conn && std::time::Instant::now() < deadline {
            poller
                .wait(&mut events, Some(Duration::from_millis(100)))
                .unwrap();
            saw_conn = events
                .iter()
                .any(|e| e.token() == T_CONN && e.is_readable());
        }
        assert!(saw_conn, "payload readiness was never delivered");

        // Level-triggered: unread bytes keep the event coming.
        poller
            .wait(&mut events, Some(Duration::from_secs(5)))
            .unwrap();
        assert!(events
            .iter()
            .any(|e| e.token() == T_CONN && e.is_readable()));

        // Flipping to write interest reports writability instead.
        poller
            .reregister(&conn, T_CONN, Interest::WRITABLE)
            .unwrap();
        poller
            .wait(&mut events, Some(Duration::from_secs(5)))
            .unwrap();
        assert!(events
            .iter()
            .any(|e| e.token() == T_CONN && e.is_writable()));

        // Deregistered fds go quiet.
        poller.deregister(&conn).unwrap();
        poller.deregister(&listener).unwrap();
        poller
            .wait(&mut events, Some(Duration::from_millis(50)))
            .unwrap();
        assert!(events.is_empty());
    }

    #[test]
    fn hangup_is_reported() {
        let poller = Poller::new().unwrap();
        let listener = TcpListener::bind("127.0.0.1:0").unwrap();
        let client = TcpStream::connect(listener.local_addr().unwrap()).unwrap();
        let (conn, _) = listener.accept().unwrap();
        conn.set_nonblocking(true).unwrap();
        poller.register(&conn, T_CONN, Interest::READABLE).unwrap();
        drop(client);
        let mut events = Events::with_capacity(8);
        poller
            .wait(&mut events, Some(Duration::from_secs(5)))
            .unwrap();
        let event = events
            .iter()
            .find(|e| e.token() == T_CONN)
            .expect("an event for the closed peer");
        assert!(event.is_hangup());
        assert!(event.is_readable(), "the EOF is readable");
    }

    #[test]
    fn waker_interrupts_a_blocked_wait() {
        let poller = Poller::new().unwrap();
        let waker = std::sync::Arc::new(Waker::new(&poller, T_WAKER).unwrap());
        let from_thread = waker.clone();
        let handle = std::thread::spawn(move || {
            std::thread::sleep(Duration::from_millis(50));
            from_thread.wake().unwrap();
        });
        let mut events = Events::with_capacity(8);
        let started = std::time::Instant::now();
        poller
            .wait(&mut events, Some(Duration::from_secs(30)))
            .unwrap();
        assert!(started.elapsed() < Duration::from_secs(10), "wake was lost");
        assert!(events.iter().any(|e| e.token() == T_WAKER));
        waker.drain();
        handle.join().unwrap();

        // Drained: the next wait times out instead of spinning.
        poller
            .wait(&mut events, Some(Duration::from_millis(20)))
            .unwrap();
        assert!(events.is_empty());

        // Coalescing: two wakes, one event, one drain.
        waker.wake().unwrap();
        waker.wake().unwrap();
        poller
            .wait(&mut events, Some(Duration::from_secs(5)))
            .unwrap();
        assert_eq!(
            events.iter().filter(|e| e.token() == T_WAKER).count(),
            1,
            "wakes coalesce"
        );
        waker.drain();
    }
}
