//! # reactor
//!
//! A vendored, std-only mini-reactor: the readiness-multiplexing core
//! under the query server's event loops. It wraps Linux `epoll` behind a
//! safe [`Poller`] / [`Token`] / [`Interest`] API — the shape `mio`
//! popularized, shrunk to exactly what a readiness-based TCP server
//! needs — so the rest of the workspace keeps its no-external-deps,
//! no-`unsafe` discipline (`unsafe` lives only in this crate's [`sys`]
//! FFI module, behind safe wrappers).
//!
//! # Model
//!
//! * A [`Poller`] owns one `epoll` instance. Sockets are
//!   [registered](Poller::register) with a caller-chosen [`Token`] and an
//!   [`Interest`] set (readable and/or writable).
//! * [`Poller::wait`] blocks (optionally bounded by a timeout) until at
//!   least one registered socket is ready, filling an [`Events`] buffer.
//!   Each [`Event`] reports the token and what it is ready for.
//! * Readiness is **level-triggered**: a socket with unread bytes (or
//!   writable space) keeps reporting ready until the condition clears,
//!   so a handler that processes *some* of the data is never stranded.
//! * A [`Waker`] lets any thread interrupt a blocked [`Poller::wait`] —
//!   the handoff point for cross-thread work injection (e.g. an accept
//!   thread passing new connections to an event-loop shard).
//!
//! # Quick start
//!
//! ```no_run
//! use reactor::{Events, Interest, Poller, Token};
//! use std::net::TcpListener;
//!
//! # fn main() -> std::io::Result<()> {
//! let listener = TcpListener::bind("127.0.0.1:0")?;
//! listener.set_nonblocking(true)?;
//!
//! let poller = Poller::new()?;
//! const ACCEPT: Token = Token(0);
//! poller.register(&listener, ACCEPT, Interest::READABLE)?;
//!
//! let mut events = Events::with_capacity(64);
//! loop {
//!     poller.wait(&mut events, None)?;
//!     for event in events.iter() {
//!         if event.token() == ACCEPT && event.is_readable() {
//!             while let Ok((conn, _)) = listener.accept() {
//!                 conn.set_nonblocking(true)?;
//!                 // register `conn` with its own token …
//!             }
//!         }
//!     }
//! }
//! # }
//! ```
//!
//! # Scope and portability
//!
//! Linux-only by construction (`epoll`, `eventfd`): the workspace's
//! build and CI targets. The FFI surface is four syscalls plus the
//! `rlimit` pair behind [`sys::raise_nofile_limit`]; everything else —
//! fd lifetimes, nonblocking modes, reads and writes — goes through
//! `std`. There is deliberately no timer wheel, no task system, and no
//! I/O abstraction: callers bring their own state machines.

#![warn(missing_docs)]
#![warn(rust_2018_idioms)]
#![deny(unsafe_code)]

#[allow(unsafe_code)]
pub mod sys;

mod poller;

pub use poller::{Event, Events, Poller, Waker};

/// An opaque identifier a caller attaches to each registered socket;
/// [`Event`]s report it back. Typical servers pack a slab index (and a
/// generation counter, to catch events raced against a close) into it.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct Token(pub u64);

/// What readiness a registration asks to be told about.
///
/// Combine with [`Interest::add`] (the type is a tiny const-friendly
/// bitset): `Interest::READABLE.add(Interest::WRITABLE)`.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Interest(u8);

impl Interest {
    /// Ask for no readiness at all — errors and peer hangups are still
    /// delivered (epoll always reports them). How a server parks a
    /// backpressured connection it has stopped reading from while still
    /// noticing the peer leave.
    pub const NONE: Interest = Interest(0);
    /// Wake when the socket has bytes to read (or a pending accept, or
    /// a peer hangup — hangups are delivered even if not asked for).
    pub const READABLE: Interest = Interest(0b01);
    /// Wake when the socket can accept more outgoing bytes.
    pub const WRITABLE: Interest = Interest(0b10);

    /// The union of two interest sets.
    #[must_use]
    pub const fn add(self, other: Interest) -> Interest {
        Interest(self.0 | other.0)
    }

    /// Whether this set asks for read readiness.
    pub const fn is_readable(self) -> bool {
        self.0 & Self::READABLE.0 != 0
    }

    /// Whether this set asks for write readiness.
    pub const fn is_writable(self) -> bool {
        self.0 & Self::WRITABLE.0 != 0
    }
}
