//! Property-based tests of the paper's guarantees over randomized graphs,
//! lattices, markings, and surrogate catalogs.
//!
//! Rather than composing complex proptest strategies, each case derives a
//! full scenario deterministically from `(node_count, seed)` with a seeded
//! RNG — shrinking then shrinks the scenario's size and seed.

use proptest::prelude::*;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

use surrogate_core::account::{
    generate_for_set, generate_hide_for_set, generate_naive_node_hide_for_set,
    generate_with_options, GenerateOptions, ProtectionContext, Strategy,
};
use surrogate_core::feature::Features;
use surrogate_core::graph::Graph;
use surrogate_core::graph::NodeId;
use surrogate_core::hw::{high_water_set, is_high_water_set};
use surrogate_core::marking::{Marking, MarkingStore};
use surrogate_core::measures::{
    edge_opacity, node_utility, path_utility, OpacityEvaluator, OpacityModel,
};
use surrogate_core::privilege::{PrivilegeId, PrivilegeLattice};
use surrogate_core::query::{traverse, Direction};
use surrogate_core::surrogate::{SurrogateCatalog, SurrogateDef};
use surrogate_core::validate::{check_all, check_soundness};

/// A complete randomized protection scenario.
struct Scenario {
    graph: Graph,
    lattice: PrivilegeLattice,
    markings: MarkingStore,
    catalog: SurrogateCatalog,
    predicate: PrivilegeId,
}

impl Scenario {
    fn ctx(&self) -> ProtectionContext<'_> {
        ProtectionContext::new(&self.graph, &self.lattice, &self.markings, &self.catalog)
    }
}

fn build_scenario(nodes: usize, seed: u64) -> Scenario {
    let mut rng = StdRng::seed_from_u64(seed);

    // Lattice: Public ⊑ L1 ⊑ L2, or Public ⊑ {L1, L2} incomparable.
    let mut builder = PrivilegeLattice::builder();
    let public = builder.add("Public").unwrap();
    let l1 = builder.add("L1").unwrap();
    let l2 = builder.add("L2").unwrap();
    builder.declare_dominates(l1, public);
    if rng.gen_bool(0.5) {
        builder.declare_dominates(l2, l1);
    } else {
        builder.declare_dominates(l2, public);
    }
    let lattice = builder.finish().unwrap();
    let levels = [public, l1, l2];

    let mut graph = Graph::new();
    let ids: Vec<_> = (0..nodes)
        .map(|i| {
            let lowest = levels[rng.gen_range(0..3usize)];
            graph.add_node_with_features(
                format!("n{i}"),
                Features::new().with("i", i as i64),
                lowest,
            )
        })
        .collect();
    for &a in &ids {
        for &b in &ids {
            if a != b && rng.gen_bool(0.25) {
                let _ = graph.add_edge(a, b);
            }
        }
    }

    // Random incidence markings for a random subset of (incidence, level).
    let mut markings = MarkingStore::new();
    let edges: Vec<_> = graph.edges().collect();
    for &edge in &edges {
        for node in [edge.0, edge.1] {
            if rng.gen_bool(0.3) {
                let marking = match rng.gen_range(0..3) {
                    0 => Marking::Visible,
                    1 => Marking::Hide,
                    _ => Marking::Surrogate,
                };
                let level = levels[rng.gen_range(0..3usize)];
                markings.set(node, edge, level, marking);
            }
        }
    }
    // Occasionally mark a whole node's incidences.
    for &n in &ids {
        if rng.gen_bool(0.15) {
            let marking = if rng.gen_bool(0.5) {
                Marking::Surrogate
            } else {
                Marking::Hide
            };
            markings.set_node(n, levels[rng.gen_range(0..3usize)], marking);
        }
    }

    // Surrogates: only for non-public nodes; a Public surrogate can never
    // dominate a non-public lowest, so these are always admissible.
    let mut catalog = SurrogateCatalog::new();
    for &n in &ids {
        if graph.node(n).lowest != public && rng.gen_bool(0.5) {
            catalog.add(
                n,
                SurrogateDef {
                    label: format!("{}'", graph.node(n).label),
                    features: Features::new(),
                    lowest: public,
                    info_score: rng.gen_range(0..=10) as f64 / 10.0,
                },
            );
        }
    }

    let predicate = levels[rng.gen_range(0..3usize)];
    Scenario {
        graph,
        lattice,
        markings,
        catalog,
        predicate,
    }
}

/// Reference BFS: collects `(node, depth)` into `Vec`s the naive way —
/// no `BitSet`, no borrowed iterators — as an oracle for the
/// allocation-free `Traversal::iter()` / `nodes()` accessors.
fn naive_traverse(
    graph: &Graph,
    start: NodeId,
    direction: Direction,
    max_depth: u32,
) -> Vec<(NodeId, u32)> {
    let mut seen: std::collections::HashSet<NodeId> = [start].into_iter().collect();
    let mut visited = Vec::new();
    let mut frontier = vec![start];
    let mut depth = 0u32;
    while !frontier.is_empty() && depth < max_depth {
        depth += 1;
        let mut next = Vec::new();
        for n in frontier {
            let mut neighbors: Vec<NodeId> = Vec::new();
            if matches!(direction, Direction::Forward | Direction::Both) {
                neighbors.extend(graph.out_neighbors(n).iter().copied());
            }
            if matches!(direction, Direction::Backward | Direction::Both) {
                neighbors.extend(graph.in_neighbors(n).iter().copied());
            }
            for m in neighbors {
                if seen.insert(m) {
                    visited.push((m, depth));
                    next.push(m);
                }
            }
        }
        frontier = next;
    }
    visited
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(96))]

    /// Theorem 1 / Defs. 5 & 9: generated surrogate accounts satisfy
    /// soundness, maximal node visibility, dominant surrogacy, and maximal
    /// connectivity on arbitrary scenarios.
    #[test]
    fn surrogate_accounts_satisfy_all_invariants(nodes in 1usize..12, seed in any::<u64>()) {
        let scenario = build_scenario(nodes, seed);
        let ctx = scenario.ctx();
        let account = generate_for_set(&ctx, &[scenario.predicate]).unwrap();
        let violations = check_all(&ctx, &account);
        prop_assert!(violations.is_empty(), "{violations:?}");
    }

    /// Both baselines remain sound (Def. 5) even though they give up the
    /// informativeness properties.
    #[test]
    fn baselines_are_sound(nodes in 1usize..12, seed in any::<u64>()) {
        let scenario = build_scenario(nodes, seed);
        let ctx = scenario.ctx();
        for strategy in [Strategy::HideEdges, Strategy::HideNodes] {
            let account = ctx.protect(scenario.predicate, strategy).unwrap();
            let violations = check_soundness(&ctx, &account);
            prop_assert!(violations.is_empty(), "{strategy:?}: {violations:?}");
        }
    }

    /// The §6.3 headline as a theorem: with the same markings, the
    /// surrogate account's graph is an edge-superset of the hide account's,
    /// so under the default (raw) opacity model every original edge is at
    /// least as opaque, and path utility is at least as high.
    #[test]
    fn surrogating_dominates_hiding(nodes in 2usize..12, seed in any::<u64>()) {
        let scenario = build_scenario(nodes, seed);
        let ctx = scenario.ctx();
        let sur = generate_for_set(&ctx, &[scenario.predicate]).unwrap();
        let hide = generate_hide_for_set(&ctx, &[scenario.predicate]).unwrap();

        // Edge-superset relation.
        for (u2, v2) in hide.graph().edges() {
            let u = hide.original_node(u2);
            let v = hide.original_node(v2);
            let su = sur.account_node(u).expect("same node layer");
            let sv = sur.account_node(v).expect("same node layer");
            prop_assert!(sur.graph().has_edge(su, sv), "lost edge {u:?}->{v:?}");
        }

        // Measure dominance.
        prop_assert!(
            path_utility(&scenario.graph, &sur)
                >= path_utility(&scenario.graph, &hide) - 1e-12
        );
        prop_assert!(
            (node_utility(&scenario.graph, &sur)
                - node_utility(&scenario.graph, &hide)).abs() < 1e-12,
            "identical node layers must score identically"
        );
        let sur_eval = OpacityEvaluator::new(&sur, OpacityModel::directional());
        let hide_eval = OpacityEvaluator::new(&hide, OpacityModel::directional());
        for e in scenario.graph.edges() {
            prop_assert!(
                sur_eval.edge_opacity(e) >= hide_eval.edge_opacity(e) - 1e-12,
                "edge {e:?}"
            );
        }
    }

    /// Opacity stays in [0, 1] with the correct extremes for every model
    /// variant and strategy.
    #[test]
    fn opacity_is_bounded_with_correct_extremes(nodes in 1usize..10, seed in any::<u64>()) {
        let scenario = build_scenario(nodes, seed);
        let ctx = scenario.ctx();
        for strategy in [Strategy::Surrogate, Strategy::HideEdges, Strategy::HideNodes] {
            let account = ctx.protect(scenario.predicate, strategy).unwrap();
            for model in [
                OpacityModel::directional(),
                OpacityModel::directional_normalized(),
                OpacityModel::figure5_literal(),
                OpacityModel::fp_product(),
            ] {
                for e in scenario.graph.edges() {
                    let op = edge_opacity(&account, model, e);
                    prop_assert!((0.0..=1.0).contains(&op), "{op}");
                    if account.original_edge_present(e) {
                        prop_assert_eq!(op, 0.0);
                    }
                    if account.account_node(e.0).is_none()
                        || account.account_node(e.1).is_none()
                    {
                        prop_assert_eq!(op, 1.0);
                    }
                }
            }
        }
    }

    /// Utilities are bounded and exact at the no-protection extreme.
    #[test]
    fn utilities_are_bounded(nodes in 1usize..12, seed in any::<u64>()) {
        let scenario = build_scenario(nodes, seed);
        let ctx = scenario.ctx();
        for strategy in [Strategy::Surrogate, Strategy::HideEdges, Strategy::HideNodes] {
            let account = ctx.protect(scenario.predicate, strategy).unwrap();
            let pu = path_utility(&scenario.graph, &account);
            let nu = node_utility(&scenario.graph, &account);
            prop_assert!((0.0..=1.0 + 1e-12).contains(&pu), "{pu}");
            prop_assert!((0.0..=1.0 + 1e-12).contains(&nu), "{nu}");
        }
    }

    /// A consumer at the top of a chain lattice with no markings sees the
    /// graph unchanged (protection is the identity when nothing is
    /// sensitive for that predicate).
    #[test]
    fn top_consumer_sees_identity(nodes in 1usize..12, seed in any::<u64>()) {
        let mut scenario = build_scenario(nodes, seed);
        scenario.markings = MarkingStore::new();
        // Predicate that dominates everything, if the lattice is a chain.
        let l2 = scenario.lattice.by_name("L2").unwrap();
        let l1 = scenario.lattice.by_name("L1").unwrap();
        prop_assume!(scenario.lattice.dominates(l2, l1));
        let ctx = scenario.ctx();
        let account = generate_for_set(&ctx, &[l2]).unwrap();
        prop_assert_eq!(account.graph().node_count(), scenario.graph.node_count());
        prop_assert_eq!(account.graph().edge_count(), scenario.graph.edge_count());
        prop_assert_eq!(account.surrogate_node_count(), 0);
        prop_assert_eq!(account.surrogate_edge_count(), 0);
    }

    /// Generation is deterministic.
    #[test]
    fn generation_is_deterministic(nodes in 1usize..10, seed in any::<u64>()) {
        let scenario = build_scenario(nodes, seed);
        let ctx = scenario.ctx();
        let a = generate_for_set(&ctx, &[scenario.predicate]).unwrap();
        let b = generate_for_set(&ctx, &[scenario.predicate]).unwrap();
        prop_assert_eq!(a.graph().node_count(), b.graph().node_count());
        prop_assert_eq!(a.graph().edge_count(), b.graph().edge_count());
        let ea: Vec<_> = a.graph().edges().collect();
        let eb: Vec<_> = b.graph().edges().collect();
        prop_assert_eq!(ea, eb);
    }

    /// Multi-predicate accounts (Def. 6 sets) satisfy every invariant too,
    /// and see at least as much as each member's singleton account.
    #[test]
    fn multi_predicate_accounts_satisfy_invariants(nodes in 1usize..10, seed in any::<u64>()) {
        let scenario = build_scenario(nodes, seed);
        let ctx = scenario.ctx();
        let l1 = scenario.lattice.by_name("L1").unwrap();
        let l2 = scenario.lattice.by_name("L2").unwrap();
        prop_assume!(scenario.lattice.incomparable(l1, l2));
        let set_account = surrogate_core::account::generate_for_set(&ctx, &[l1, l2]).unwrap();
        let violations = check_all(&ctx, &set_account);
        prop_assert!(violations.is_empty(), "{violations:?}");
        for p in [l1, l2] {
            let single = generate_for_set(&ctx, &[p]).unwrap();
            prop_assert!(
                set_account.graph().node_count() >= single.graph().node_count(),
                "{p:?}"
            );
        }
    }

    /// Theorem 1's utility maximality, against the strongest sound
    /// competitor: the account carrying an edge for *every* permitted pair
    /// (`redundancy_filter: false`) upper-bounds the path utility any sound
    /// account over the same node set can reach (utility is monotone in
    /// edges, and sound edges are exactly the permitted pairs). The
    /// filtered account must match it exactly.
    #[test]
    fn redundancy_filter_preserves_maximal_utility(nodes in 1usize..10, seed in any::<u64>()) {
        let scenario = build_scenario(nodes, seed);
        let ctx = scenario.ctx();
        let filtered = generate_for_set(&ctx, &[scenario.predicate]).unwrap();
        let maximal = generate_with_options(
            &ctx,
            &[scenario.predicate],
            GenerateOptions { redundancy_filter: false },
        )
        .unwrap();
        let got = path_utility(&scenario.graph, &filtered);
        let bound = path_utility(&scenario.graph, &maximal);
        prop_assert!((got - bound).abs() < 1e-12, "{got} vs bound {bound}");
    }

    /// Lemma 1's node-utility maximality as a direct oracle: the account's
    /// node utility equals the per-node best achievable — 1 for visible
    /// originals, the best visible surrogate's info-score otherwise, 0 when
    /// nothing can be shown — averaged over |N|.
    #[test]
    fn node_utility_is_per_node_optimal(nodes in 1usize..12, seed in any::<u64>()) {
        let scenario = build_scenario(nodes, seed);
        let ctx = scenario.ctx();
        let account = generate_for_set(&ctx, &[scenario.predicate]).unwrap();
        let expected: f64 = scenario
            .graph
            .node_ids()
            .map(|n| {
                if scenario
                    .lattice
                    .dominates(scenario.predicate, scenario.graph.node(n).lowest)
                {
                    1.0
                } else {
                    scenario
                        .catalog
                        .most_dominant_visible(&scenario.lattice, n, scenario.predicate)
                        .map(|def| def.info_score)
                        .unwrap_or(0.0)
                }
            })
            .sum::<f64>()
            / scenario.graph.node_count() as f64;
        let got = node_utility(&scenario.graph, &account);
        prop_assert!((got - expected).abs() < 1e-12, "{got} vs {expected}");
    }

    /// PR 2's allocation-free traversal accessors agree with a naive
    /// Vec-collecting BFS on arbitrary graphs: same `(node, depth)`
    /// sequence from `iter()`, same node sequence from `nodes()`, same
    /// length/emptiness, in every direction and at bounded and unbounded
    /// depths.
    #[test]
    fn traversal_iterators_agree_with_naive_bfs(nodes in 1usize..12, seed in any::<u64>(), root in any::<u16>()) {
        let scenario = build_scenario(nodes, seed);
        let start = NodeId(root as u32 % scenario.graph.node_count() as u32);
        for direction in [Direction::Forward, Direction::Backward, Direction::Both] {
            for max_depth in [0, 1, 2, u32::MAX] {
                let traversal = traverse(&scenario.graph, start, direction, max_depth);
                let expected = naive_traverse(&scenario.graph, start, direction, max_depth);
                let via_iter: Vec<(NodeId, u32)> = traversal.iter().collect();
                prop_assert_eq!(&via_iter, &expected, "iter() diverged ({direction:?}, depth {max_depth})");
                let via_nodes: Vec<NodeId> = traversal.nodes().collect();
                let expected_nodes: Vec<NodeId> = expected.iter().map(|&(n, _)| n).collect();
                prop_assert_eq!(&via_nodes, &expected_nodes, "nodes() diverged");
                let via_intoiter: Vec<(NodeId, u32)> = (&traversal).into_iter().collect();
                prop_assert_eq!(&via_intoiter, &expected, "IntoIterator diverged");
                prop_assert_eq!(traversal.len(), expected.len());
                prop_assert_eq!(traversal.is_empty(), expected.is_empty());
            }
        }
    }

    /// High-water sets satisfy Def. 6 on arbitrary graphs.
    #[test]
    fn high_water_sets_satisfy_def6(nodes in 0usize..12, seed in any::<u64>()) {
        let scenario = build_scenario(nodes.max(1), seed);
        let hw = high_water_set(&scenario.graph, &scenario.lattice);
        prop_assert!(is_high_water_set(&scenario.graph, &scenario.lattice, &hw));
    }

    /// The naïve baseline never contains surrogates and its node utility
    /// equals the visible fraction (§4.1's |N'|/|N| remark).
    #[test]
    fn naive_node_utility_is_visible_fraction(nodes in 1usize..12, seed in any::<u64>()) {
        let scenario = build_scenario(nodes, seed);
        let ctx = scenario.ctx();
        let account = generate_naive_node_hide_for_set(&ctx, &[scenario.predicate]).unwrap();
        prop_assert_eq!(account.surrogate_node_count(), 0);
        let expected =
            account.graph().node_count() as f64 / scenario.graph.node_count() as f64;
        let nu = node_utility(&scenario.graph, &account);
        prop_assert!((nu - expected).abs() < 1e-12, "{nu} vs {expected}");
    }
}
