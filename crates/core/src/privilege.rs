//! Privilege-predicates and their dominance partial order (paper §2).
//!
//! A privilege-predicate is a Boolean function over consumer credentials;
//! `p1` *dominates* `p2` when every consumer satisfying `p1` also satisfies
//! `p2` (Def. 2). The paper assumes a `Public` predicate dominated by all
//! others. We represent the predicates symbolically: the data owner
//! declares named predicates and the dominance edges between them, and the
//! lattice precomputes the reflexive–transitive closure so `dominates` is a
//! single bit probe.

use crate::error::{Error, Result};
use crate::util::{BitSet, FxHashMap};

/// Identifier for a privilege-predicate within its [`PrivilegeLattice`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub struct PrivilegeId(pub u16);

impl PrivilegeId {
    /// The id as a dense index into per-predicate side tables (e.g. the
    /// name list of [`PrivilegeLattice::names_in_order`]).
    #[inline]
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

/// Builder for a [`PrivilegeLattice`].
///
/// ```
/// use surrogate_core::privilege::PrivilegeLattice;
///
/// let mut builder = PrivilegeLattice::builder();
/// let public = builder.add("Public").unwrap();
/// let low2 = builder.add("Low-2").unwrap();
/// let high2 = builder.add("High-2").unwrap();
/// builder.declare_dominates(low2, public);
/// builder.declare_dominates(high2, low2);
/// let lattice = builder.finish().unwrap();
/// assert!(lattice.dominates(high2, public));
/// assert!(!lattice.dominates(public, high2));
/// ```
#[derive(Debug, Default)]
pub struct PrivilegeLatticeBuilder {
    names: Vec<String>,
    by_name: FxHashMap<String, PrivilegeId>,
    dominance: Vec<(PrivilegeId, PrivilegeId)>,
}

impl PrivilegeLatticeBuilder {
    /// Declares a new predicate with a human-readable nickname
    /// (e.g. `"High-2"`).
    pub fn add(&mut self, name: impl Into<String>) -> Result<PrivilegeId> {
        let name = name.into();
        if self.by_name.contains_key(&name) {
            return Err(Error::DuplicatePrivilege(name));
        }
        let id = PrivilegeId(self.names.len() as u16);
        self.by_name.insert(name.clone(), id);
        self.names.push(name);
        Ok(id)
    }

    /// Declares that `higher` dominates `lower` (Def. 2): every consumer
    /// satisfying `higher` also satisfies `lower`.
    pub fn declare_dominates(&mut self, higher: PrivilegeId, lower: PrivilegeId) {
        self.dominance.push((higher, lower));
    }

    /// Validates the declarations and freezes the lattice.
    ///
    /// Fails when a declared edge references an unknown predicate, the
    /// declarations are cyclic (not a partial order), or there is no unique
    /// `Public` bottom dominated by every predicate.
    pub fn finish(self) -> Result<PrivilegeLattice> {
        let n = self.names.len();
        for &(a, b) in &self.dominance {
            if a.index() >= n {
                return Err(Error::UnknownPrivilege(a));
            }
            if b.index() >= n {
                return Err(Error::UnknownPrivilege(b));
            }
        }

        // closure[p] = all predicates dominated by p, including p itself.
        let mut closure: Vec<BitSet> = (0..n)
            .map(|i| {
                let mut set = BitSet::new(n);
                set.insert(i);
                set
            })
            .collect();

        let mut direct: Vec<Vec<usize>> = vec![Vec::new(); n];
        for &(a, b) in &self.dominance {
            direct[a.index()].push(b.index());
        }

        // Iterate to a fixpoint; with n predicates, n rounds suffice.
        let mut changed = true;
        while changed {
            changed = false;
            for p in 0..n {
                for &q in &direct[p] {
                    let q_closure = closure[q].clone();
                    let before = closure[p].len();
                    closure[p].union_with(&q_closure);
                    if closure[p].len() != before {
                        changed = true;
                    }
                }
            }
        }

        // Antisymmetry: mutual dominance between distinct predicates means
        // the declared order is not partial.
        for a in 0..n {
            for b in (a + 1)..n {
                if closure[a].contains(b) && closure[b].contains(a) {
                    return Err(Error::DominanceCycle);
                }
            }
        }

        // Bottom element: a predicate dominated by every predicate.
        let public = (0..n)
            .find(|&candidate| (0..n).all(|p| closure[p].contains(candidate)))
            .map(|i| PrivilegeId(i as u16))
            .ok_or(Error::NoPublicBottom)?;

        Ok(PrivilegeLattice {
            names: self.names,
            by_name: self.by_name,
            closure,
            public,
        })
    }
}

/// A frozen partial order of privilege-predicates.
#[derive(Debug, Clone)]
pub struct PrivilegeLattice {
    names: Vec<String>,
    by_name: FxHashMap<String, PrivilegeId>,
    closure: Vec<BitSet>,
    public: PrivilegeId,
}

impl PrivilegeLattice {
    /// Starts building a lattice.
    pub fn builder() -> PrivilegeLatticeBuilder {
        PrivilegeLatticeBuilder::default()
    }

    /// Builds the common two-level lattice `{Public}` plus the given
    /// mutually incomparable predicates, each dominating `Public`.
    pub fn flat(names: &[&str]) -> Result<(Self, Vec<PrivilegeId>)> {
        let mut builder = Self::builder();
        let public = builder.add("Public")?;
        let mut ids = Vec::with_capacity(names.len());
        for name in names {
            let id = builder.add(*name)?;
            builder.declare_dominates(id, public);
            ids.push(id);
        }
        Ok((builder.finish()?, ids))
    }

    /// Trivial lattice containing only `Public`. Used by evaluations that
    /// protect edges rather than nodes (paper §6).
    pub fn public_only() -> Self {
        let mut builder = Self::builder();
        builder.add("Public").expect("fresh builder");
        builder
            .finish()
            .expect("single predicate is a valid lattice")
    }

    /// Number of predicates.
    pub fn len(&self) -> usize {
        self.names.len()
    }

    /// `true` if the lattice has no predicates (never constructible via
    /// [`finish`](PrivilegeLatticeBuilder::finish), which requires a bottom).
    pub fn is_empty(&self) -> bool {
        self.names.is_empty()
    }

    /// The `Public` bottom predicate.
    pub fn public(&self) -> PrivilegeId {
        self.public
    }

    /// Nickname of a predicate.
    pub fn name(&self, p: PrivilegeId) -> &str {
        &self.names[p.index()]
    }

    /// Looks a predicate up by nickname.
    pub fn by_name(&self, name: &str) -> Option<PrivilegeId> {
        self.by_name.get(name).copied()
    }

    /// All predicate ids.
    pub fn ids(&self) -> impl Iterator<Item = PrivilegeId> + '_ {
        (0..self.names.len() as u16).map(PrivilegeId)
    }

    /// Def. 2 dominance test (reflexive).
    #[inline]
    pub fn dominates(&self, higher: PrivilegeId, lower: PrivilegeId) -> bool {
        self.closure[higher.index()].contains(lower.index())
    }

    /// `true` when neither predicate dominates the other.
    pub fn incomparable(&self, a: PrivilegeId, b: PrivilegeId) -> bool {
        !self.dominates(a, b) && !self.dominates(b, a)
    }

    /// `true` when no member of `set` dominates another member.
    pub fn is_antichain(&self, set: &[PrivilegeId]) -> bool {
        for (i, &a) in set.iter().enumerate() {
            for &b in &set[i + 1..] {
                if self.dominates(a, b) || self.dominates(b, a) {
                    return false;
                }
            }
        }
        true
    }

    /// Reduces a set of predicates to its maximal elements: the antichain
    /// of predicates not strictly dominated by another member. Duplicates
    /// are removed; order follows first occurrence.
    pub fn maximal_antichain(&self, set: &[PrivilegeId]) -> Vec<PrivilegeId> {
        let mut result: Vec<PrivilegeId> = Vec::new();
        for &p in set {
            if result.contains(&p) {
                continue;
            }
            if set
                .iter()
                .any(|&q| q != p && self.dominates(q, p) && !self.dominates(p, q))
            {
                continue;
            }
            result.push(p);
        }
        result
    }

    /// `true` when some member of `set` dominates `p`.
    pub fn set_dominates(&self, set: &[PrivilegeId], p: PrivilegeId) -> bool {
        set.iter().any(|&q| self.dominates(q, p))
    }

    /// All strict dominance pairs `(higher, lower)`, transitively closed.
    /// Rebuilding a lattice from [`Self::names_in_order`] and these pairs
    /// yields identical ids and dominance — the export path used by
    /// downstream stores.
    pub fn dominance_pairs(&self) -> Vec<(PrivilegeId, PrivilegeId)> {
        let mut pairs = Vec::new();
        for hi in self.ids() {
            for lo in self.ids() {
                if hi != lo && self.dominates(hi, lo) {
                    pairs.push((hi, lo));
                }
            }
        }
        pairs
    }

    /// Predicate nicknames in id order.
    pub fn names_in_order(&self) -> Vec<&str> {
        self.names.iter().map(String::as_str).collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Lattice of paper Fig. 1b: Public at the bottom; Low-2 above it;
    /// High-2 above Low-2; High-1 incomparable to both Low-2 and High-2.
    fn figure1b() -> (PrivilegeLattice, [PrivilegeId; 4]) {
        let mut builder = PrivilegeLattice::builder();
        let public = builder.add("Public").unwrap();
        let low2 = builder.add("Low-2").unwrap();
        let high1 = builder.add("High-1").unwrap();
        let high2 = builder.add("High-2").unwrap();
        builder.declare_dominates(low2, public);
        builder.declare_dominates(high1, public);
        builder.declare_dominates(high2, low2);
        let lattice = builder.finish().unwrap();
        (lattice, [public, low2, high1, high2])
    }

    #[test]
    fn dominance_is_reflexive_and_transitive() {
        let (lattice, [public, low2, _, high2]) = figure1b();
        for p in lattice.ids() {
            assert!(lattice.dominates(p, p), "reflexive at {p:?}");
        }
        assert!(lattice.dominates(high2, low2));
        assert!(lattice.dominates(low2, public));
        assert!(lattice.dominates(high2, public), "transitive");
    }

    #[test]
    fn incomparability_matches_figure() {
        let (lattice, [_, low2, high1, high2]) = figure1b();
        assert!(lattice.incomparable(high1, high2));
        assert!(lattice.incomparable(high1, low2));
        assert!(!lattice.incomparable(high2, low2));
    }

    #[test]
    fn public_is_bottom() {
        let (lattice, [public, ..]) = figure1b();
        assert_eq!(lattice.public(), public);
        for p in lattice.ids() {
            assert!(lattice.dominates(p, public));
        }
    }

    #[test]
    fn missing_bottom_is_rejected() {
        let mut builder = PrivilegeLattice::builder();
        builder.add("A").unwrap();
        builder.add("B").unwrap();
        assert_eq!(builder.finish().unwrap_err(), Error::NoPublicBottom);
    }

    #[test]
    fn cycles_are_rejected() {
        let mut builder = PrivilegeLattice::builder();
        let a = builder.add("A").unwrap();
        let b = builder.add("B").unwrap();
        builder.declare_dominates(a, b);
        builder.declare_dominates(b, a);
        assert_eq!(builder.finish().unwrap_err(), Error::DominanceCycle);
    }

    #[test]
    fn duplicate_names_rejected() {
        let mut builder = PrivilegeLattice::builder();
        builder.add("X").unwrap();
        assert!(matches!(
            builder.add("X"),
            Err(Error::DuplicatePrivilege(_))
        ));
    }

    #[test]
    fn unknown_edge_target_rejected() {
        let mut builder = PrivilegeLattice::builder();
        let a = builder.add("A").unwrap();
        builder.declare_dominates(a, PrivilegeId(9));
        assert_eq!(
            builder.finish().unwrap_err(),
            Error::UnknownPrivilege(PrivilegeId(9))
        );
    }

    #[test]
    fn antichain_detection() {
        let (lattice, [public, low2, high1, high2]) = figure1b();
        assert!(lattice.is_antichain(&[high1, high2]));
        assert!(!lattice.is_antichain(&[low2, high2]));
        assert!(lattice.is_antichain(&[public]));
        assert!(lattice.is_antichain(&[]));
    }

    #[test]
    fn maximal_antichain_reduction() {
        let (lattice, [public, low2, high1, high2]) = figure1b();
        let reduced = lattice.maximal_antichain(&[public, low2, high1, high2, public]);
        assert_eq!(reduced, vec![high1, high2]);
        assert!(lattice.is_antichain(&reduced));
    }

    #[test]
    fn set_dominates_checks_any_member() {
        let (lattice, [public, low2, high1, high2]) = figure1b();
        assert!(lattice.set_dominates(&[high1, high2], low2));
        assert!(lattice.set_dominates(&[high1, high2], public));
        assert!(!lattice.set_dominates(&[low2], high1));
    }

    #[test]
    fn flat_lattice_is_incomparable_above_public() {
        let (lattice, ids) = PrivilegeLattice::flat(&["A", "B", "C"]).unwrap();
        assert!(lattice.is_antichain(&ids));
        for &id in &ids {
            assert!(lattice.dominates(id, lattice.public()));
        }
    }

    #[test]
    fn public_only_lattice() {
        let lattice = PrivilegeLattice::public_only();
        assert_eq!(lattice.len(), 1);
        assert_eq!(lattice.name(lattice.public()), "Public");
    }

    #[test]
    fn dominance_pairs_rebuild_the_lattice() {
        let (lattice, _) = figure1b();
        let names = lattice.names_in_order();
        let pairs = lattice.dominance_pairs();
        let mut builder = PrivilegeLattice::builder();
        let ids: Vec<PrivilegeId> = names.iter().map(|n| builder.add(*n).unwrap()).collect();
        for (hi, lo) in &pairs {
            builder.declare_dominates(ids[hi.index()], ids[lo.index()]);
        }
        let rebuilt = builder.finish().unwrap();
        for a in lattice.ids() {
            for b in lattice.ids() {
                assert_eq!(lattice.dominates(a, b), rebuilt.dominates(a, b));
            }
        }
    }

    #[test]
    fn lookup_by_name() {
        let (lattice, [_, low2, ..]) = figure1b();
        assert_eq!(lattice.by_name("Low-2"), Some(low2));
        assert_eq!(lattice.by_name("nope"), None);
    }
}
