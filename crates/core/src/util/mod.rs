//! Internal data-structure substrate: hashing, bitsets, union-find.

pub mod bitset;
pub mod fxhash;
pub mod union_find;

pub use bitset::BitSet;
pub use fxhash::{FxHashMap, FxHashSet, FxHasher};
pub use union_find::UnionFind;
