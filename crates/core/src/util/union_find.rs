//! Disjoint-set forest (union-find) with path halving and union by size.
//!
//! The Path Utility Measure (paper Fig. 3a) needs, for every node, the size
//! of its undirected connected component in both `G` and `G'`. A union-find
//! pass over the edge list computes all component sizes in near-linear time.

/// Disjoint-set forest over `0..n`.
#[derive(Debug, Clone)]
pub struct UnionFind {
    parent: Vec<u32>,
    size: Vec<u32>,
}

impl UnionFind {
    /// Creates `n` singleton sets.
    pub fn new(n: usize) -> Self {
        assert!(n <= u32::MAX as usize, "union-find capacity overflow");
        Self {
            parent: (0..n as u32).collect(),
            size: vec![1; n],
        }
    }

    /// Number of elements (not sets).
    pub fn len(&self) -> usize {
        self.parent.len()
    }

    /// `true` when the structure holds no elements.
    pub fn is_empty(&self) -> bool {
        self.parent.is_empty()
    }

    /// Finds the representative of `x`'s set, halving paths on the way.
    pub fn find(&mut self, x: usize) -> usize {
        let mut x = x as u32;
        while self.parent[x as usize] != x {
            let grandparent = self.parent[self.parent[x as usize] as usize];
            self.parent[x as usize] = grandparent;
            x = grandparent;
        }
        x as usize
    }

    /// Merges the sets of `a` and `b`; returns `false` if already joined.
    pub fn union(&mut self, a: usize, b: usize) -> bool {
        let (mut ra, mut rb) = (self.find(a), self.find(b));
        if ra == rb {
            return false;
        }
        if self.size[ra] < self.size[rb] {
            std::mem::swap(&mut ra, &mut rb);
        }
        self.parent[rb] = ra as u32;
        self.size[ra] += self.size[rb];
        true
    }

    /// Size of the set containing `x`.
    pub fn component_size(&mut self, x: usize) -> usize {
        let root = self.find(x);
        self.size[root] as usize
    }

    /// `true` when `a` and `b` are in the same set.
    pub fn connected(&mut self, a: usize, b: usize) -> bool {
        self.find(a) == self.find(b)
    }

    /// Number of distinct sets.
    pub fn set_count(&mut self) -> usize {
        (0..self.len()).filter(|&i| self.find(i) == i).count()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn singletons_at_start() {
        let mut uf = UnionFind::new(5);
        assert_eq!(uf.set_count(), 5);
        for i in 0..5 {
            assert_eq!(uf.component_size(i), 1);
        }
    }

    #[test]
    fn union_merges_sizes() {
        let mut uf = UnionFind::new(6);
        assert!(uf.union(0, 1));
        assert!(uf.union(2, 3));
        assert!(uf.union(1, 2));
        assert!(!uf.union(0, 3), "already connected");
        assert_eq!(uf.component_size(0), 4);
        assert_eq!(uf.component_size(3), 4);
        assert_eq!(uf.component_size(4), 1);
        assert_eq!(uf.set_count(), 3);
    }

    #[test]
    fn connected_tracks_transitivity() {
        let mut uf = UnionFind::new(4);
        uf.union(0, 1);
        uf.union(1, 2);
        assert!(uf.connected(0, 2));
        assert!(!uf.connected(0, 3));
    }

    #[test]
    fn long_chain_compresses() {
        let n = 10_000;
        let mut uf = UnionFind::new(n);
        for i in 0..n - 1 {
            uf.union(i, i + 1);
        }
        assert_eq!(uf.component_size(0), n);
        assert_eq!(uf.set_count(), 1);
    }

    #[test]
    fn empty_is_empty() {
        let uf = UnionFind::new(0);
        assert!(uf.is_empty());
        assert_eq!(uf.len(), 0);
    }
}
