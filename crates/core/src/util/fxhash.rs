//! A small, fast, non-cryptographic hasher in the style of `FxHash`.
//!
//! The default `std` hasher (SipHash 1-3) defends against HashDoS at the
//! cost of throughput on short integer keys, which dominate this crate's
//! workloads (node ids, edge endpoint pairs, privilege ids). All inputs
//! hashed here are internally generated identifiers, never attacker
//! controlled strings, so the multiply-rotate mix used by rustc is the
//! right trade-off.

use std::collections::{HashMap, HashSet};
use std::hash::{BuildHasherDefault, Hasher};

/// Multiplicative constant from the FxHash algorithm (64-bit golden-ratio
/// derived, as used in Firefox and rustc).
const SEED: u64 = 0x51_7c_c1_b7_27_22_0a_95;
const ROTATE: u32 = 5;

/// Hasher state. One `u64` of rolling state; each word is rotated in and
/// multiplied by the FxHash seed constant.
#[derive(Debug, Clone, Copy, Default)]
pub struct FxHasher {
    hash: u64,
}

impl FxHasher {
    #[inline]
    fn add_to_hash(&mut self, word: u64) {
        self.hash = (self.hash.rotate_left(ROTATE) ^ word).wrapping_mul(SEED);
    }
}

impl Hasher for FxHasher {
    #[inline]
    fn write(&mut self, bytes: &[u8]) {
        let mut chunks = bytes.chunks_exact(8);
        for chunk in chunks.by_ref() {
            let mut buf = [0u8; 8];
            buf.copy_from_slice(chunk);
            self.add_to_hash(u64::from_le_bytes(buf));
        }
        let rem = chunks.remainder();
        if !rem.is_empty() {
            let mut buf = [0u8; 8];
            buf[..rem.len()].copy_from_slice(rem);
            self.add_to_hash(u64::from_le_bytes(buf));
        }
    }

    #[inline]
    fn write_u8(&mut self, n: u8) {
        self.add_to_hash(n as u64);
    }

    #[inline]
    fn write_u16(&mut self, n: u16) {
        self.add_to_hash(n as u64);
    }

    #[inline]
    fn write_u32(&mut self, n: u32) {
        self.add_to_hash(n as u64);
    }

    #[inline]
    fn write_u64(&mut self, n: u64) {
        self.add_to_hash(n);
    }

    #[inline]
    fn write_usize(&mut self, n: usize) {
        self.add_to_hash(n as u64);
    }

    #[inline]
    fn finish(&self) -> u64 {
        self.hash
    }
}

/// `HashMap` keyed with [`FxHasher`].
pub type FxHashMap<K, V> = HashMap<K, V, BuildHasherDefault<FxHasher>>;
/// `HashSet` keyed with [`FxHasher`].
pub type FxHashSet<T> = HashSet<T, BuildHasherDefault<FxHasher>>;

#[cfg(test)]
mod tests {
    use super::*;
    use std::hash::Hash;

    fn hash_of<T: Hash>(value: T) -> u64 {
        let mut hasher = FxHasher::default();
        value.hash(&mut hasher);
        hasher.finish()
    }

    #[test]
    fn deterministic() {
        assert_eq!(hash_of(42u32), hash_of(42u32));
        assert_eq!(hash_of("abc"), hash_of("abc"));
    }

    #[test]
    fn distinguishes_nearby_integers() {
        let mut seen = std::collections::HashSet::new();
        for i in 0u32..10_000 {
            assert!(seen.insert(hash_of(i)), "collision at {i}");
        }
    }

    #[test]
    fn distinguishes_tuple_order() {
        assert_ne!(hash_of((1u32, 2u32)), hash_of((2u32, 1u32)));
    }

    #[test]
    fn handles_unaligned_byte_tails() {
        // 9 bytes exercises the chunk + remainder path.
        assert_ne!(hash_of([1u8; 9]), hash_of([1u8; 8]));
        assert_ne!(
            hash_of(b"abcdefghi".as_slice()),
            hash_of(b"abcdefgh".as_slice())
        );
    }

    #[test]
    fn map_and_set_aliases_work() {
        let mut map: FxHashMap<u32, &str> = FxHashMap::default();
        map.insert(1, "one");
        assert_eq!(map.get(&1), Some(&"one"));
        let mut set: FxHashSet<(u32, u32)> = FxHashSet::default();
        assert!(set.insert((1, 2)));
        assert!(!set.insert((1, 2)));
    }
}
