//! Fixed-capacity bitset used for dominance closures and reachability.
//!
//! The privilege lattice needs an `O(1)` `dominates` test after setup, and
//! account generation needs dense visited sets over node ids. Both are
//! bounded, dense universes of small integers, which a `Vec<u64>` bitset
//! serves with minimal allocation and good cache behaviour.

/// A growable-but-bounded set of `usize` values stored one bit each.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct BitSet {
    words: Vec<u64>,
    capacity: usize,
}

impl BitSet {
    /// Creates an empty set able to hold values in `0..capacity`.
    pub fn new(capacity: usize) -> Self {
        Self {
            words: vec![0; capacity.div_ceil(64)],
            capacity,
        }
    }

    /// Number of values this set can hold.
    #[inline]
    pub fn capacity(&self) -> usize {
        self.capacity
    }

    /// Inserts `value`, returning `true` if it was not already present.
    ///
    /// # Panics
    /// Panics if `value >= capacity`.
    #[inline]
    pub fn insert(&mut self, value: usize) -> bool {
        assert!(value < self.capacity, "bitset value {value} out of range");
        let word = &mut self.words[value / 64];
        let mask = 1u64 << (value % 64);
        let fresh = *word & mask == 0;
        *word |= mask;
        fresh
    }

    /// Removes `value`, returning `true` if it was present.
    #[inline]
    pub fn remove(&mut self, value: usize) -> bool {
        if value >= self.capacity {
            return false;
        }
        let word = &mut self.words[value / 64];
        let mask = 1u64 << (value % 64);
        let present = *word & mask != 0;
        *word &= !mask;
        present
    }

    /// Tests membership.
    #[inline]
    pub fn contains(&self, value: usize) -> bool {
        value < self.capacity && self.words[value / 64] & (1u64 << (value % 64)) != 0
    }

    /// Number of values present.
    pub fn len(&self) -> usize {
        self.words.iter().map(|w| w.count_ones() as usize).sum()
    }

    /// `true` when no value is present.
    pub fn is_empty(&self) -> bool {
        self.words.iter().all(|&w| w == 0)
    }

    /// Removes all values.
    pub fn clear(&mut self) {
        self.words.fill(0);
    }

    /// In-place union with `other`.
    ///
    /// # Panics
    /// Panics if capacities differ.
    pub fn union_with(&mut self, other: &BitSet) {
        assert_eq!(self.capacity, other.capacity, "bitset capacity mismatch");
        for (w, o) in self.words.iter_mut().zip(&other.words) {
            *w |= o;
        }
    }

    /// `true` if every member of `self` is also in `other`.
    pub fn is_subset(&self, other: &BitSet) -> bool {
        self.capacity == other.capacity
            && self
                .words
                .iter()
                .zip(&other.words)
                .all(|(w, o)| w & !o == 0)
    }

    /// Iterates over members in increasing order.
    pub fn iter(&self) -> impl Iterator<Item = usize> + '_ {
        self.words.iter().enumerate().flat_map(|(wi, &word)| {
            let mut bits = word;
            std::iter::from_fn(move || {
                if bits == 0 {
                    None
                } else {
                    let bit = bits.trailing_zeros() as usize;
                    bits &= bits - 1;
                    Some(wi * 64 + bit)
                }
            })
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn insert_contains_remove() {
        let mut set = BitSet::new(130);
        assert!(set.insert(0));
        assert!(set.insert(129));
        assert!(!set.insert(129), "second insert reports already present");
        assert!(set.contains(0));
        assert!(set.contains(129));
        assert!(!set.contains(64));
        assert!(set.remove(0));
        assert!(!set.remove(0));
        assert!(!set.contains(0));
        assert_eq!(set.len(), 1);
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn insert_out_of_range_panics() {
        BitSet::new(8).insert(8);
    }

    #[test]
    fn iter_is_sorted_and_complete() {
        let mut set = BitSet::new(200);
        for v in [3usize, 64, 65, 127, 128, 199] {
            set.insert(v);
        }
        let collected: Vec<usize> = set.iter().collect();
        assert_eq!(collected, vec![3, 64, 65, 127, 128, 199]);
    }

    #[test]
    fn union_and_subset() {
        let mut a = BitSet::new(100);
        let mut b = BitSet::new(100);
        a.insert(1);
        b.insert(2);
        b.insert(1);
        assert!(a.is_subset(&b));
        assert!(!b.is_subset(&a));
        a.union_with(&b);
        assert!(b.is_subset(&a));
        assert_eq!(a.len(), 2);
    }

    #[test]
    fn clear_empties() {
        let mut set = BitSet::new(10);
        set.insert(5);
        assert!(!set.is_empty());
        set.clear();
        assert!(set.is_empty());
        assert_eq!(set.len(), 0);
    }

    #[test]
    fn contains_out_of_range_is_false() {
        let set = BitSet::new(4);
        assert!(!set.contains(4));
        assert!(!set.contains(1000));
    }
}
