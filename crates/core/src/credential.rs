//! Consumers and the `authorized(c, o)` check (paper §2, Def. 1).
//!
//! The paper treats credential generation and authentication as out of
//! scope and works with the induced privilege-predicates. We mirror that: a
//! [`Consumer`] is the set of predicates its credentials satisfy, closed
//! downward under dominance (if `p(c)` holds and `p` dominates `q`, then
//! `q(c)` holds by Def. 2).

use crate::privilege::{PrivilegeId, PrivilegeLattice};
use crate::util::BitSet;

/// A consumer, represented by the set of privilege-predicates it satisfies.
#[derive(Debug, Clone)]
pub struct Consumer {
    name: String,
    satisfied: BitSet,
}

impl Consumer {
    /// Creates a consumer satisfying `granted` and everything those
    /// predicates dominate.
    pub fn new(
        name: impl Into<String>,
        lattice: &PrivilegeLattice,
        granted: &[PrivilegeId],
    ) -> Self {
        let mut satisfied = BitSet::new(lattice.len());
        for &g in granted {
            for q in lattice.ids() {
                if lattice.dominates(g, q) {
                    satisfied.insert(q.index());
                }
            }
        }
        Self {
            name: name.into(),
            satisfied,
        }
    }

    /// A consumer holding only `Public`.
    pub fn public(lattice: &PrivilegeLattice) -> Self {
        Self::new("public", lattice, &[lattice.public()])
    }

    /// Display name.
    pub fn name(&self) -> &str {
        &self.name
    }

    /// `p(c)`: does this consumer satisfy predicate `p`?
    #[inline]
    pub fn satisfies(&self, p: PrivilegeId) -> bool {
        self.satisfied.contains(p.index())
    }

    /// Def. 1: an object with lowest predicate `lowest` is visible to this
    /// consumer iff the consumer satisfies that predicate.
    #[inline]
    pub fn authorized_for(&self, lowest: PrivilegeId) -> bool {
        self.satisfies(lowest)
    }

    /// All satisfied predicates.
    pub fn satisfied(&self) -> impl Iterator<Item = PrivilegeId> + '_ {
        self.satisfied.iter().map(|i| PrivilegeId(i as u16))
    }

    /// The maximal satisfied predicates — the strongest credentials this
    /// consumer can present. For a consumer granted a single predicate this
    /// is that predicate.
    pub fn frontier(&self, lattice: &PrivilegeLattice) -> Vec<PrivilegeId> {
        let all: Vec<PrivilegeId> = self.satisfied().collect();
        lattice.maximal_antichain(&all)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::privilege::PrivilegeLattice;

    fn chain() -> (PrivilegeLattice, [PrivilegeId; 3]) {
        let mut builder = PrivilegeLattice::builder();
        let public = builder.add("Public").unwrap();
        let low = builder.add("Low").unwrap();
        let high = builder.add("High").unwrap();
        builder.declare_dominates(low, public);
        builder.declare_dominates(high, low);
        (builder.finish().unwrap(), [public, low, high])
    }

    #[test]
    fn grants_close_downward() {
        let (lattice, [public, low, high]) = chain();
        let consumer = Consumer::new("alice", &lattice, &[high]);
        assert!(consumer.satisfies(high));
        assert!(consumer.satisfies(low));
        assert!(consumer.satisfies(public));
        let weak = Consumer::new("bob", &lattice, &[low]);
        assert!(!weak.satisfies(high));
        assert!(weak.satisfies(public));
    }

    #[test]
    fn public_consumer_satisfies_only_public() {
        let (lattice, [public, low, high]) = chain();
        let consumer = Consumer::public(&lattice);
        assert!(consumer.satisfies(public));
        assert!(!consumer.satisfies(low));
        assert!(!consumer.satisfies(high));
    }

    #[test]
    fn authorized_matches_satisfies() {
        let (lattice, [_, low, high]) = chain();
        let consumer = Consumer::new("carol", &lattice, &[low]);
        assert!(consumer.authorized_for(low));
        assert!(!consumer.authorized_for(high));
    }

    #[test]
    fn frontier_is_the_strongest_grant() {
        let (lattice, [_, _, high]) = chain();
        let consumer = Consumer::new("dave", &lattice, &[high]);
        assert_eq!(consumer.frontier(&lattice), vec![high]);
    }

    #[test]
    fn frontier_with_incomparable_grants() {
        let (lattice, ids) = PrivilegeLattice::flat(&["A", "B"]).unwrap();
        let consumer = Consumer::new("eve", &lattice, &ids);
        let frontier = consumer.frontier(&lattice);
        assert_eq!(frontier.len(), 2);
        assert!(lattice.is_antichain(&frontier));
    }

    #[test]
    fn name_is_kept() {
        let (lattice, _) = chain();
        let consumer = Consumer::public(&lattice);
        assert_eq!(consumer.name(), "public");
    }
}
