//! Node features: attribute–value pairs (paper §2).
//!
//! "Nodes have features, such as timestamp, author, etc., modeled as
//! attribute-value pairs." Surrogate nodes protect information by omitting
//! or coarsening features (§3.1), so feature equality and counting are the
//! basis of the default info-score heuristics.

use std::collections::BTreeMap;
use std::fmt;

/// A single feature value.
///
/// The variants cover the kinds of metadata the paper mentions (authors,
/// timestamps, phone numbers, threat levels, ...). `Timestamp` is integer
/// milliseconds so equality and ordering stay exact.
#[derive(Debug, Clone, PartialEq)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub enum FeatureValue {
    /// Free text, e.g. `<name, "Joe">`.
    Str(String),
    /// Integer quantity, e.g. `<affected_patients, 412>`.
    Int(i64),
    /// Floating-point quantity, e.g. `<confidence, 0.9>`.
    Float(f64),
    /// Boolean flag, e.g. `<court_sanctioned, true>`.
    Bool(bool),
    /// Milliseconds since the epoch.
    Timestamp(i64),
}

impl FeatureValue {
    /// Short type tag used in displays and the wire codec.
    pub fn type_name(&self) -> &'static str {
        match self {
            FeatureValue::Str(_) => "str",
            FeatureValue::Int(_) => "int",
            FeatureValue::Float(_) => "float",
            FeatureValue::Bool(_) => "bool",
            FeatureValue::Timestamp(_) => "timestamp",
        }
    }
}

impl fmt::Display for FeatureValue {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            FeatureValue::Str(s) => write!(f, "{s:?}"),
            FeatureValue::Int(i) => write!(f, "{i}"),
            FeatureValue::Float(x) => write!(f, "{x}"),
            FeatureValue::Bool(b) => write!(f, "{b}"),
            FeatureValue::Timestamp(t) => write!(f, "@{t}"),
        }
    }
}

impl From<&str> for FeatureValue {
    fn from(s: &str) -> Self {
        FeatureValue::Str(s.to_owned())
    }
}

impl From<String> for FeatureValue {
    fn from(s: String) -> Self {
        FeatureValue::Str(s)
    }
}

impl From<i64> for FeatureValue {
    fn from(i: i64) -> Self {
        FeatureValue::Int(i)
    }
}

impl From<f64> for FeatureValue {
    fn from(x: f64) -> Self {
        FeatureValue::Float(x)
    }
}

impl From<bool> for FeatureValue {
    fn from(b: bool) -> Self {
        FeatureValue::Bool(b)
    }
}

/// An ordered attribute → value map.
///
/// A `BTreeMap` keeps iteration deterministic, which matters for the wire
/// codec, for snapshot tests, and for reproducible examples.
#[derive(Debug, Clone, Default, PartialEq)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub struct Features {
    entries: BTreeMap<String, FeatureValue>,
}

impl Features {
    /// Creates an empty feature map.
    pub fn new() -> Self {
        Self::default()
    }

    /// Builder-style insertion.
    pub fn with(mut self, key: impl Into<String>, value: impl Into<FeatureValue>) -> Self {
        self.set(key, value);
        self
    }

    /// Inserts or replaces a feature.
    pub fn set(&mut self, key: impl Into<String>, value: impl Into<FeatureValue>) {
        self.entries.insert(key.into(), value.into());
    }

    /// Looks up a feature by attribute name.
    pub fn get(&self, key: &str) -> Option<&FeatureValue> {
        self.entries.get(key)
    }

    /// Removes a feature, returning its previous value.
    pub fn remove(&mut self, key: &str) -> Option<FeatureValue> {
        self.entries.remove(key)
    }

    /// Number of features.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// `true` when no features are present (a `<null>` surrogate).
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// Iterates `(attribute, value)` pairs in attribute order.
    pub fn iter(&self) -> impl Iterator<Item = (&str, &FeatureValue)> {
        self.entries.iter().map(|(k, v)| (k.as_str(), v))
    }

    /// Fraction of `original`'s features that `self` preserves verbatim.
    ///
    /// This is the default `infoScore` heuristic of §4.1: a surrogate
    /// keeping `<name, "Joe">` but dropping `<phone, …>` scores 0.5 against
    /// a two-feature original. An original scores 1 against itself; if the
    /// original has no features, any surrogate scores 1 (nothing lost).
    pub fn retention_against(&self, original: &Features) -> f64 {
        if original.is_empty() {
            return 1.0;
        }
        let kept = original
            .iter()
            .filter(|(k, v)| self.get(k) == Some(v))
            .count();
        kept as f64 / original.len() as f64
    }
}

impl<K: Into<String>, V: Into<FeatureValue>> FromIterator<(K, V)> for Features {
    fn from_iter<I: IntoIterator<Item = (K, V)>>(iter: I) -> Self {
        let mut features = Features::new();
        for (k, v) in iter {
            features.set(k, v);
        }
        features
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn builder_and_lookup() {
        let f = Features::new()
            .with("name", "Joe")
            .with("phone", "123-456-7890");
        assert_eq!(f.len(), 2);
        assert_eq!(f.get("name"), Some(&FeatureValue::Str("Joe".into())));
        assert_eq!(f.get("missing"), None);
    }

    #[test]
    fn set_replaces() {
        let mut f = Features::new().with("k", 1i64);
        f.set("k", 2i64);
        assert_eq!(f.get("k"), Some(&FeatureValue::Int(2)));
        assert_eq!(f.len(), 1);
    }

    #[test]
    fn equality_is_order_insensitive() {
        let a = Features::new().with("x", 1i64).with("y", 2i64);
        let b = Features::new().with("y", 2i64).with("x", 1i64);
        assert_eq!(a, b);
    }

    #[test]
    fn retention_matches_paper_example() {
        // §4.1: original has <phone, …> and <name, "Joe">; the surrogate
        // keeps only the name, so it is strictly less informative.
        let original = Features::new()
            .with("phone", "123-456-7890")
            .with("name", "Joe");
        let surrogate = Features::new().with("name", "Joe");
        assert_eq!(surrogate.retention_against(&original), 0.5);
        assert_eq!(original.retention_against(&original), 1.0);
        assert_eq!(Features::new().retention_against(&original), 0.0);
    }

    #[test]
    fn retention_counts_changed_values_as_lost() {
        let original = Features::new().with("substance", "heroin");
        let surrogate = Features::new().with("substance", "illegal substance");
        assert_eq!(surrogate.retention_against(&original), 0.0);
    }

    #[test]
    fn retention_against_empty_original_is_one() {
        let original = Features::new();
        let surrogate = Features::new().with("extra", 1i64);
        assert_eq!(surrogate.retention_against(&original), 1.0);
    }

    #[test]
    fn display_forms() {
        assert_eq!(FeatureValue::Str("a".into()).to_string(), "\"a\"");
        assert_eq!(FeatureValue::Int(3).to_string(), "3");
        assert_eq!(FeatureValue::Bool(true).to_string(), "true");
        assert_eq!(FeatureValue::Timestamp(9).to_string(), "@9");
        assert_eq!(FeatureValue::Float(1.5).to_string(), "1.5");
    }

    #[test]
    fn from_iterator_collects() {
        let f: Features = vec![("a", 1i64), ("b", 2i64)].into_iter().collect();
        assert_eq!(f.len(), 2);
    }

    #[test]
    fn type_names() {
        assert_eq!(FeatureValue::from("x").type_name(), "str");
        assert_eq!(FeatureValue::from(1i64).type_name(), "int");
        assert_eq!(FeatureValue::from(1.0f64).type_name(), "float");
        assert_eq!(FeatureValue::from(true).type_name(), "bool");
        assert_eq!(FeatureValue::Timestamp(0).type_name(), "timestamp");
    }
}
