//! # surrogate-core
//!
//! A Rust implementation of *Surrogate Parenthood: Protected and
//! Informative Graphs* (Blaustein, Chapman, Seligman, Allen, Rosenthal —
//! PVLDB 4(8), 2011).
//!
//! Graph-structured data — provenance, social networks, computer
//! networks — often contains *selectively* sensitive nodes and edges.
//! Simply hiding them breaks the path-traversal queries these applications
//! live on. This crate implements the paper's remedy:
//!
//! * **surrogate nodes** — less sensitive stand-ins for protected nodes
//!   ([`surrogate`]);
//! * **surrogate edges** — edges summarizing HW-permitted paths through
//!   hidden regions ([`account`]);
//! * **protected accounts** — per-privilege views that are provably
//!   *maximally informative* (paper Def. 9 / Theorem 1);
//! * **utility and opacity measures** to compare protection strategies
//!   ([`measures`]).
//!
//! ## Quick start
//!
//! ```
//! use surrogate_core::prelude::*;
//!
//! // 1. Privileges: Public ⊑ Trusted.
//! let mut lattice = PrivilegeLattice::builder();
//! let public = lattice.add("Public").unwrap();
//! let trusted = lattice.add("Trusted").unwrap();
//! lattice.declare_dominates(trusted, public);
//! let lattice = lattice.finish().unwrap();
//!
//! // 2. A graph with one sensitive link in the middle.
//! let mut graph = Graph::new();
//! let src = graph.add_node("informant", trusted);
//! let a = graph.add_node("analyst", public);
//! let b = graph.add_node("report", public);
//! graph.add_edge(src, a).unwrap();
//! graph.add_edge(a, b).unwrap();
//!
//! // 3. Protect: the informant's role is surrogate-marked, and a coarse
//! //    surrogate node is registered for public consumption.
//! let mut markings = MarkingStore::new();
//! markings.set_node(src, public, Marking::Surrogate);
//! let mut catalog = SurrogateCatalog::new();
//! catalog.add(src, SurrogateDef {
//!     label: "a trusted source".into(),
//!     features: Features::new(),
//!     lowest: public,
//!     info_score: 0.3,
//! });
//!
//! let ctx = ProtectionContext::new(&graph, &lattice, &markings, &catalog);
//! let account = ctx.protect(public, Strategy::Surrogate).unwrap();
//!
//! // The public account keeps the analyst→report path and shows the
//! // surrogate instead of the informant.
//! assert_eq!(account.graph().node_count(), 3);
//! assert!(path_utility(&graph, &account) > 0.0);
//! ```
//!
//! ## Paper → module map
//!
//! | Paper | Module |
//! |---|---|
//! | §2 graph model | [`graph`], [`feature`] |
//! | §2 privilege-predicates (Defs. 1–3) | [`privilege`], [`credential`] |
//! | §3.1 surrogate nodes | [`surrogate`] |
//! | §3.1 high-water sets (Def. 6) | [`hw`] |
//! | §3.2 edge markings (Def. 7) | [`marking`] |
//! | §5 + Appendix B generation (Defs. 8–9) | [`account`] |
//! | §6 protection strategies as a plug-in point | [`strategy`] |
//! | §4 utility & opacity measures | [`measures`] |
//! | §1 path-traversal queries | [`query`] |
//! | Lemmas 1–2 / Theorem 1 as checks | [`validate`] |

#![warn(missing_docs)]
#![warn(rust_2018_idioms)]
#![forbid(unsafe_code)]

pub mod account;
pub mod credential;
pub mod dot;
pub mod error;
pub mod feature;
pub mod graph;
pub mod hw;
pub mod marking;
pub mod measures;
pub mod privilege;
pub mod query;
pub mod shard;
pub mod strategy;
pub mod surrogate;
pub mod util;
pub mod validate;

/// Convenience re-exports of the most used types.
pub mod prelude {
    // The deprecated single-predicate generators stay re-exported so old
    // call sites keep compiling (they see the deprecation note at their
    // own use site).
    #[allow(deprecated)]
    pub use crate::account::{generate, generate_hide, generate_naive_node_hide};
    pub use crate::account::{
        generate_for_set, generate_hide_for_set, generate_naive_node_hide_for_set,
        generate_with_options, Correspondence, GenerateOptions, ProtectedAccount,
        ProtectionContext, Strategy,
    };
    pub use crate::credential::Consumer;
    pub use crate::dot::{account_to_dot, graph_to_dot};
    pub use crate::error::{Error, Result};
    pub use crate::feature::{FeatureValue, Features};
    pub use crate::graph::{Csr, Edge, Graph, Node, NodeId};
    pub use crate::hw::{high_water_set, is_high_water_set};
    pub use crate::marking::{Marking, MarkingStore};
    pub use crate::measures::{
        average_protected_opacity, edge_opacity, edges_at_risk, min_protected_opacity,
        node_utility, path_percentages, path_utility, risk_report, OpacityEvaluator, OpacityModel,
        RiskEntry,
    };
    pub use crate::privilege::{PrivilegeId, PrivilegeLattice};
    pub use crate::query::{
        ancestors, descendants, reaches, shortest_path, traverse, Direction, Traversal,
    };
    pub use crate::shard::{Partition, ShardMap};
    pub use crate::strategy::ProtectionStrategy;
    pub use crate::surrogate::{SurrogateCatalog, SurrogateDef};
}
