//! The Opacity Measure (paper §4.2, Figs. 4–5).
//!
//! Opacity quantifies the difficulty an advanced attacker faces when
//! inferring a hidden original edge `e = (n1 → n2)` from the protected
//! account alone:
//!
//! * `Op(e) = 0` when the corresponding edge is present in `G'`;
//! * `Op(e) = 1` when either endpoint has no corresponding node;
//! * otherwise `Op(e) = 1 − L`, where `L` combines, per endpoint, a *focus
//!   probability* `FP` (how likely the attacker is to scrutinize that
//!   node — e.g. a "loner" with ≤1 connection) with a normalized *inference
//!   likelihood* `IE / Σ_m IE` (how likely the specific partner is among
//!   all candidates).
//!
//! The PDF extraction of Fig. 4 garbles `L`'s exact form, so the model is
//! parameterized ([`OpacityModel`]) and calibrated against Table 1
//! (DESIGN.md §3.1 item 2). The default uses **directional** inference
//! keying — an attacker focused on `u` is likelier to infer `u→v` when `v`
//! has no incoming edge, and symmetrically for out-edges — with the two
//! endpoint terms averaged and **raw** (unnormalized) inference
//! likelihoods. This reproduces Table 1's ordering exactly
//! (0 < (c) < (d) < 1): adding the surrogate edge `c→g` *raises* the
//! opacity of `f→g` because `g`'s ancestry is explained away. With raw
//! likelihoods the §6.3 headline is a theorem: a surrogate account's graph
//! is an edge-superset of the corresponding hide account's, so opacity
//! under surrogating is at least that under hiding, edge by edge. The
//! candidate-normalized variant
//! ([`OpacityModel::directional_normalized`]) matches Table 1's absolute
//! values best and is reported alongside.

use crate::account::ProtectedAccount;
use crate::graph::{Edge, Graph};

/// A two-level step function, as in the paper's Fig. 5 constants
/// (`0.8 if attribute ≤ threshold, else 0.2`).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct StepFn {
    /// Attribute values at or below this score `at_or_below`.
    pub threshold: usize,
    /// Probability mass for suspicious (small-attribute) nodes.
    pub at_or_below: f64,
    /// Probability mass for unsuspicious nodes.
    pub above: f64,
}

impl StepFn {
    /// Evaluates the step.
    #[inline]
    pub fn eval(&self, attribute: usize) -> f64 {
        if attribute <= self.threshold {
            self.at_or_below
        } else {
            self.above
        }
    }
}

/// Which account-graph attribute the inference likelihood `IE` keys on.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum InferenceKeying {
    /// Forward term keys on the candidate's **in-degree**, backward term on
    /// the candidate's **out-degree**: a node with unexplained ancestry or
    /// progeny attracts edge inference. Default; see module docs.
    Directional,
    /// Both terms key on the candidate's total degree (the literal reading
    /// of Fig. 5's "degree ≤ 1").
    TargetDegree,
    /// Both terms key on the candidate's undirected connected-node count.
    TargetConnected,
}

/// How the two endpoint terms `t1 = FP(n1')·q1` and `t2 = FP(n2')·q2`
/// combine into `L` (the OCR of Fig. 4 loses the operator).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Combiner {
    /// `L = (t1 + t2) / 2`. Default: closest fit to Table 1.
    Mean,
    /// `L = t1 + t2`.
    Sum,
    /// `L = FP(n1')·FP(n2')·(q1 + q2)`.
    FpProduct,
    /// `L = t1 · t2`.
    Product,
}

/// Parameterized opacity model.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct OpacityModel {
    /// Focus probability over a node's undirected connected-node count
    /// (Fig. 5: 0.8 for "loners" with 0–1 connected nodes, else 0.2).
    pub focus: StepFn,
    /// Inference likelihood step over the keyed attribute.
    pub infer: StepFn,
    /// Attribute selection for `IE`.
    pub keying: InferenceKeying,
    /// Combination of the endpoint terms.
    pub combiner: Combiner,
    /// Whether `IE` is normalized over all candidate partners
    /// (`IE / Σ_m IE`, the literal Fig. 4 reading) or used raw.
    ///
    /// Normalization dilutes the inference mass by the candidate count, so
    /// on the paper's 200-node synthetic graphs every opacity approaches 1
    /// and strategy differences vanish; the raw form is scale-free and
    /// makes "surrogating never lowers opacity" provable (the surrogate
    /// account's graph is a strict edge-superset of the hide account's, so
    /// every focus/inference factor weakly decreases). The default is raw;
    /// the normalized variant reproduces Table 1's absolute values best.
    pub normalized: bool,
}

impl Default for OpacityModel {
    fn default() -> Self {
        Self::directional()
    }
}

impl OpacityModel {
    /// The default model: directional keying with threshold 0 (a node with
    /// *no* in-edges invites in-edge inference), Fig. 5's 0.8/0.2 masses,
    /// endpoint terms averaged, raw (unnormalized) inference likelihoods.
    pub fn directional() -> Self {
        Self {
            focus: StepFn {
                threshold: 1,
                at_or_below: 0.8,
                above: 0.2,
            },
            infer: StepFn {
                threshold: 0,
                at_or_below: 0.8,
                above: 0.2,
            },
            keying: InferenceKeying::Directional,
            combiner: Combiner::Mean,
            normalized: false,
        }
    }

    /// [`directional`](Self::directional) with candidate-normalized `IE` —
    /// the literal Fig. 4 denominator. Closest fit to Table 1's absolute
    /// opacity values (≈ .85/.93 vs the paper's .882/.948).
    pub fn directional_normalized() -> Self {
        Self {
            normalized: true,
            ..Self::directional()
        }
    }

    /// The literal Fig. 5 reading: `IE = 0.8 if degree ≤ 1 else 0.2` on the
    /// candidate's total degree, normalized, endpoint terms summed.
    pub fn figure5_literal() -> Self {
        Self {
            focus: StepFn {
                threshold: 1,
                at_or_below: 0.8,
                above: 0.2,
            },
            infer: StepFn {
                threshold: 1,
                at_or_below: 0.8,
                above: 0.2,
            },
            keying: InferenceKeying::TargetDegree,
            combiner: Combiner::Sum,
            normalized: true,
        }
    }

    /// Normalized directional terms combined as `FP·FP·(q1+q2)`; reported
    /// alongside the other variants in EXPERIMENTS.md.
    pub fn fp_product() -> Self {
        Self {
            combiner: Combiner::FpProduct,
            ..Self::directional_normalized()
        }
    }
}

/// Precomputed account statistics for evaluating many edges cheaply.
///
/// Per-edge evaluation is `O(1)`: the `Σ_m IE` denominators are maintained
/// as totals minus the focus node's own contribution.
pub struct OpacityEvaluator<'a> {
    account: &'a ProtectedAccount,
    model: OpacityModel,
    connected: Vec<usize>,
    ie_fwd: Vec<f64>,
    ie_bwd: Vec<f64>,
    total_fwd: f64,
    total_bwd: f64,
}

impl<'a> OpacityEvaluator<'a> {
    /// Prepares an evaluator for the given account and model.
    pub fn new(account: &'a ProtectedAccount, model: OpacityModel) -> Self {
        let g = account.graph();
        let connected = g.connected_counts();
        let attr_fwd = |i: usize| match model.keying {
            InferenceKeying::Directional => g.in_degree(crate::graph::NodeId(i as u32)),
            InferenceKeying::TargetDegree => g.degree(crate::graph::NodeId(i as u32)),
            InferenceKeying::TargetConnected => connected[i],
        };
        let attr_bwd = |i: usize| match model.keying {
            InferenceKeying::Directional => g.out_degree(crate::graph::NodeId(i as u32)),
            InferenceKeying::TargetDegree => g.degree(crate::graph::NodeId(i as u32)),
            InferenceKeying::TargetConnected => connected[i],
        };
        let ie_fwd: Vec<f64> = (0..g.node_count())
            .map(|i| model.infer.eval(attr_fwd(i)))
            .collect();
        let ie_bwd: Vec<f64> = (0..g.node_count())
            .map(|i| model.infer.eval(attr_bwd(i)))
            .collect();
        let total_fwd = ie_fwd.iter().sum();
        let total_bwd = ie_bwd.iter().sum();
        Self {
            account,
            model,
            connected,
            ie_fwd,
            ie_bwd,
            total_fwd,
            total_bwd,
        }
    }

    /// Opacity of original edge `(n1 → n2)` per Fig. 4.
    pub fn edge_opacity(&self, edge: Edge) -> f64 {
        if self.account.original_edge_present(edge) {
            return 0.0;
        }
        let (u, v) = (
            self.account.account_node(edge.0),
            self.account.account_node(edge.1),
        );
        let (Some(u), Some(v)) = (u, v) else {
            return 1.0;
        };

        // Focus probabilities from connected-node counts (Fig. 5).
        let fp_u = self.model.focus.eval(self.connected[u.index()]);
        let fp_v = self.model.focus.eval(self.connected[v.index()]);

        // Inference likelihood of the specific partner — raw, or (when the
        // model normalizes) its mass among all candidates the focused node
        // could be paired with.
        let (q_fwd, q_bwd) = if self.model.normalized {
            let denom_fwd = self.total_fwd - self.ie_fwd[u.index()];
            let q_fwd = if denom_fwd > 0.0 {
                self.ie_fwd[v.index()] / denom_fwd
            } else {
                0.0
            };
            let denom_bwd = self.total_bwd - self.ie_bwd[v.index()];
            let q_bwd = if denom_bwd > 0.0 {
                self.ie_bwd[u.index()] / denom_bwd
            } else {
                0.0
            };
            (q_fwd, q_bwd)
        } else {
            (self.ie_fwd[v.index()], self.ie_bwd[u.index()])
        };

        let t1 = fp_u * q_fwd;
        let t2 = fp_v * q_bwd;
        let likelihood = match self.model.combiner {
            Combiner::Mean => (t1 + t2) / 2.0,
            Combiner::Sum => t1 + t2,
            Combiner::FpProduct => fp_u * fp_v * (q_fwd + q_bwd),
            Combiner::Product => t1 * t2,
        };
        (1.0 - likelihood).clamp(0.0, 1.0)
    }
}

/// Opacity of a single original edge (convenience wrapper; for many edges
/// build an [`OpacityEvaluator`] once).
pub fn edge_opacity(account: &ProtectedAccount, model: OpacityModel, edge: Edge) -> f64 {
    OpacityEvaluator::new(account, model).edge_opacity(edge)
}

/// Average opacity over the *protected* edges of `G` — those with no
/// corresponding account edge. `None` when nothing is protected.
///
/// §4.2: "the average opacity over the entire graph can be used to evaluate
/// tradeoffs"; restricting to protected edges keeps the hide-vs-surrogate
/// comparison meaningful (shown edges score a constant 0 for both).
pub fn average_protected_opacity(
    original: &Graph,
    account: &ProtectedAccount,
    model: OpacityModel,
) -> Option<f64> {
    let evaluator = OpacityEvaluator::new(account, model);
    let mut sum = 0.0;
    let mut count = 0usize;
    for e in account.protected_edges(original) {
        sum += evaluator.edge_opacity(e);
        count += 1;
    }
    (count > 0).then(|| sum / count as f64)
}

/// Minimum opacity over protected edges — the administrator's worst-case
/// inference risk (§4.2's per-node risk assessment). `None` when nothing is
/// protected.
pub fn min_protected_opacity(
    original: &Graph,
    account: &ProtectedAccount,
    model: OpacityModel,
) -> Option<f64> {
    let evaluator = OpacityEvaluator::new(account, model);
    account
        .protected_edges(original)
        .map(|e| evaluator.edge_opacity(e))
        .min_by(|a, b| a.partial_cmp(b).expect("opacities are finite"))
}

/// One protected edge's inference-risk entry.
#[derive(Debug, Clone, PartialEq)]
pub struct RiskEntry {
    /// The protected original edge.
    pub edge: Edge,
    /// Its opacity under the report's model.
    pub opacity: f64,
}

/// The administrator's risk report (§4.2: "opacity allows an administrator
/// to look at specific nodes and incident edges that are of high security
/// concern and to evaluate the risk of inference"): every protected edge of
/// `G`, most inferable (lowest opacity) first, ties broken by edge id for
/// determinism.
pub fn risk_report(
    original: &Graph,
    account: &ProtectedAccount,
    model: OpacityModel,
) -> Vec<RiskEntry> {
    let evaluator = OpacityEvaluator::new(account, model);
    let mut entries: Vec<RiskEntry> = account
        .protected_edges(original)
        .map(|edge| RiskEntry {
            edge,
            opacity: evaluator.edge_opacity(edge),
        })
        .collect();
    entries.sort_by(|a, b| {
        a.opacity
            .partial_cmp(&b.opacity)
            .expect("opacities are finite")
            .then(a.edge.cmp(&b.edge))
    });
    entries
}

/// The protected edges whose opacity falls below `threshold` — the ones an
/// administrator should re-protect (e.g. by registering better surrogates
/// or widening the surrogate-edge span) before release.
pub fn edges_at_risk(
    original: &Graph,
    account: &ProtectedAccount,
    model: OpacityModel,
    threshold: f64,
) -> Vec<RiskEntry> {
    risk_report(original, account, model)
        .into_iter()
        .take_while(|entry| entry.opacity < threshold)
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::account::{generate_for_set, generate_hide_for_set, ProtectionContext};
    use crate::graph::Graph;
    use crate::marking::{Marking, MarkingStore};
    use crate::privilege::PrivilegeLattice;
    use crate::surrogate::SurrogateCatalog;

    fn step(threshold: usize) -> StepFn {
        StepFn {
            threshold,
            at_or_below: 0.8,
            above: 0.2,
        }
    }

    #[test]
    fn step_function_evaluates() {
        let s = step(1);
        assert_eq!(s.eval(0), 0.8);
        assert_eq!(s.eval(1), 0.8);
        assert_eq!(s.eval(2), 0.2);
    }

    /// Chain a→b→c→d, protect (a,b) by hiding vs surrogating; compare the
    /// opacity of the protected edge.
    fn chain_accounts() -> (Graph, ProtectedAccount, ProtectedAccount) {
        let lattice = PrivilegeLattice::public_only();
        let public = lattice.public();
        let mut g = Graph::new();
        let a = g.add_node("a", public);
        let b = g.add_node("b", public);
        let c = g.add_node("c", public);
        let d = g.add_node("d", public);
        g.add_edge(a, b).unwrap();
        g.add_edge(b, c).unwrap();
        g.add_edge(c, d).unwrap();

        let mut sur = MarkingStore::new();
        sur.set(b, (a, b), public, Marking::Surrogate);
        let mut hide = MarkingStore::new();
        hide.set(b, (a, b), public, Marking::Hide);
        let catalog = SurrogateCatalog::new();

        let g2 = g.clone();
        let account_sur = {
            let ctx = ProtectionContext::new(&g2, &lattice, &sur, &catalog);
            generate_for_set(&ctx, &[public]).unwrap()
        };
        let account_hide = {
            let ctx = ProtectionContext::new(&g2, &lattice, &hide, &catalog);
            generate_hide_for_set(&ctx, &[public]).unwrap()
        };
        (g, account_sur, account_hide)
    }

    #[test]
    fn present_edge_scores_zero() {
        let (g, account, _) = chain_accounts();
        let eval = OpacityEvaluator::new(&account, OpacityModel::default());
        let b = g.find_by_label("b").unwrap();
        let c = g.find_by_label("c").unwrap();
        assert_eq!(eval.edge_opacity((b, c)), 0.0);
    }

    #[test]
    fn missing_endpoint_scores_one() {
        let (lattice, preds) = PrivilegeLattice::flat(&["High"]).unwrap();
        let mut g = Graph::new();
        let a = g.add_node("a", lattice.public());
        let b = g.add_node("b", preds[0]); // hidden for Public, no surrogate
        g.add_edge(a, b).unwrap();
        let markings = MarkingStore::new();
        let catalog = SurrogateCatalog::new();
        let ctx = ProtectionContext::new(&g, &lattice, &markings, &catalog);
        let account = generate_for_set(&ctx, &[lattice.public()]).unwrap();
        assert_eq!(edge_opacity(&account, OpacityModel::default(), (a, b)), 1.0);
    }

    #[test]
    fn surrogating_beats_hiding_on_a_chain() {
        // §6.2's headline: the surrogate edge reconnects `a`, lowering the
        // attacker's focus on it, so opacity of the hidden edge rises.
        let (g, sur, hide) = chain_accounts();
        let a = g.find_by_label("a").unwrap();
        let b = g.find_by_label("b").unwrap();
        for model in [
            OpacityModel::directional(),
            OpacityModel::directional_normalized(),
            OpacityModel::figure5_literal(),
            OpacityModel::fp_product(),
        ] {
            let op_sur = edge_opacity(&sur, model, (a, b));
            let op_hide = edge_opacity(&hide, model, (a, b));
            assert!(
                op_sur > op_hide,
                "{model:?}: surrogate {op_sur} ≤ hide {op_hide}"
            );
        }
    }

    #[test]
    fn opacity_is_bounded() {
        let (g, sur, hide) = chain_accounts();
        for account in [&sur, &hide] {
            let eval = OpacityEvaluator::new(account, OpacityModel::default());
            for e in g.edges() {
                let op = eval.edge_opacity(e);
                assert!((0.0..=1.0).contains(&op), "opacity {op} out of bounds");
            }
        }
    }

    #[test]
    fn average_and_min_over_protected_edges() {
        let (g, sur, _) = chain_accounts();
        let avg = average_protected_opacity(&g, &sur, OpacityModel::default()).unwrap();
        let min = min_protected_opacity(&g, &sur, OpacityModel::default()).unwrap();
        assert!(min <= avg);
        assert!((0.0..=1.0).contains(&avg));
    }

    #[test]
    fn fully_visible_account_has_no_protected_edges() {
        let lattice = PrivilegeLattice::public_only();
        let mut g = Graph::new();
        let a = g.add_node("a", lattice.public());
        let b = g.add_node("b", lattice.public());
        g.add_edge(a, b).unwrap();
        let markings = MarkingStore::new();
        let catalog = SurrogateCatalog::new();
        let ctx = ProtectionContext::new(&g, &lattice, &markings, &catalog);
        let account = generate_for_set(&ctx, &[lattice.public()]).unwrap();
        assert_eq!(
            average_protected_opacity(&g, &account, OpacityModel::default()),
            None
        );
        assert_eq!(
            min_protected_opacity(&g, &account, OpacityModel::default()),
            None
        );
    }

    #[test]
    fn risk_report_sorts_most_inferable_first() {
        let (g, sur, _) = chain_accounts();
        let report = risk_report(&g, &sur, OpacityModel::default());
        assert_eq!(report.len(), 1, "only the protected edge is listed");
        assert!(report.windows(2).all(|w| w[0].opacity <= w[1].opacity));
        let min = min_protected_opacity(&g, &sur, OpacityModel::default()).unwrap();
        assert_eq!(report[0].opacity, min);
    }

    #[test]
    fn edges_at_risk_filters_by_threshold() {
        let (g, _, hide) = chain_accounts();
        let all = risk_report(&g, &hide, OpacityModel::default());
        let worst = all[0].opacity;
        let risky = edges_at_risk(&g, &hide, OpacityModel::default(), worst + 1e-9);
        assert!(!risky.is_empty());
        assert!(risky.iter().all(|e| e.opacity < worst + 1e-9));
        let none = edges_at_risk(&g, &hide, OpacityModel::default(), 0.0);
        assert!(none.is_empty());
    }

    #[test]
    fn risk_report_is_deterministic() {
        let (g, sur, _) = chain_accounts();
        let a = risk_report(&g, &sur, OpacityModel::default());
        let b = risk_report(&g, &sur, OpacityModel::default());
        assert_eq!(a, b);
    }

    #[test]
    fn combiners_order_consistently() {
        // Product ≤ Mean ≤ Sum for terms in [0,1], so opacity orders the
        // other way.
        let (g, sur, _) = chain_accounts();
        let a = g.find_by_label("a").unwrap();
        let b = g.find_by_label("b").unwrap();
        let op = |combiner| {
            edge_opacity(
                &sur,
                OpacityModel {
                    combiner,
                    ..OpacityModel::directional()
                },
                (a, b),
            )
        };
        assert!(op(Combiner::Sum) <= op(Combiner::Mean));
        assert!(op(Combiner::Mean) <= op(Combiner::Product));
    }
}
