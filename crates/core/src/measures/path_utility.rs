//! The Path Utility Measure (paper §4.1, Fig. 3a).
//!
//! For each node `n ∈ N`, the path percentage `%P(n)` is the number of
//! nodes connected (by a path of any length) to the corresponding `n'` in
//! `G'`, divided by the number of nodes connected to `n` in `G`. Nodes with
//! no corresponding node contribute 0. Path utility is the average of
//! `%P` over all of `G`'s nodes.
//!
//! Connectivity is **undirected** component membership: this reproduces the
//! paper's published values exactly — `%P(b') = 1/10`, `%P(h') = 3/10`,
//! PathUtility(naïve Fig. 1c) = .13, and Table 1's .38/.27/.13/.27 — where
//! directed reachability reproduces none of them (DESIGN.md §3.1 item 1).

use crate::account::ProtectedAccount;
use crate::graph::Graph;

/// Per-original-node path percentages `%P(n)`.
///
/// A node isolated in `G` (zero connections to retain) scores 1 when it has
/// a corresponding node and 0 otherwise.
pub fn path_percentages(original: &Graph, account: &ProtectedAccount) -> Vec<f64> {
    let base = original.connected_counts();
    let acct = account.graph().connected_counts();
    original
        .node_ids()
        .map(|n| match account.account_node(n) {
            None => 0.0,
            Some(n2) => {
                if base[n.index()] == 0 {
                    1.0
                } else {
                    acct[n2.index()] as f64 / base[n.index()] as f64
                }
            }
        })
        .collect()
}

/// The Path Utility Measure: `Σ %P(n) / |N|` (Fig. 3a). An empty original
/// graph scores 1 (nothing to lose).
pub fn path_utility(original: &Graph, account: &ProtectedAccount) -> f64 {
    if original.node_count() == 0 {
        return 1.0;
    }
    let percentages = path_percentages(original, account);
    percentages.iter().sum::<f64>() / original.node_count() as f64
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::account::{generate_for_set, generate_naive_node_hide_for_set, ProtectionContext};
    use crate::graph::Graph;
    use crate::marking::MarkingStore;
    use crate::privilege::PrivilegeLattice;
    use crate::surrogate::SurrogateCatalog;

    /// a → b → c with b sensitive; no surrogates; all markings Visible.
    fn chain_setup() -> (Graph, PrivilegeLattice) {
        let (lattice, preds) = PrivilegeLattice::flat(&["High"]).unwrap();
        let mut g = Graph::new();
        let a = g.add_node("a", lattice.public());
        let b = g.add_node("b", preds[0]);
        let c = g.add_node("c", lattice.public());
        g.add_edge(a, b).unwrap();
        g.add_edge(b, c).unwrap();
        (g, lattice)
    }

    #[test]
    fn identity_account_scores_one() {
        let (g, lattice) = chain_setup();
        let markings = MarkingStore::new();
        let catalog = SurrogateCatalog::new();
        let ctx = ProtectionContext::new(&g, &lattice, &markings, &catalog);
        let high = lattice.by_name("High").unwrap();
        let account = generate_for_set(&ctx, &[high]).unwrap();
        assert_eq!(path_utility(&g, &account), 1.0);
    }

    #[test]
    fn naive_hiding_loses_paths() {
        let (g, lattice) = chain_setup();
        let markings = MarkingStore::new();
        let catalog = SurrogateCatalog::new();
        let ctx = ProtectionContext::new(&g, &lattice, &markings, &catalog);
        let account = generate_naive_node_hide_for_set(&ctx, &[lattice.public()]).unwrap();
        // a and c survive but are disconnected: %P = 0/2 each; b scores 0.
        assert_eq!(path_utility(&g, &account), 0.0);
        assert_eq!(path_percentages(&g, &account), vec![0.0, 0.0, 0.0]);
    }

    #[test]
    fn surrogate_edge_restores_paths() {
        let (g, lattice) = chain_setup();
        let markings = MarkingStore::new(); // Visible incidences: b passes through
        let catalog = SurrogateCatalog::new();
        let ctx = ProtectionContext::new(&g, &lattice, &markings, &catalog);
        let account = generate_for_set(&ctx, &[lattice.public()]).unwrap();
        // a→c surrogate edge: a and c each keep 1 of 2 connections; b hidden.
        let got = path_utility(&g, &account);
        assert!((got - (0.5 + 0.5 + 0.0) / 3.0).abs() < 1e-12, "got {got}");
    }

    #[test]
    fn isolated_original_node_scores_one_when_present() {
        let (lattice, _) = PrivilegeLattice::flat(&[]).unwrap();
        let mut g = Graph::new();
        let _lone = g.add_node("lone", lattice.public());
        let markings = MarkingStore::new();
        let catalog = SurrogateCatalog::new();
        let ctx = ProtectionContext::new(&g, &lattice, &markings, &catalog);
        let account = generate_for_set(&ctx, &[lattice.public()]).unwrap();
        assert_eq!(path_utility(&g, &account), 1.0);
    }

    #[test]
    fn empty_graph_scores_one() {
        let (lattice, _) = PrivilegeLattice::flat(&[]).unwrap();
        let g = Graph::new();
        let markings = MarkingStore::new();
        let catalog = SurrogateCatalog::new();
        let ctx = ProtectionContext::new(&g, &lattice, &markings, &catalog);
        let account = generate_for_set(&ctx, &[lattice.public()]).unwrap();
        assert_eq!(path_utility(&g, &account), 1.0);
    }
}
