//! Utility and opacity measures for comparing protected accounts (paper §4).

pub mod node_utility;
pub mod opacity;
pub mod path_utility;

pub use node_utility::node_utility;
pub use opacity::{
    average_protected_opacity, edge_opacity, edges_at_risk, min_protected_opacity, risk_report,
    Combiner, InferenceKeying, OpacityEvaluator, OpacityModel, RiskEntry, StepFn,
};
pub use path_utility::{path_percentages, path_utility};
