//! The Node Utility Measure (paper §4.1, Fig. 3c).
//!
//! `NodeUtility(G') = Σ_{n' ∈ N'} infoScore(n') / |N|`: the average
//! closeness of account nodes to their originals, with hidden nodes
//! contributing 0. Original nodes score 1; surrogates carry the catalog's
//! `infoScore`. Under the all-or-nothing baseline every present node scores
//! 1, so node utility degenerates to `|N'| / |N|` — the paper's 6/11 for
//! the naïve account of Fig. 1.

use crate::account::ProtectedAccount;
use crate::graph::Graph;

/// The Node Utility Measure (Fig. 3c). An empty original graph scores 1.
pub fn node_utility(original: &Graph, account: &ProtectedAccount) -> f64 {
    if original.node_count() == 0 {
        return 1.0;
    }
    let total: f64 = account
        .graph()
        .node_ids()
        .map(|n2| account.correspondence(n2).info_score())
        .sum();
    total / original.node_count() as f64
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::account::{generate_for_set, generate_naive_node_hide_for_set, ProtectionContext};
    use crate::feature::Features;
    use crate::graph::Graph;
    use crate::marking::MarkingStore;
    use crate::privilege::PrivilegeLattice;
    use crate::surrogate::{SurrogateCatalog, SurrogateDef};

    #[test]
    fn all_or_nothing_is_present_fraction() {
        let (lattice, preds) = PrivilegeLattice::flat(&["High"]).unwrap();
        let mut g = Graph::new();
        g.add_node("pub1", lattice.public());
        g.add_node("pub2", lattice.public());
        g.add_node("secret", preds[0]);
        let markings = MarkingStore::new();
        let catalog = SurrogateCatalog::new();
        let ctx = ProtectionContext::new(&g, &lattice, &markings, &catalog);
        let account = generate_naive_node_hide_for_set(&ctx, &[lattice.public()]).unwrap();
        assert!((node_utility(&g, &account) - 2.0 / 3.0).abs() < 1e-12);
    }

    #[test]
    fn surrogates_contribute_their_info_score() {
        let (lattice, preds) = PrivilegeLattice::flat(&["High"]).unwrap();
        let mut g = Graph::new();
        g.add_node("pub", lattice.public());
        let secret = g.add_node("secret", preds[0]);
        let markings = MarkingStore::new();
        let mut catalog = SurrogateCatalog::new();
        catalog.add(
            secret,
            SurrogateDef {
                label: "s'".into(),
                features: Features::new(),
                lowest: lattice.public(),
                info_score: 0.4,
            },
        );
        let ctx = ProtectionContext::new(&g, &lattice, &markings, &catalog);
        let account = generate_for_set(&ctx, &[lattice.public()]).unwrap();
        assert!((node_utility(&g, &account) - (1.0 + 0.4) / 2.0).abs() < 1e-12);
    }

    #[test]
    fn full_visibility_scores_one() {
        let (lattice, _) = PrivilegeLattice::flat(&[]).unwrap();
        let mut g = Graph::new();
        g.add_node("a", lattice.public());
        g.add_node("b", lattice.public());
        let markings = MarkingStore::new();
        let catalog = SurrogateCatalog::new();
        let ctx = ProtectionContext::new(&g, &lattice, &markings, &catalog);
        let account = generate_for_set(&ctx, &[lattice.public()]).unwrap();
        assert_eq!(node_utility(&g, &account), 1.0);
    }

    #[test]
    fn empty_graph_scores_one() {
        let (lattice, _) = PrivilegeLattice::flat(&[]).unwrap();
        let g = Graph::new();
        let markings = MarkingStore::new();
        let catalog = SurrogateCatalog::new();
        let ctx = ProtectionContext::new(&g, &lattice, &markings, &catalog);
        let account = generate_for_set(&ctx, &[lattice.public()]).unwrap();
        assert_eq!(node_utility(&g, &account), 1.0);
    }
}
