//! Keyspace partitioning for horizontally sharded stores.
//!
//! A sharded deployment splits the node-id space across `N` primaries.
//! The split is *arithmetic*, not tabular: shard `i` of `N` owns every
//! id congruent to `i` modulo `N`. Nothing is stored or looked up — a
//! [`ShardMap`] is just the modulus, and a [`Partition`] is the modulus
//! plus one residue class. Two consequences fall out of this choice:
//!
//! * **Routing is stateless.** Any client that knows `N` can compute
//!   the owner of any id without a directory service, and the map
//!   serializes to a pair of integers in snapshots and the Hello
//!   handshake.
//! * **Local storage stays dense.** A shard stores its residue class at
//!   *local* positions `0, 1, 2, …`; the bijection to global ids is
//!   `global = local * N + i` / `local = global / N`. Appending the
//!   `k`-th record on shard `i` therefore yields global id `k*N + i`
//!   with no coordination.
//!
//! ```
//! use surrogate_core::shard::{Partition, ShardMap};
//!
//! let map = ShardMap::new(4).unwrap();
//! assert_eq!(map.shard_of(10), 2);
//!
//! let p = Partition::new(2, 4).unwrap();
//! assert!(p.owns(10));
//! assert_eq!(p.local(10), 2); // 10 = 2*4 + 2
//! assert_eq!(p.global(2), 10);
//! ```

/// The number of shards a keyspace is split across. Shard `i` owns the
/// ids `{ g : g ≡ i (mod count) }`.
///
/// A `count` of 1 is the degenerate single-shard map — every id maps to
/// shard 0 and `global == local`.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct ShardMap {
    count: u32,
}

impl ShardMap {
    /// Creates a map over `count` shards. Returns `None` when `count`
    /// is zero (an empty cluster owns nothing).
    pub fn new(count: u32) -> Option<Self> {
        (count > 0).then_some(ShardMap { count })
    }

    /// The number of shards.
    pub fn count(&self) -> u32 {
        self.count
    }

    /// The shard that owns global id `id`.
    pub fn shard_of(&self, id: u32) -> u32 {
        id % self.count
    }

    /// The partition of shard `index` under this map, if `index` is in
    /// range.
    pub fn partition(&self, index: u32) -> Option<Partition> {
        Partition::new(index, self.count)
    }
}

/// One shard's slice of a [`ShardMap`]: shard `index` of `count`,
/// owning the ids congruent to `index` modulo `count`.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct Partition {
    index: u32,
    count: u32,
}

impl Partition {
    /// Creates the partition for shard `index` of `count`. Returns
    /// `None` unless `index < count`.
    pub fn new(index: u32, count: u32) -> Option<Self> {
        (index < count).then_some(Partition { index, count })
    }

    /// This shard's index.
    pub fn index(&self) -> u32 {
        self.index
    }

    /// The total shard count.
    pub fn count(&self) -> u32 {
        self.count
    }

    /// The whole-keyspace map this partition belongs to.
    pub fn map(&self) -> ShardMap {
        ShardMap { count: self.count }
    }

    /// Whether global id `id` belongs to this shard.
    pub fn owns(&self, id: u32) -> bool {
        id % self.count == self.index
    }

    /// The local (dense) position of global id `id` on this shard.
    ///
    /// Meaningful only when [`owns`](Self::owns) holds; for foreign ids
    /// the result is the position the id *would* have, which callers
    /// must not use as a storage index.
    pub fn local(&self, id: u32) -> u32 {
        id / self.count
    }

    /// The global id of the record at local position `pos` on this
    /// shard.
    ///
    /// Saturates at `u32::MAX` (an unreachable id) instead of wrapping
    /// when `pos * count + index` overflows, so a hostile local
    /// position can never alias a small global id.
    pub fn global(&self, pos: u32) -> u32 {
        pos.checked_mul(self.count)
            .and_then(|g| g.checked_add(self.index))
            .unwrap_or(u32::MAX)
    }

    /// The number of local records needed so that every owned global id
    /// `< bound` is materialized: the count of `{ g < bound : g ≡ index
    /// (mod count) }`.
    pub fn local_len(&self, bound: u32) -> u32 {
        // Owned ids below `bound` are index, index+count, … — there are
        // ceil((bound - index) / count) of them when bound > index.
        if bound > self.index {
            1 + (bound - self.index - 1) / self.count
        } else {
            0
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn zero_count_is_rejected() {
        assert!(ShardMap::new(0).is_none());
        assert!(Partition::new(0, 0).is_none());
        assert!(Partition::new(3, 3).is_none());
    }

    #[test]
    fn single_shard_is_identity() {
        let p = Partition::new(0, 1).unwrap();
        for id in [0u32, 1, 7, u32::MAX] {
            assert!(p.owns(id));
            assert_eq!(p.local(id), id);
        }
        assert_eq!(p.global(42), 42);
    }

    #[test]
    fn local_global_roundtrip() {
        let p = Partition::new(2, 5).unwrap();
        for pos in 0..100u32 {
            let g = p.global(pos);
            assert!(p.owns(g));
            assert_eq!(p.local(g), pos);
        }
    }

    #[test]
    fn global_saturates_instead_of_wrapping() {
        let p = Partition::new(1, 1 << 16).unwrap();
        assert_eq!(p.global(u32::MAX), u32::MAX);
    }

    #[test]
    fn local_len_counts_owned_ids() {
        let map = ShardMap::new(3).unwrap();
        for bound in 0..50u32 {
            for idx in 0..3u32 {
                let p = map.partition(idx).unwrap();
                let expect = (0..bound).filter(|&g| p.owns(g)).count() as u32;
                assert_eq!(p.local_len(bound), expect, "bound={bound} idx={idx}");
            }
        }
    }
}
