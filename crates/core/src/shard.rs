//! Keyspace partitioning for horizontally sharded stores.
//!
//! A sharded deployment splits the node-id space across `N` primaries.
//! The split is *arithmetic*, not tabular: shard `i` of `N` owns every
//! id congruent to `i` modulo `N`. Nothing is stored or looked up — a
//! [`ShardMap`] is just the modulus, and a [`Partition`] is the modulus
//! plus one residue class. Two consequences fall out of this choice:
//!
//! * **Routing is stateless.** Any client that knows `N` can compute
//!   the owner of any id without a directory service, and the map
//!   serializes to a pair of integers in snapshots and the Hello
//!   handshake.
//! * **Local storage stays dense.** A shard stores its residue class at
//!   *local* positions `0, 1, 2, …`; the bijection to global ids is
//!   `global = local * N + i` / `local = global / N`. Appending the
//!   `k`-th record on shard `i` therefore yields global id `k*N + i`
//!   with no coordination.
//!
//! ```
//! use surrogate_core::shard::{Partition, ShardMap};
//!
//! let map = ShardMap::new(4).unwrap();
//! assert_eq!(map.shard_of(10), 2);
//!
//! let p = Partition::new(2, 4).unwrap();
//! assert!(p.owns(10));
//! assert_eq!(p.local(10), 2); // 10 = 2*4 + 2
//! assert_eq!(p.global(2), 10);
//! ```

/// The number of shards a keyspace is split across. Shard `i` owns the
/// ids `{ g : g ≡ i (mod count) }`.
///
/// A `count` of 1 is the degenerate single-shard map — every id maps to
/// shard 0 and `global == local`.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct ShardMap {
    count: u32,
}

impl ShardMap {
    /// Creates a map over `count` shards. Returns `None` when `count`
    /// is zero (an empty cluster owns nothing).
    pub fn new(count: u32) -> Option<Self> {
        (count > 0).then_some(ShardMap { count })
    }

    /// The number of shards.
    pub fn count(&self) -> u32 {
        self.count
    }

    /// The shard that owns global id `id`.
    pub fn shard_of(&self, id: u32) -> u32 {
        id % self.count
    }

    /// The partition of shard `index` under this map, if `index` is in
    /// range.
    pub fn partition(&self, index: u32) -> Option<Partition> {
        Partition::new(index, self.count)
    }
}

/// One shard's slice of a [`ShardMap`]: shard `index` of `count`,
/// owning the ids congruent to `index` modulo `count`.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct Partition {
    index: u32,
    count: u32,
}

impl Partition {
    /// Creates the partition for shard `index` of `count`. Returns
    /// `None` unless `index < count`.
    pub fn new(index: u32, count: u32) -> Option<Self> {
        (index < count).then_some(Partition { index, count })
    }

    /// This shard's index.
    pub fn index(&self) -> u32 {
        self.index
    }

    /// The total shard count.
    pub fn count(&self) -> u32 {
        self.count
    }

    /// The whole-keyspace map this partition belongs to.
    pub fn map(&self) -> ShardMap {
        ShardMap { count: self.count }
    }

    /// Whether global id `id` belongs to this shard.
    pub fn owns(&self, id: u32) -> bool {
        id % self.count == self.index
    }

    /// The local (dense) position of global id `id` on this shard.
    ///
    /// Meaningful only when [`owns`](Self::owns) holds; for foreign ids
    /// the result is the position the id *would* have, which callers
    /// must not use as a storage index.
    pub fn local(&self, id: u32) -> u32 {
        id / self.count
    }

    /// The global id of the record at local position `pos` on this
    /// shard.
    ///
    /// Saturates at `u32::MAX` (an unreachable id) instead of wrapping
    /// when `pos * count + index` overflows, so a hostile local
    /// position can never alias a small global id.
    pub fn global(&self, pos: u32) -> u32 {
        pos.checked_mul(self.count)
            .and_then(|g| g.checked_add(self.index))
            .unwrap_or(u32::MAX)
    }

    /// The number of local records needed so that every owned global id
    /// `< bound` is materialized: the count of `{ g < bound : g ≡ index
    /// (mod count) }`.
    pub fn local_len(&self, bound: u32) -> u32 {
        // Owned ids below `bound` are index, index+count, … — there are
        // ceil((bound - index) / count) of them when bound > index.
        if bound > self.index {
            1 + (bound - self.index - 1) / self.count
        } else {
            0
        }
    }
}

/// A monotone per-shard epoch vector: each component may grow under
/// observation, never shrink.
///
/// This is the invariant a scatter-gather consumer relies on to detect
/// time travel: every answer from a sharded deployment carries the
/// per-shard clock vector it was computed at, and a correct serving
/// layer never hands out a vector any component of which is older than
/// one it already served. Folding each observed vector into an
/// `EpochVector` makes a violation a typed error instead of a silently
/// rewound read.
///
/// ```
/// use surrogate_core::shard::EpochVector;
///
/// let mut seen = EpochVector::new(2);
/// seen.observe(&[3, 5]).unwrap();
/// seen.observe(&[3, 7]).unwrap(); // growth is fine, per component
/// assert_eq!(seen.as_slice(), &[3, 7]);
/// assert_eq!(seen.sum(), 10);
/// assert!(seen.observe(&[2, 9]).is_err()); // slot 0 went backward
/// ```
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct EpochVector {
    epochs: Vec<u64>,
}

/// Why an [`EpochVector`] observation was rejected. The vector itself is
/// unchanged by a rejected observation.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum EpochVectorError {
    /// The observed vector had a different number of shards.
    LengthMismatch {
        /// Components tracked by the vector.
        expected: usize,
        /// Components in the rejected observation.
        observed: usize,
    },
    /// A component of the observed vector was below the tracked one.
    Regressed {
        /// The shard slot that went backward.
        slot: u32,
        /// The epoch already observed for that slot.
        tracked: u64,
        /// The lower epoch the rejected observation carried.
        observed: u64,
    },
}

impl std::fmt::Display for EpochVectorError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            EpochVectorError::LengthMismatch { expected, observed } => {
                write!(f, "epoch vector has {observed} slots, expected {expected}")
            }
            EpochVectorError::Regressed {
                slot,
                tracked,
                observed,
            } => write!(
                f,
                "epoch vector regressed at slot {slot}: {observed} after {tracked}"
            ),
        }
    }
}

impl std::error::Error for EpochVectorError {}

impl EpochVector {
    /// A vector of `count` slots, all at epoch 0.
    pub fn new(count: u32) -> Self {
        EpochVector {
            epochs: vec![0; count as usize],
        }
    }

    /// The number of shard slots tracked.
    pub fn len(&self) -> usize {
        self.epochs.len()
    }

    /// Whether the vector tracks no slots at all.
    pub fn is_empty(&self) -> bool {
        self.epochs.is_empty()
    }

    /// The tracked epochs, one per shard slot.
    pub fn as_slice(&self) -> &[u64] {
        &self.epochs
    }

    /// The scalar epoch: the sum of the per-slot epochs. Monotone
    /// because every slot is.
    pub fn sum(&self) -> u64 {
        self.epochs.iter().sum()
    }

    /// Whether every tracked component is at least the corresponding
    /// component of `other` (vectors of different lengths are never
    /// comparable).
    pub fn dominates(&self, other: &[u64]) -> bool {
        self.epochs.len() == other.len()
            && self
                .epochs
                .iter()
                .zip(other)
                .all(|(mine, theirs)| mine >= theirs)
    }

    /// Folds one observed vector in: every slot must be at least its
    /// tracked value, and afterwards the tracked vector equals the
    /// observation. Returns whether any slot actually advanced. On
    /// error nothing is folded in.
    pub fn observe(&mut self, observed: &[u64]) -> Result<bool, EpochVectorError> {
        if observed.len() != self.epochs.len() {
            return Err(EpochVectorError::LengthMismatch {
                expected: self.epochs.len(),
                observed: observed.len(),
            });
        }
        for (slot, (&tracked, &seen)) in self.epochs.iter().zip(observed).enumerate() {
            if seen < tracked {
                return Err(EpochVectorError::Regressed {
                    slot: slot as u32,
                    tracked,
                    observed: seen,
                });
            }
        }
        let advanced = self.epochs.iter().zip(observed).any(|(t, o)| o > t);
        self.epochs.copy_from_slice(observed);
        Ok(advanced)
    }

    /// Raises one slot to at least `epoch`, *ignoring* lower
    /// observations instead of rejecting them — the fold for a
    /// high-water mark over a source that may legitimately rewind (a
    /// repaired shard feed re-bootstrapping from a promoted primary).
    /// Returns whether the slot advanced; out-of-range slots are
    /// ignored.
    pub fn raise_slot(&mut self, slot: u32, epoch: u64) -> bool {
        match self.epochs.get_mut(slot as usize) {
            Some(tracked) if epoch > *tracked => {
                *tracked = epoch;
                true
            }
            _ => false,
        }
    }

    /// Folds one slot's observation in, requiring monotonicity exactly
    /// like [`observe`](Self::observe).
    pub fn observe_slot(&mut self, slot: u32, epoch: u64) -> Result<bool, EpochVectorError> {
        let tracked =
            self.epochs
                .get(slot as usize)
                .copied()
                .ok_or(EpochVectorError::LengthMismatch {
                    expected: self.epochs.len(),
                    observed: slot as usize + 1,
                })?;
        if epoch < tracked {
            return Err(EpochVectorError::Regressed {
                slot,
                tracked,
                observed: epoch,
            });
        }
        self.epochs[slot as usize] = epoch;
        Ok(epoch > tracked)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn zero_count_is_rejected() {
        assert!(ShardMap::new(0).is_none());
        assert!(Partition::new(0, 0).is_none());
        assert!(Partition::new(3, 3).is_none());
    }

    #[test]
    fn single_shard_is_identity() {
        let p = Partition::new(0, 1).unwrap();
        for id in [0u32, 1, 7, u32::MAX] {
            assert!(p.owns(id));
            assert_eq!(p.local(id), id);
        }
        assert_eq!(p.global(42), 42);
    }

    #[test]
    fn local_global_roundtrip() {
        let p = Partition::new(2, 5).unwrap();
        for pos in 0..100u32 {
            let g = p.global(pos);
            assert!(p.owns(g));
            assert_eq!(p.local(g), pos);
        }
    }

    #[test]
    fn global_saturates_instead_of_wrapping() {
        let p = Partition::new(1, 1 << 16).unwrap();
        assert_eq!(p.global(u32::MAX), u32::MAX);
    }

    #[test]
    fn epoch_vector_grows_and_rejects_regression() {
        let mut v = EpochVector::new(3);
        assert!(!v.observe(&[0, 0, 0]).unwrap(), "no-op advance");
        assert!(v.observe(&[1, 0, 4]).unwrap());
        assert_eq!(v.as_slice(), &[1, 0, 4]);
        assert_eq!(v.sum(), 5);
        assert!(v.dominates(&[1, 0, 3]));
        assert!(!v.dominates(&[2, 0, 0]));
        assert!(!v.dominates(&[1, 0]), "length mismatch never dominates");
        let err = v.observe(&[1, 0, 3]).unwrap_err();
        assert_eq!(
            err,
            EpochVectorError::Regressed {
                slot: 2,
                tracked: 4,
                observed: 3
            }
        );
        assert_eq!(v.as_slice(), &[1, 0, 4], "rejected observation not folded");
        assert!(matches!(
            v.observe(&[1, 0]).unwrap_err(),
            EpochVectorError::LengthMismatch { .. }
        ));
        assert!(v.observe_slot(1, 9).unwrap());
        assert!(v.observe_slot(1, 8).is_err());
        assert!(v.observe_slot(7, 1).is_err(), "out-of-range slot");
        assert_eq!(v.as_slice(), &[1, 9, 4]);
        assert!(!v.raise_slot(1, 3), "raise ignores a rewind");
        assert!(v.raise_slot(1, 12));
        assert!(!v.raise_slot(7, 1), "out-of-range raise is ignored");
        assert_eq!(v.as_slice(), &[1, 12, 4]);
    }

    #[test]
    fn local_len_counts_owned_ids() {
        let map = ShardMap::new(3).unwrap();
        for bound in 0..50u32 {
            for idx in 0..3u32 {
                let p = map.partition(idx).unwrap();
                let expect = (0..bound).filter(|&g| p.owns(g)).count() as u32;
                assert_eq!(p.local_len(bound), expect, "bound={bound} idx={idx}");
            }
        }
    }
}
