//! Pluggable protection strategies.
//!
//! The paper fixes three ways of turning a graph plus a protection policy
//! into a protected account (§5, §6): the surrogate algorithm, binary
//! show/hide edges, and naïve node hiding. A serving deployment wants to
//! experiment with more — different redundancy rules, coarser summaries,
//! workload-specific redactions — without forking `account.rs`. The
//! [`ProtectionStrategy`] trait is that extension point: anything that can
//! map a [`ProtectionContext`] and a high-water set to a
//! [`ProtectedAccount`] can be registered with a serving layer (see
//! `plus_store::AccountService`) and cached exactly like the built-ins.
//!
//! The closed [`Strategy`] enum remains as a thin `#[non_exhaustive]`
//! selector for serialization and CLI flags; it implements the trait by
//! dispatching to the three unit strategies below.
//!
//! # Migration from the free generation functions
//!
//! | old | new |
//! |---|---|
//! | `generate(&ctx, p)` | `Surrogate.protect(&ctx, &[p])` or `ctx.protect(p, Strategy::Surrogate)` |
//! | `generate_hide(&ctx, p)` | `HideEdges.protect(&ctx, &[p])` |
//! | `generate_naive_node_hide(&ctx, p)` | `HideNodes.protect(&ctx, &[p])` |
//!
//! # Writing a custom strategy
//!
//! ```
//! use surrogate_core::prelude::*;
//! use surrogate_core::strategy::ProtectionStrategy;
//!
//! /// The redundancy-filter ablation of DESIGN.md §3.1 as a strategy.
//! struct Unfiltered;
//!
//! impl ProtectionStrategy for Unfiltered {
//!     fn name(&self) -> &str {
//!         "unfiltered"
//!     }
//!     fn protect(
//!         &self,
//!         ctx: &ProtectionContext<'_>,
//!         preds: &[PrivilegeId],
//!     ) -> Result<ProtectedAccount> {
//!         generate_with_options(
//!             ctx,
//!             preds,
//!             GenerateOptions {
//!                 redundancy_filter: false,
//!             },
//!         )
//!     }
//! }
//!
//! let lattice = PrivilegeLattice::public_only();
//! let public = lattice.public();
//! let mut graph = Graph::new();
//! let a = graph.add_node("a", public);
//! let b = graph.add_node("b", public);
//! graph.add_edge(a, b).unwrap();
//! let markings = MarkingStore::new();
//! let catalog = SurrogateCatalog::new();
//! let ctx = ProtectionContext::new(&graph, &lattice, &markings, &catalog);
//! let account = Unfiltered.protect(&ctx, &[public]).unwrap();
//! assert_eq!(account.graph().node_count(), 2);
//! ```

use crate::account::{
    generate_for_set, generate_hide_for_set, generate_naive_node_hide_for_set, ProtectedAccount,
    ProtectionContext, Strategy,
};
use crate::error::Result;
use crate::privilege::PrivilegeId;

/// A way of producing a protected account from a protection context and a
/// high-water set of privilege-predicates.
///
/// Implementations must be deterministic for a given `(ctx, preds)` pair:
/// serving layers cache accounts by `(epoch, preds, name)` and assume a
/// cached account is interchangeable with a freshly generated one.
///
/// `Send + Sync` is required so a strategy can be shared across the
/// threads of a concurrent serving layer.
pub trait ProtectionStrategy: Send + Sync {
    /// A stable, unique name for this strategy.
    ///
    /// Used as the cache-key component and the registry key in serving
    /// layers, and for display. Two distinct strategies must not share a
    /// name.
    fn name(&self) -> &str;

    /// Generates the protected account for the high-water set `preds`.
    ///
    /// # Panics
    /// Implementations may panic when `preds` is empty, matching the
    /// built-in generators.
    fn protect(
        &self,
        ctx: &ProtectionContext<'_>,
        preds: &[PrivilegeId],
    ) -> Result<ProtectedAccount>;
}

/// The paper's Surrogate Generation Algorithm (Algorithms 1–3): surrogate
/// nodes plus surrogate edges, maximally informative (Theorem 1).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct Surrogate;

impl ProtectionStrategy for Surrogate {
    fn name(&self) -> &str {
        "surrogate"
    }

    fn protect(
        &self,
        ctx: &ProtectionContext<'_>,
        preds: &[PrivilegeId],
    ) -> Result<ProtectedAccount> {
        generate_for_set(ctx, preds)
    }
}

/// The "binary show/hide" edge baseline of §6: same node layer as
/// [`Surrogate`], but protected incidences drop their edges.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct HideEdges;

impl ProtectionStrategy for HideEdges {
    fn name(&self) -> &str {
        "hide"
    }

    fn protect(
        &self,
        ctx: &ProtectionContext<'_>,
        preds: &[PrivilegeId],
    ) -> Result<ProtectedAccount> {
        generate_hide_for_set(ctx, preds)
    }
}

/// The all-or-nothing baseline of Fig. 1(c): sensitive nodes and their
/// incident edges simply vanish.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct HideNodes;

impl ProtectionStrategy for HideNodes {
    fn name(&self) -> &str {
        "naive"
    }

    fn protect(
        &self,
        ctx: &ProtectionContext<'_>,
        preds: &[PrivilegeId],
    ) -> Result<ProtectedAccount> {
        generate_naive_node_hide_for_set(ctx, preds)
    }
}

/// The selector enum dispatches to the unit strategies, so APIs taking
/// `&dyn ProtectionStrategy` accept `&Strategy::Surrogate` directly.
impl ProtectionStrategy for Strategy {
    fn name(&self) -> &str {
        Strategy::name(*self)
    }

    fn protect(
        &self,
        ctx: &ProtectionContext<'_>,
        preds: &[PrivilegeId],
    ) -> Result<ProtectedAccount> {
        match self {
            Strategy::Surrogate => Surrogate.protect(ctx, preds),
            Strategy::HideEdges => HideEdges.protect(ctx, preds),
            Strategy::HideNodes => HideNodes.protect(ctx, preds),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::feature::Features;
    use crate::graph::Graph;
    use crate::marking::{Marking, MarkingStore};
    use crate::privilege::PrivilegeLattice;
    use crate::surrogate::{SurrogateCatalog, SurrogateDef};

    fn fixture() -> (
        Graph,
        PrivilegeLattice,
        MarkingStore,
        SurrogateCatalog,
        PrivilegeId,
    ) {
        let (lattice, preds) = PrivilegeLattice::flat(&["High"]).unwrap();
        let high = preds[0];
        let public = lattice.public();
        let mut graph = Graph::new();
        let a = graph.add_node("a", public);
        let b = graph.add_node("b", high);
        let c = graph.add_node("c", public);
        graph.add_edge(a, b).unwrap();
        graph.add_edge(b, c).unwrap();
        let mut markings = MarkingStore::new();
        markings.set_node(b, public, Marking::Surrogate);
        let mut catalog = SurrogateCatalog::new();
        catalog.add(
            b,
            SurrogateDef {
                label: "b'".into(),
                features: Features::new(),
                lowest: public,
                info_score: 0.4,
            },
        );
        (graph, lattice, markings, catalog, public)
    }

    #[test]
    fn unit_strategies_match_enum_dispatch() {
        let (graph, lattice, markings, catalog, public) = fixture();
        let ctx = ProtectionContext::new(&graph, &lattice, &markings, &catalog);
        for (unit, selector) in [
            (&Surrogate as &dyn ProtectionStrategy, Strategy::Surrogate),
            (&HideEdges, Strategy::HideEdges),
            (&HideNodes, Strategy::HideNodes),
        ] {
            let via_unit = unit.protect(&ctx, &[public]).unwrap();
            let via_enum = ProtectionStrategy::protect(&selector, &ctx, &[public]).unwrap();
            assert_eq!(via_unit.graph().node_count(), via_enum.graph().node_count());
            assert_eq!(via_unit.graph().edge_count(), via_enum.graph().edge_count());
            assert_eq!(unit.name(), ProtectionStrategy::name(&selector));
        }
    }

    #[test]
    fn names_are_distinct_and_parseable() {
        for &s in Strategy::ALL {
            assert_eq!(Strategy::parse(s.name()), Some(s));
        }
        assert_eq!(Strategy::parse("bogus"), None);
    }

    #[test]
    fn trait_objects_dispatch() {
        let (graph, lattice, markings, catalog, public) = fixture();
        let ctx = ProtectionContext::new(&graph, &lattice, &markings, &catalog);
        let strategies: Vec<Box<dyn ProtectionStrategy>> = vec![
            Box::new(Surrogate),
            Box::new(HideEdges),
            Box::new(HideNodes),
        ];
        let counts: Vec<usize> = strategies
            .iter()
            .map(|s| s.protect(&ctx, &[public]).unwrap().graph().edge_count())
            .collect();
        // Surrogate reconnects (1 edge), the baselines do not (0 edges).
        assert_eq!(counts, vec![1, 0, 0]);
    }
}
