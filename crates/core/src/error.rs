//! Error types for graph construction, lattice validation, and account
//! generation.

use std::fmt;

use crate::graph::NodeId;
use crate::privilege::PrivilegeId;

/// Errors raised while building or transforming graphs.
///
/// `#[non_exhaustive]`: service-layer growth (stale-epoch detection,
/// unknown-consumer rejection, …) may add variants without a breaking
/// change; downstream matches need a wildcard arm.
#[derive(Debug, Clone, PartialEq)]
#[non_exhaustive]
pub enum Error {
    /// A node id does not exist in the graph.
    UnknownNode(NodeId),
    /// An edge references a missing endpoint.
    UnknownEdgeEndpoint {
        /// Source endpoint of the offending edge.
        from: NodeId,
        /// Destination endpoint of the offending edge.
        to: NodeId,
    },
    /// The same directed edge was inserted twice.
    DuplicateEdge {
        /// Source endpoint of the duplicated edge.
        from: NodeId,
        /// Destination endpoint of the duplicated edge.
        to: NodeId,
    },
    /// Self-loops are not part of the paper's model.
    SelfLoop(NodeId),
    /// A privilege id does not exist in the lattice.
    UnknownPrivilege(PrivilegeId),
    /// Two privilege predicates were declared with the same name.
    DuplicatePrivilege(String),
    /// The dominance declarations contain a cycle, so they do not form a
    /// partial order.
    DominanceCycle,
    /// The lattice lacks a unique bottom "Public" predicate dominated by
    /// all others (assumed in paper §2).
    NoPublicBottom,
    /// A surrogate's lowest predicate dominates the original node's lowest
    /// predicate, violating §3.1 ("lowest(n') does not dominate lowest(n)").
    SurrogateTooPrivileged {
        /// The node the surrogate was registered for.
        node: NodeId,
        /// The surrogate's lowest predicate.
        surrogate_lowest: PrivilegeId,
        /// The original node's lowest predicate.
        node_lowest: PrivilegeId,
    },
    /// Surrogate info-scores are inconsistent with dominance (§4.1: if
    /// lowest(n') dominates lowest(n'') then infoScore(n') ≥ infoScore(n'')).
    InfoScoreNotMonotone {
        /// The node whose surrogate scores are inconsistent.
        node: NodeId,
    },
    /// An info-score fell outside `[0, 1]`.
    InfoScoreOutOfRange {
        /// The node the surrogate was registered for.
        node: NodeId,
        /// The offending score.
        score: f64,
    },
}

impl fmt::Display for Error {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Error::UnknownNode(n) => write!(f, "unknown node {n:?}"),
            Error::UnknownEdgeEndpoint { from, to } => {
                write!(f, "edge {from:?}->{to:?} references a missing node")
            }
            Error::DuplicateEdge { from, to } => {
                write!(f, "duplicate edge {from:?}->{to:?}")
            }
            Error::SelfLoop(n) => write!(f, "self-loop on node {n:?} is not supported"),
            Error::UnknownPrivilege(p) => write!(f, "unknown privilege {p:?}"),
            Error::DuplicatePrivilege(name) => {
                write!(f, "privilege predicate {name:?} declared twice")
            }
            Error::DominanceCycle => {
                write!(f, "privilege dominance declarations contain a cycle")
            }
            Error::NoPublicBottom => write!(
                f,
                "privilege lattice has no unique Public bottom dominated by all predicates"
            ),
            Error::SurrogateTooPrivileged {
                node,
                surrogate_lowest,
                node_lowest,
            } => write!(
                f,
                "surrogate for node {node:?} has lowest predicate {surrogate_lowest:?} which \
                 dominates the original's lowest {node_lowest:?}"
            ),
            Error::InfoScoreNotMonotone { node } => write!(
                f,
                "surrogate info-scores for node {node:?} are not monotone in dominance"
            ),
            Error::InfoScoreOutOfRange { node, score } => {
                write!(f, "info-score {score} for node {node:?} outside [0, 1]")
            }
        }
    }
}

impl std::error::Error for Error {}

/// Convenience result alias.
pub type Result<T> = std::result::Result<T, Error>;

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_is_informative() {
        let e = Error::DuplicateEdge {
            from: NodeId(1),
            to: NodeId(2),
        };
        let text = e.to_string();
        assert!(text.contains("duplicate edge"), "{text}");
    }

    #[test]
    fn implements_std_error() {
        fn takes_error(_: &dyn std::error::Error) {}
        takes_error(&Error::DominanceCycle);
    }
}
