//! Graphviz DOT export for graphs and protected accounts.
//!
//! Protected accounts render surrogate nodes as dashed boxes and surrogate
//! edges as dashed arrows, so a redacted view can be eyeballed next to the
//! original — the fastest way to review a release.

use std::fmt::Write as _;

use crate::account::{Correspondence, ProtectedAccount};
use crate::graph::Graph;

fn escape(label: &str) -> String {
    label.replace('\\', "\\\\").replace('"', "\\\"")
}

/// Renders a graph as a DOT digraph named `name`.
pub fn graph_to_dot(graph: &Graph, name: &str) -> String {
    let mut out = String::new();
    writeln!(out, "digraph \"{}\" {{", escape(name)).expect("string write");
    writeln!(out, "  rankdir=TB;").expect("string write");
    for n in graph.node_ids() {
        writeln!(
            out,
            "  n{} [label=\"{}\"];",
            n.0,
            escape(&graph.node(n).label)
        )
        .expect("string write");
    }
    for (a, b) in graph.edges() {
        writeln!(out, "  n{} -> n{};", a.0, b.0).expect("string write");
    }
    writeln!(out, "}}").expect("string write");
    out
}

/// Renders a protected account: surrogate nodes dashed, surrogate edges
/// dashed and annotated.
pub fn account_to_dot(account: &ProtectedAccount, name: &str) -> String {
    let graph = account.graph();
    let mut out = String::new();
    writeln!(out, "digraph \"{}\" {{", escape(name)).expect("string write");
    writeln!(out, "  rankdir=TB;").expect("string write");
    for n in graph.node_ids() {
        let label = escape(&graph.node(n).label);
        match account.correspondence(n) {
            Correspondence::Original => {
                writeln!(out, "  n{} [label=\"{label}\"];", n.0).expect("string write");
            }
            Correspondence::Surrogate { info_score } => {
                writeln!(
                    out,
                    "  n{} [label=\"{label}\\n(surrogate, info {info_score:.2})\" \
                     style=dashed shape=box];",
                    n.0
                )
                .expect("string write");
            }
        }
    }
    for (a, b) in graph.edges() {
        if account.is_surrogate_edge((a, b)) {
            writeln!(
                out,
                "  n{} -> n{} [style=dashed label=\"summarizes\"];",
                a.0, b.0
            )
            .expect("string write");
        } else {
            writeln!(out, "  n{} -> n{};", a.0, b.0).expect("string write");
        }
    }
    writeln!(out, "}}").expect("string write");
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::account::{generate_for_set, ProtectionContext};
    use crate::feature::Features;
    use crate::marking::{Marking, MarkingStore};
    use crate::privilege::PrivilegeLattice;
    use crate::surrogate::{SurrogateCatalog, SurrogateDef};

    #[test]
    fn graph_dot_contains_nodes_and_edges() {
        let lattice = PrivilegeLattice::public_only();
        let mut g = Graph::new();
        let a = g.add_node("alpha \"quoted\"", lattice.public());
        let b = g.add_node("beta", lattice.public());
        g.add_edge(a, b).unwrap();
        let dot = graph_to_dot(&g, "test");
        assert!(dot.starts_with("digraph \"test\" {"));
        assert!(dot.contains("n0 [label=\"alpha \\\"quoted\\\"\"];"));
        assert!(dot.contains("n0 -> n1;"));
        assert!(dot.trim_end().ends_with('}'));
    }

    #[test]
    fn account_dot_marks_surrogates() {
        let (lattice, preds) = PrivilegeLattice::flat(&["High"]).unwrap();
        let public = lattice.public();
        let mut g = Graph::new();
        let a = g.add_node("a", public);
        let b = g.add_node("b", preds[0]);
        let c = g.add_node("c", public);
        g.add_edge(a, b).unwrap();
        g.add_edge(b, c).unwrap();
        let mut markings = MarkingStore::new();
        markings.set_node(b, public, Marking::Surrogate);
        let mut catalog = SurrogateCatalog::new();
        catalog.add(
            b,
            SurrogateDef {
                label: "b'".into(),
                features: Features::new(),
                lowest: public,
                info_score: 0.5,
            },
        );
        let ctx = ProtectionContext::new(&g, &lattice, &markings, &catalog);
        let account = generate_for_set(&ctx, &[public]).unwrap();
        let dot = account_to_dot(&account, "protected");
        assert!(
            dot.contains("style=dashed shape=box"),
            "surrogate node styled"
        );
        assert!(
            dot.contains("[style=dashed label=\"summarizes\"]"),
            "surrogate edge styled"
        );
        assert!(dot.contains("(surrogate, info 0.50)"));
    }
}
