//! Executable statements of the paper's correctness properties, used by
//! unit, integration, and property tests.
//!
//! * **Soundness** (Def. 5): every account node corresponds to a unique
//!   original node, and every account edge maps to a directed path of `G`
//!   (hence every account path maps to an original path by concatenation).
//! * **Maximal node visibility** (Def. 9.1): originals appear whenever the
//!   predicate dominates their `lowest`.
//! * **Dominant surrogacy** (Def. 9.2): no strictly more dominant visible
//!   surrogate was skipped.
//! * **Maximal connectivity** (Def. 9.3): every HW-permitted pair of
//!   present nodes is connected in `G'`.

use crate::account::{permitted_pairs, Correspondence, ProtectedAccount, ProtectionContext};
use crate::graph::NodeId;
use crate::privilege::PrivilegeId;
use crate::query::reaches;
use crate::util::FxHashSet;

/// A violated property, with enough context to debug the failure.
#[derive(Debug, Clone, PartialEq)]
pub enum Violation {
    /// Two account nodes correspond to the same original (Def. 5).
    DuplicateCorrespondence {
        /// The original node with two corresponding account nodes.
        original: NodeId,
    },
    /// An account edge has no corresponding path of `G` (Def. 5), or leaks
    /// a pair forbidden by Def. 8 cond. 2.
    UnsoundEdge {
        /// Original node behind the edge's source.
        from: NodeId,
        /// Original node behind the edge's destination.
        to: NodeId,
    },
    /// A node visible via the predicate is missing or replaced (Def. 9.1).
    MissingVisibleNode {
        /// The node that should have appeared as itself.
        original: NodeId,
    },
    /// A more dominant visible surrogate exists than the one included
    /// (Def. 9.2).
    SubdominantSurrogate {
        /// The node whose surrogate choice was not dominant.
        original: NodeId,
    },
    /// An HW-permitted pair of present nodes is unconnected in `G'`
    /// (Def. 9.3).
    DisconnectedPermittedPair {
        /// Source of the permitted pair.
        from: NodeId,
        /// Destination of the permitted pair.
        to: NodeId,
    },
}

/// Checks Def. 5 soundness. Every surrogate or shown edge must map to an
/// HW-permitted pair (shown edges are length-1 permitted pairs), which is
/// also exactly the "no computed edge between Hide-marked pairs" rule.
pub fn check_soundness(ctx: &ProtectionContext<'_>, account: &ProtectedAccount) -> Vec<Violation> {
    let mut violations = Vec::new();

    // Unique correspondence.
    let mut seen: FxHashSet<NodeId> = FxHashSet::default();
    for n2 in account.graph().node_ids() {
        let original = account.original_node(n2);
        if !seen.insert(original) {
            violations.push(Violation::DuplicateCorrespondence { original });
        }
    }

    // Edge soundness: every account edge is a permitted pair of G.
    let present: Vec<bool> = ctx
        .graph
        .node_ids()
        .map(|n| account.account_node(n).is_some())
        .collect();
    let permitted = permitted_pairs(ctx, account.high_water(), &present);
    for (u2, v2) in account.graph().edges() {
        let u = account.original_node(u2);
        let v = account.original_node(v2);
        let ok = if account.is_surrogate_edge((u2, v2)) {
            permitted.contains(&(u, v))
        } else {
            // A shown edge must be an original edge marked Visible–Visible.
            ctx.graph.has_edge(u, v)
                && ctx
                    .markings
                    .edge_visible_for_set((u, v), account.high_water())
        };
        if !ok {
            violations.push(Violation::UnsoundEdge { from: u, to: v });
        }
    }
    violations
}

/// Checks Def. 9.1 (maximal node visibility) and Def. 9.2 (dominant
/// surrogacy) against the context's lattice and catalog.
pub fn check_node_layer(
    ctx: &ProtectionContext<'_>,
    account: &ProtectedAccount,
    preds: &[PrivilegeId],
) -> Vec<Violation> {
    let mut violations = Vec::new();
    for n in ctx.graph.node_ids() {
        let visible = ctx.lattice.set_dominates(preds, ctx.graph.node(n).lowest);
        match account.account_node(n) {
            Some(n2) => {
                let corr = account.correspondence(n2);
                if visible && !matches!(corr, Correspondence::Original) {
                    violations.push(Violation::MissingVisibleNode { original: n });
                }
                if !visible {
                    if let Correspondence::Surrogate { info_score } = corr {
                        let best = ctx
                            .catalog
                            .most_dominant_visible_for_set(ctx.lattice, n, preds);
                        if let Some(best) = best {
                            // The chosen surrogate's lowest must match the
                            // dominant choice (ties broken by info-score).
                            let chosen_lowest = account.graph().node(n2).lowest;
                            let dominated_strictly =
                                ctx.lattice.dominates(best.lowest, chosen_lowest)
                                    && best.lowest != chosen_lowest;
                            if dominated_strictly || best.info_score > *info_score {
                                violations.push(Violation::SubdominantSurrogate { original: n });
                            }
                        }
                    }
                }
            }
            None => {
                if visible {
                    violations.push(Violation::MissingVisibleNode { original: n });
                } else if ctx
                    .catalog
                    .most_dominant_visible_for_set(ctx.lattice, n, preds)
                    .is_some()
                {
                    // A visible surrogate existed but was not used.
                    violations.push(Violation::SubdominantSurrogate { original: n });
                }
            }
        }
    }
    violations
}

/// Checks Def. 9.3 (maximal connectivity): every HW-permitted pair of
/// present originals must be connected by a directed path in `G'`.
pub fn check_maximal_connectivity(
    ctx: &ProtectionContext<'_>,
    account: &ProtectedAccount,
) -> Vec<Violation> {
    let present: Vec<bool> = ctx
        .graph
        .node_ids()
        .map(|n| account.account_node(n).is_some())
        .collect();
    let mut violations = Vec::new();
    for (u, v) in permitted_pairs(ctx, account.high_water(), &present) {
        let u2 = account.account_node(u).expect("pair endpoints present");
        let v2 = account.account_node(v).expect("pair endpoints present");
        if !reaches(account.graph(), u2, v2) {
            violations.push(Violation::DisconnectedPermittedPair { from: u, to: v });
        }
    }
    violations
}

/// Runs every check appropriate to the account's strategy. Surrogate
/// accounts must satisfy all of Def. 9; baselines only soundness and the
/// node layer they promise.
pub fn check_all(ctx: &ProtectionContext<'_>, account: &ProtectedAccount) -> Vec<Violation> {
    let mut violations = check_soundness(ctx, account);
    match account.strategy() {
        crate::account::Strategy::Surrogate => {
            violations.extend(check_node_layer(ctx, account, account.high_water()));
            violations.extend(check_maximal_connectivity(ctx, account));
        }
        crate::account::Strategy::HideEdges => {
            violations.extend(check_node_layer(ctx, account, account.high_water()));
        }
        crate::account::Strategy::HideNodes => {}
    }
    violations
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::account::{
        generate_for_set, generate_hide_for_set, generate_naive_node_hide_for_set, Strategy,
    };
    use crate::feature::Features;
    use crate::graph::Graph;
    use crate::marking::{Marking, MarkingStore};
    use crate::privilege::PrivilegeLattice;
    use crate::surrogate::{SurrogateCatalog, SurrogateDef};

    fn fixture() -> (Graph, PrivilegeLattice, MarkingStore, SurrogateCatalog) {
        let (lattice, preds) = PrivilegeLattice::flat(&["High"]).unwrap();
        let high = preds[0];
        let public = lattice.public();
        let mut g = Graph::new();
        let a = g.add_node("a", public);
        let b = g.add_node("b", high);
        let c = g.add_node("c", public);
        let d = g.add_node("d", public);
        g.add_edge(a, b).unwrap();
        g.add_edge(b, c).unwrap();
        g.add_edge(c, d).unwrap();
        let mut markings = MarkingStore::new();
        markings.set_node(b, public, Marking::Surrogate);
        let mut catalog = SurrogateCatalog::new();
        catalog.add(
            b,
            SurrogateDef {
                label: "b'".into(),
                features: Features::new(),
                lowest: public,
                info_score: 0.5,
            },
        );
        (g, lattice, markings, catalog)
    }

    #[test]
    fn generated_accounts_pass_all_checks() {
        let (g, lattice, markings, catalog) = fixture();
        let ctx = ProtectionContext::new(&g, &lattice, &markings, &catalog);
        for strategy in [
            Strategy::Surrogate,
            Strategy::HideEdges,
            Strategy::HideNodes,
        ] {
            let account = ctx.protect(lattice.public(), strategy).unwrap();
            let violations = check_all(&ctx, &account);
            assert!(violations.is_empty(), "{strategy:?}: {violations:?}");
        }
    }

    #[test]
    fn hide_account_fails_connectivity_check() {
        // The hide baseline intentionally breaks maximal connectivity —
        // the checker must notice when applied directly.
        let (g, lattice, markings, catalog) = fixture();
        let ctx = ProtectionContext::new(&g, &lattice, &markings, &catalog);
        let account = generate_hide_for_set(&ctx, &[lattice.public()]).unwrap();
        let violations = check_maximal_connectivity(&ctx, &account);
        assert!(
            !violations.is_empty(),
            "a→c is permitted but unconnected under hiding"
        );
    }

    #[test]
    fn naive_account_misses_surrogate_nodes() {
        let (g, lattice, markings, catalog) = fixture();
        let ctx = ProtectionContext::new(&g, &lattice, &markings, &catalog);
        let account = generate_naive_node_hide_for_set(&ctx, &[lattice.public()]).unwrap();
        let violations = check_node_layer(&ctx, &account, &[lattice.public()]);
        assert!(violations
            .iter()
            .any(|v| matches!(v, Violation::SubdominantSurrogate { .. })));
    }

    #[test]
    fn surrogate_account_is_sound_and_connected() {
        let (g, lattice, markings, catalog) = fixture();
        let ctx = ProtectionContext::new(&g, &lattice, &markings, &catalog);
        let account = generate_for_set(&ctx, &[lattice.public()]).unwrap();
        assert!(check_soundness(&ctx, &account).is_empty());
        assert!(check_maximal_connectivity(&ctx, &account).is_empty());
    }
}
