//! High-water sets (paper Def. 6).
//!
//! The high-water set `HW(G)` is the antichain of lowest predicates needed
//! to see *all* nodes of `G`: no member dominates another, every node's
//! `lowest` is dominated by some member, and every member is the `lowest`
//! of some node. It both describes a graph's sensitivity and serves as the
//! target when generating protected accounts (§3.1).

use crate::graph::Graph;
use crate::privilege::{PrivilegeId, PrivilegeLattice};

/// Computes `HW(G)` per Def. 6.
///
/// Returns the maximal antichain of the nodes' `lowest` predicates, in
/// first-appearance order. The empty graph has an empty high-water set.
pub fn high_water_set(graph: &Graph, lattice: &PrivilegeLattice) -> Vec<PrivilegeId> {
    let lowests: Vec<PrivilegeId> = graph.node_ids().map(|n| graph.node(n).lowest).collect();
    lattice.maximal_antichain(&lowests)
}

/// Checks the three conditions of Def. 6 for a candidate set. Useful in
/// tests and for validating externally supplied high-water sets.
pub fn is_high_water_set(
    graph: &Graph,
    lattice: &PrivilegeLattice,
    candidate: &[PrivilegeId],
) -> bool {
    // Condition 1: antichain.
    if !lattice.is_antichain(candidate) {
        return false;
    }
    // Condition 2: every node's lowest is dominated by some member.
    for n in graph.node_ids() {
        if !lattice.set_dominates(candidate, graph.node(n).lowest) {
            return false;
        }
    }
    // Condition 3: every member is the lowest of some node.
    for &p in candidate {
        if !graph.node_ids().any(|n| graph.node(n).lowest == p) {
            return false;
        }
    }
    true
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::privilege::PrivilegeLattice;

    /// Fig. 1 lattice: Public ⊑ Low-2 ⊑ High-2; High-1 ⊒ Public only.
    fn figure1() -> (PrivilegeLattice, [PrivilegeId; 4]) {
        let mut builder = PrivilegeLattice::builder();
        let public = builder.add("Public").unwrap();
        let low2 = builder.add("Low-2").unwrap();
        let high1 = builder.add("High-1").unwrap();
        let high2 = builder.add("High-2").unwrap();
        builder.declare_dominates(low2, public);
        builder.declare_dominates(high1, public);
        builder.declare_dominates(high2, low2);
        (builder.finish().unwrap(), [public, low2, high1, high2])
    }

    #[test]
    fn paper_example_high_water_is_high1_high2() {
        // §3.1: "In Figure 2a, the high-water set is {High-1, High-2}".
        let (lattice, [public, _, high1, high2]) = figure1();
        let mut g = Graph::new();
        for label in ["b", "c", "h", "i", "j"] {
            g.add_node(label, public);
        }
        for label in ["a1", "a2", "d", "e", "f"] {
            g.add_node(label, high1);
        }
        g.add_node("g", high2);
        let hw = high_water_set(&g, &lattice);
        assert_eq!(hw.len(), 2);
        assert!(hw.contains(&high1));
        assert!(hw.contains(&high2));
        assert!(is_high_water_set(&g, &lattice, &hw));
    }

    #[test]
    fn all_public_graph_has_public_high_water() {
        let (lattice, [public, ..]) = figure1();
        let mut g = Graph::new();
        g.add_node("a", public);
        g.add_node("b", public);
        assert_eq!(high_water_set(&g, &lattice), vec![public]);
    }

    #[test]
    fn dominated_levels_are_absorbed() {
        let (lattice, [public, low2, _, high2]) = figure1();
        let mut g = Graph::new();
        g.add_node("p", public);
        g.add_node("l", low2);
        g.add_node("h", high2);
        assert_eq!(high_water_set(&g, &lattice), vec![high2]);
    }

    #[test]
    fn empty_graph_has_empty_high_water() {
        let (lattice, _) = figure1();
        let g = Graph::new();
        assert!(high_water_set(&g, &lattice).is_empty());
        assert!(is_high_water_set(&g, &lattice, &[]));
    }

    #[test]
    fn validator_rejects_non_antichain() {
        let (lattice, [public, low2, _, high2]) = figure1();
        let mut g = Graph::new();
        g.add_node("l", low2);
        g.add_node("h", high2);
        g.add_node("p", public);
        assert!(!is_high_water_set(&g, &lattice, &[low2, high2]));
    }

    #[test]
    fn validator_rejects_non_covering_set() {
        let (lattice, [_, low2, _, high2]) = figure1();
        let mut g = Graph::new();
        g.add_node("l", low2);
        g.add_node("h", high2);
        assert!(!is_high_water_set(&g, &lattice, &[low2]));
    }

    #[test]
    fn validator_rejects_member_not_lowest_of_any_node() {
        let (lattice, [public, _, high1, _]) = figure1();
        let mut g = Graph::new();
        g.add_node("p", public);
        assert!(
            !is_high_water_set(&g, &lattice, &[high1]),
            "High-1 dominates nothing present as a lowest"
        );
    }
}
