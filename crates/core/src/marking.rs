//! Node–edge incidence markings (paper §3.2, Def. 7).
//!
//! For a privilege-predicate `p`, every node–edge incidence carries a
//! marking `mark(n, e, p) ∈ {Visible, Hide, Surrogate}`:
//!
//! * **Visible** — the provider will show this incidence to consumers
//!   satisfying `p`.
//! * **Hide** — the incidence may not be shown *nor used to compute any
//!   edge* of the protected account.
//! * **Surrogate** — the incidence may be used to maintain a path (via a
//!   surrogate edge) but cannot be shown directly.
//!
//! Both endpoints of an edge may be marked by their respective providers
//! and need not agree (local autonomy); the account generator combines the
//! two markings.

use crate::graph::{Edge, NodeId};
use crate::privilege::PrivilegeId;
use crate::util::FxHashMap;

/// Marking of a single node–edge incidence for one predicate (Def. 7).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub enum Marking {
    /// May be shown directly.
    Visible,
    /// May be neither shown nor used.
    Hide,
    /// May be used to maintain a path, but not shown.
    Surrogate,
}

/// Resolution layers for [`MarkingStore`], most specific first:
///
/// 1. per `(node, edge, predicate)`
/// 2. per `(node, edge)` — any predicate
/// 3. per `(node, predicate)` — all of the node's incidences
/// 4. per `node` — all incidences, any predicate
/// 5. the global default (`Visible` unless overridden)
///
/// Layers 3–4 realize the paper's "in practice, these may be defined on
/// sets of nodes … or all outgoing edges" by letting a provider mark a
/// node's whole incidence set at once.
#[derive(Debug, Clone)]
pub struct MarkingStore {
    default: Marking,
    per_node: FxHashMap<NodeId, Marking>,
    per_node_pred: FxHashMap<(NodeId, PrivilegeId), Marking>,
    per_incidence: FxHashMap<(NodeId, Edge), Marking>,
    per_incidence_pred: FxHashMap<(NodeId, Edge, PrivilegeId), Marking>,
}

impl Default for MarkingStore {
    fn default() -> Self {
        Self::new()
    }
}

impl MarkingStore {
    /// A store where everything is `Visible` until marked otherwise.
    pub fn new() -> Self {
        Self {
            default: Marking::Visible,
            per_node: FxHashMap::default(),
            per_node_pred: FxHashMap::default(),
            per_incidence: FxHashMap::default(),
            per_incidence_pred: FxHashMap::default(),
        }
    }

    /// Changes the global default marking.
    pub fn with_default(mut self, marking: Marking) -> Self {
        self.default = marking;
        self
    }

    /// Marks one incidence for one predicate (layer 1).
    pub fn set(&mut self, node: NodeId, edge: Edge, p: PrivilegeId, marking: Marking) {
        debug_assert!(node == edge.0 || node == edge.1, "node must be incident");
        self.per_incidence_pred.insert((node, edge, p), marking);
    }

    /// Marks one incidence for every predicate (layer 2).
    pub fn set_all_predicates(&mut self, node: NodeId, edge: Edge, marking: Marking) {
        debug_assert!(node == edge.0 || node == edge.1, "node must be incident");
        self.per_incidence.insert((node, edge), marking);
    }

    /// Marks all of a node's incidences for one predicate (layer 3). This
    /// is the "hide/surrogate the role of a node" idiom of Fig. 2.
    pub fn set_node(&mut self, node: NodeId, p: PrivilegeId, marking: Marking) {
        self.per_node_pred.insert((node, p), marking);
    }

    /// Marks all of a node's incidences for every predicate (layer 4).
    pub fn set_node_all_predicates(&mut self, node: NodeId, marking: Marking) {
        self.per_node.insert(node, marking);
    }

    /// Convenience: marks *both* incidences of an edge for predicate `p`.
    pub fn set_edge(&mut self, edge: Edge, p: PrivilegeId, marking: Marking) {
        self.set(edge.0, edge, p, marking);
        self.set(edge.1, edge, p, marking);
    }

    /// Resolves `mark(node, edge, p)` through the layers.
    pub fn mark(&self, node: NodeId, edge: Edge, p: PrivilegeId) -> Marking {
        if let Some(&m) = self.per_incidence_pred.get(&(node, edge, p)) {
            return m;
        }
        if let Some(&m) = self.per_incidence.get(&(node, edge)) {
            return m;
        }
        if let Some(&m) = self.per_node_pred.get(&(node, p)) {
            return m;
        }
        if let Some(&m) = self.per_node.get(&node) {
            return m;
        }
        self.default
    }

    /// Marking of the source-side incidence of `edge`.
    #[inline]
    pub fn mark_source(&self, edge: Edge, p: PrivilegeId) -> Marking {
        self.mark(edge.0, edge, p)
    }

    /// Marking of the destination-side incidence of `edge`.
    #[inline]
    pub fn mark_dest(&self, edge: Edge, p: PrivilegeId) -> Marking {
        self.mark(edge.1, edge, p)
    }

    /// `true` when either incidence of `edge` is marked `Hide` for `p`.
    /// Such an edge may not be shown nor used (Def. 7 / Def. 8 cond. 1).
    #[inline]
    pub fn edge_hidden(&self, edge: Edge, p: PrivilegeId) -> bool {
        self.mark_source(edge, p) == Marking::Hide || self.mark_dest(edge, p) == Marking::Hide
    }

    /// `true` when both incidences of `edge` are `Visible` for `p` — the
    /// edge may appear directly in the protected account.
    #[inline]
    pub fn edge_visible(&self, edge: Edge, p: PrivilegeId) -> bool {
        self.mark_source(edge, p) == Marking::Visible && self.mark_dest(edge, p) == Marking::Visible
    }

    /// Effective marking of an incidence for a *set* of predicates (a
    /// multi-predicate high-water set, Def. 6): the most permissive
    /// marking any member grants (`Visible > Surrogate > Hide`), matching
    /// Def. 8's "marked Visible for some p dominated by a member of HW".
    pub fn mark_for_set(&self, node: NodeId, edge: Edge, preds: &[PrivilegeId]) -> Marking {
        let mut best = Marking::Hide;
        for &p in preds {
            match self.mark(node, edge, p) {
                Marking::Visible => return Marking::Visible,
                Marking::Surrogate => best = Marking::Surrogate,
                Marking::Hide => {}
            }
        }
        best
    }

    /// Set version of [`edge_hidden`](Self::edge_hidden).
    #[inline]
    pub fn edge_hidden_for_set(&self, edge: Edge, preds: &[PrivilegeId]) -> bool {
        self.mark_for_set(edge.0, edge, preds) == Marking::Hide
            || self.mark_for_set(edge.1, edge, preds) == Marking::Hide
    }

    /// Set version of [`edge_visible`](Self::edge_visible).
    #[inline]
    pub fn edge_visible_for_set(&self, edge: Edge, preds: &[PrivilegeId]) -> bool {
        self.mark_for_set(edge.0, edge, preds) == Marking::Visible
            && self.mark_for_set(edge.1, edge, preds) == Marking::Visible
    }

    /// The global default marking (layer 5).
    pub fn default_marking(&self) -> Marking {
        self.default
    }

    /// Number of explicit rules across layers 1–4. Zero means every
    /// incidence resolves to the [default](Self::default_marking) — the
    /// dense protection path exploits this to skip per-edge resolution.
    pub fn rule_count(&self) -> usize {
        self.per_incidence_pred.len()
            + self.per_incidence.len()
            + self.per_node_pred.len()
            + self.per_node.len()
    }

    /// Enumerates every explicit rule in the store, in a deterministic
    /// order (layer, then ids). Lets policy be exported — e.g. replayed
    /// into a provenance store's policy log.
    pub fn rules(&self) -> Vec<MarkingRule> {
        let mut rules = Vec::with_capacity(
            self.per_incidence_pred.len()
                + self.per_incidence.len()
                + self.per_node_pred.len()
                + self.per_node.len(),
        );
        for (&(node, edge, predicate), &marking) in &self.per_incidence_pred {
            rules.push(MarkingRule::IncidencePred {
                node,
                edge,
                predicate,
                marking,
            });
        }
        for (&(node, edge), &marking) in &self.per_incidence {
            rules.push(MarkingRule::Incidence {
                node,
                edge,
                marking,
            });
        }
        for (&(node, predicate), &marking) in &self.per_node_pred {
            rules.push(MarkingRule::NodePred {
                node,
                predicate,
                marking,
            });
        }
        for (&node, &marking) in &self.per_node {
            rules.push(MarkingRule::Node { node, marking });
        }
        rules.sort();
        rules
    }
}

/// One explicit rule of a [`MarkingStore`], by resolution layer.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
pub enum MarkingRule {
    /// Layer 1: one incidence, one predicate.
    IncidencePred {
        /// The incident node.
        node: NodeId,
        /// The edge.
        edge: Edge,
        /// The predicate scope.
        predicate: PrivilegeId,
        /// The marking.
        marking: Marking,
    },
    /// Layer 2: one incidence, every predicate.
    Incidence {
        /// The incident node.
        node: NodeId,
        /// The edge.
        edge: Edge,
        /// The marking.
        marking: Marking,
    },
    /// Layer 3: all of a node's incidences, one predicate.
    NodePred {
        /// The node.
        node: NodeId,
        /// The predicate scope.
        predicate: PrivilegeId,
        /// The marking.
        marking: Marking,
    },
    /// Layer 4: all of a node's incidences, every predicate.
    Node {
        /// The node.
        node: NodeId,
        /// The marking.
        marking: Marking,
    },
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::privilege::PrivilegeLattice;

    fn ids() -> (NodeId, NodeId, Edge, PrivilegeId, PrivilegeId) {
        let (lattice, preds) = PrivilegeLattice::flat(&["High"]).unwrap();
        let a = NodeId(0);
        let b = NodeId(1);
        ((a), (b), (a, b), lattice.public(), preds[0])
    }

    #[test]
    fn default_is_visible() {
        let (a, _, e, public, _) = ids();
        let store = MarkingStore::new();
        assert_eq!(store.mark(a, e, public), Marking::Visible);
        assert!(store.edge_visible(e, public));
        assert!(!store.edge_hidden(e, public));
    }

    #[test]
    fn layer_precedence() {
        let (a, _b, e, public, high) = ids();
        let mut store = MarkingStore::new();
        store.set_node_all_predicates(a, Marking::Hide); // layer 4
        assert_eq!(store.mark(a, e, public), Marking::Hide);
        store.set_node(a, public, Marking::Surrogate); // layer 3 beats 4
        assert_eq!(store.mark(a, e, public), Marking::Surrogate);
        assert_eq!(
            store.mark(a, e, high),
            Marking::Hide,
            "other predicate keeps layer 4"
        );
        store.set_all_predicates(a, e, Marking::Visible); // layer 2 beats 3
        assert_eq!(store.mark(a, e, public), Marking::Visible);
        store.set(a, e, public, Marking::Hide); // layer 1 beats all
        assert_eq!(store.mark(a, e, public), Marking::Hide);
        assert_eq!(
            store.mark(a, e, high),
            Marking::Visible,
            "layer 2 for other predicate"
        );
    }

    #[test]
    fn endpoint_markings_are_independent() {
        let (a, b, e, public, _) = ids();
        let mut store = MarkingStore::new();
        store.set(a, e, public, Marking::Visible);
        store.set(b, e, public, Marking::Surrogate);
        assert_eq!(store.mark_source(e, public), Marking::Visible);
        assert_eq!(store.mark_dest(e, public), Marking::Surrogate);
        assert!(!store.edge_visible(e, public));
        assert!(!store.edge_hidden(e, public));
    }

    #[test]
    fn hide_on_either_side_hides_edge() {
        let (_a, b, e, public, _) = ids();
        let mut store = MarkingStore::new();
        store.set(b, e, public, Marking::Hide);
        assert!(store.edge_hidden(e, public));
        assert!(!store.edge_visible(e, public));
    }

    #[test]
    fn set_edge_marks_both_sides() {
        let (a, b, e, public, _) = ids();
        let mut store = MarkingStore::new();
        store.set_edge(e, public, Marking::Surrogate);
        assert_eq!(store.mark(a, e, public), Marking::Surrogate);
        assert_eq!(store.mark(b, e, public), Marking::Surrogate);
    }

    #[test]
    fn set_view_takes_most_permissive_member() {
        let (a, _b, e, public, high) = ids();
        let mut store = MarkingStore::new();
        store.set(a, e, public, Marking::Hide);
        store.set(a, e, high, Marking::Surrogate);
        assert_eq!(store.mark_for_set(a, e, &[public]), Marking::Hide);
        assert_eq!(
            store.mark_for_set(a, e, &[public, high]),
            Marking::Surrogate
        );
        // A Visible member wins outright.
        let mut store = MarkingStore::new();
        store.set(a, e, public, Marking::Hide);
        assert_eq!(store.mark_for_set(a, e, &[public, high]), Marking::Visible);
        assert!(!store.edge_hidden_for_set(e, &[public, high]));
        assert!(store.edge_visible_for_set(e, &[high]));
    }

    #[test]
    fn rules_enumerate_all_layers_deterministically() {
        let (a, b, e, public, _) = ids();
        let mut store = MarkingStore::new();
        store.set(a, e, public, Marking::Hide);
        store.set_all_predicates(b, e, Marking::Surrogate);
        store.set_node(b, public, Marking::Surrogate);
        store.set_node_all_predicates(a, Marking::Visible);
        let rules = store.rules();
        assert_eq!(rules.len(), 4);
        assert_eq!(store.rule_count(), 4);
        assert_eq!(MarkingStore::new().rule_count(), 0);
        assert_eq!(rules, store.rules(), "deterministic order");
        assert!(matches!(rules[0], MarkingRule::IncidencePred { .. }));
        assert_eq!(store.default_marking(), Marking::Visible);
    }

    #[test]
    fn with_default_changes_baseline() {
        let (a, _, e, public, _) = ids();
        let store = MarkingStore::new().with_default(Marking::Hide);
        assert_eq!(store.mark(a, e, public), Marking::Hide);
    }
}
