//! Path-traversal queries (paper §1: "important queries traverse paths
//! from specified starting places").
//!
//! These run over any [`Graph`] — the original or a protected account — so
//! a provenance-style "what contributed to this node?" query can be
//! answered per consumer by generating their account and traversing it.

use std::collections::VecDeque;

use crate::graph::{Graph, NodeId};
use crate::util::BitSet;

/// Traversal direction relative to edge orientation.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Direction {
    /// Follow edges forward: descendants / downstream impact.
    Forward,
    /// Follow edges backward: ancestors / upstream provenance.
    Backward,
    /// Ignore orientation: the connected neighborhood.
    Both,
}

/// Result of a traversal: nodes with their BFS depth from the start.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Traversal {
    /// Start node (depth 0; not included in `visited`).
    pub start: NodeId,
    /// Visited nodes paired with their depth, in BFS order.
    pub visited: Vec<(NodeId, u32)>,
}

impl Traversal {
    /// Iterates the visited `(node, depth)` pairs in BFS order without
    /// allocating.
    pub fn iter(&self) -> impl Iterator<Item = (NodeId, u32)> + '_ {
        self.visited.iter().copied()
    }

    /// Visited node ids without depths, in BFS order. Borrows from the
    /// traversal instead of allocating a `Vec` — this sits on the hot
    /// serving path, where every query materializes a traversal.
    pub fn nodes(&self) -> impl Iterator<Item = NodeId> + '_ {
        self.iter().map(|(n, _)| n)
    }

    /// Number of visited nodes.
    pub fn len(&self) -> usize {
        self.visited.len()
    }

    /// `true` when the traversal found nothing.
    pub fn is_empty(&self) -> bool {
        self.visited.is_empty()
    }
}

impl<'a> IntoIterator for &'a Traversal {
    type Item = (NodeId, u32);
    type IntoIter = std::iter::Copied<std::slice::Iter<'a, (NodeId, u32)>>;

    fn into_iter(self) -> Self::IntoIter {
        self.visited.iter().copied()
    }
}

/// BFS from `start` in the given direction, up to `max_depth` hops
/// (`u32::MAX` for unbounded).
pub fn traverse(graph: &Graph, start: NodeId, direction: Direction, max_depth: u32) -> Traversal {
    let mut seen = BitSet::new(graph.node_count());
    seen.insert(start.index());
    let mut visited = Vec::new();
    let mut queue: VecDeque<(NodeId, u32)> = VecDeque::new();
    queue.push_back((start, 0));
    while let Some((n, depth)) = queue.pop_front() {
        if depth >= max_depth {
            continue;
        }
        let next_depth = depth + 1;
        let push = |queue: &mut VecDeque<(NodeId, u32)>,
                    seen: &mut BitSet,
                    visited: &mut Vec<(NodeId, u32)>,
                    m: NodeId| {
            if seen.insert(m.index()) {
                visited.push((m, next_depth));
                queue.push_back((m, next_depth));
            }
        };
        match direction {
            Direction::Forward => {
                for &m in graph.out_neighbors(n) {
                    push(&mut queue, &mut seen, &mut visited, m);
                }
            }
            Direction::Backward => {
                for &m in graph.in_neighbors(n) {
                    push(&mut queue, &mut seen, &mut visited, m);
                }
            }
            Direction::Both => {
                for &m in graph.out_neighbors(n) {
                    push(&mut queue, &mut seen, &mut visited, m);
                }
                for &m in graph.in_neighbors(n) {
                    push(&mut queue, &mut seen, &mut visited, m);
                }
            }
        }
    }
    Traversal { start, visited }
}

/// All ancestors of `start` (upstream provenance).
pub fn ancestors(graph: &Graph, start: NodeId) -> Traversal {
    traverse(graph, start, Direction::Backward, u32::MAX)
}

/// All descendants of `start` (downstream impact).
pub fn descendants(graph: &Graph, start: NodeId) -> Traversal {
    traverse(graph, start, Direction::Forward, u32::MAX)
}

/// One shortest directed path `from → … → to`, if any, as a node sequence
/// including both endpoints.
pub fn shortest_path(graph: &Graph, from: NodeId, to: NodeId) -> Option<Vec<NodeId>> {
    if from == to {
        return Some(vec![from]);
    }
    let mut parent: Vec<Option<NodeId>> = vec![None; graph.node_count()];
    let mut seen = BitSet::new(graph.node_count());
    seen.insert(from.index());
    let mut queue = VecDeque::new();
    queue.push_back(from);
    while let Some(n) = queue.pop_front() {
        for &m in graph.out_neighbors(n) {
            if seen.insert(m.index()) {
                parent[m.index()] = Some(n);
                if m == to {
                    let mut path = vec![to];
                    let mut cur = to;
                    while let Some(p) = parent[cur.index()] {
                        path.push(p);
                        cur = p;
                    }
                    path.reverse();
                    return Some(path);
                }
                queue.push_back(m);
            }
        }
    }
    None
}

/// `true` when a directed path `from → … → to` exists (length ≥ 0).
pub fn reaches(graph: &Graph, from: NodeId, to: NodeId) -> bool {
    shortest_path(graph, from, to).is_some()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::privilege::PrivilegeLattice;

    /// a→b→c, a→c, d isolated.
    fn fixture() -> (Graph, [NodeId; 4]) {
        let lattice = PrivilegeLattice::public_only();
        let p = lattice.public();
        let mut g = Graph::new();
        let a = g.add_node("a", p);
        let b = g.add_node("b", p);
        let c = g.add_node("c", p);
        let d = g.add_node("d", p);
        g.add_edge(a, b).unwrap();
        g.add_edge(b, c).unwrap();
        g.add_edge(a, c).unwrap();
        (g, [a, b, c, d])
    }

    #[test]
    fn forward_traversal_finds_descendants() {
        let (g, [a, b, c, d]) = fixture();
        let t = descendants(&g, a);
        let nodes: Vec<NodeId> = t.nodes().collect();
        assert!(nodes.contains(&b) && nodes.contains(&c));
        assert!(!nodes.contains(&d));
        assert_eq!(t.len(), 2);
    }

    #[test]
    fn backward_traversal_finds_ancestors() {
        let (g, [a, b, c, _]) = fixture();
        let t = ancestors(&g, c);
        let nodes: Vec<NodeId> = t.nodes().collect();
        assert!(nodes.contains(&a) && nodes.contains(&b));
        assert_eq!(t.len(), 2);
    }

    #[test]
    fn depths_are_shortest_hops() {
        let (g, [a, _, c, _]) = fixture();
        let t = traverse(&g, a, Direction::Forward, u32::MAX);
        let depth_of_c = t.visited.iter().find(|&&(n, _)| n == c).unwrap().1;
        assert_eq!(depth_of_c, 1, "direct a→c edge wins over a→b→c");
    }

    #[test]
    fn max_depth_truncates() {
        let (g, [a, b, c, _]) = fixture();
        let t = traverse(&g, a, Direction::Forward, 1);
        let nodes: Vec<NodeId> = t.nodes().collect();
        assert!(nodes.contains(&b));
        assert!(nodes.contains(&c), "c is at depth 1 via the direct edge");
        let t0 = traverse(&g, a, Direction::Forward, 0);
        assert!(t0.is_empty());
    }

    #[test]
    fn both_direction_covers_neighborhood() {
        let (g, [a, _, c, d]) = fixture();
        let t = traverse(&g, c, Direction::Both, u32::MAX);
        assert_eq!(t.len(), 2, "a and b, not d");
        assert!(!t.nodes().any(|n| n == d));
        assert!(t.nodes().any(|n| n == a));
    }

    #[test]
    fn shortest_path_prefers_fewest_hops() {
        let (g, [a, _, c, d]) = fixture();
        assert_eq!(shortest_path(&g, a, c), Some(vec![a, c]));
        assert_eq!(shortest_path(&g, a, d), None);
        assert_eq!(shortest_path(&g, a, a), Some(vec![a]));
        assert!(reaches(&g, a, c));
        assert!(!reaches(&g, c, a));
    }
}
