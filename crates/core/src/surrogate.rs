//! Surrogate nodes and their catalogs (paper §3.1).
//!
//! A surrogate `n'` for node `n` is an alternate, less sensitive version of
//! `n` releasable to consumers who may not see `n` itself. The provider
//! requirements enforced here:
//!
//! * `lowest(n')` must **not** dominate `lowest(n)` — a surrogate may be
//!   incomparable with the original, but never more restricted (§3.1).
//! * `infoScore(n') ∈ [0, 1]`, with `infoScore = 1` reserved for the
//!   original node itself (Def. 4 / §4.1).
//! * Among surrogates for the same node, info-scores are monotone in
//!   dominance: if `lowest(n')` dominates `lowest(n'')` then
//!   `infoScore(n') ≥ infoScore(n'')` (§4.1).
//!
//! A `<null>` surrogate (no features, `Public`, score 0) can be attached as
//! a default so connectivity survives even when nothing about the node can
//! be shared.

use crate::error::{Error, Result};
use crate::feature::Features;
use crate::graph::{Graph, NodeId};
use crate::privilege::{PrivilegeId, PrivilegeLattice};
use crate::util::FxHashMap;

/// One surrogate version of a node.
#[derive(Debug, Clone, PartialEq)]
pub struct SurrogateDef {
    /// Label shown in the protected account (e.g. `"f'"`).
    pub label: String,
    /// The (possibly coarsened) features this surrogate reveals.
    pub features: Features,
    /// Lowest predicate through which this surrogate is visible.
    pub lowest: PrivilegeId,
    /// `infoScore(n')` ∈ [0, 1]: closeness to the original (§4.1).
    pub info_score: f64,
}

impl SurrogateDef {
    /// The featureless `<null>` surrogate visible via `Public`.
    pub fn null(lattice: &PrivilegeLattice) -> Self {
        Self {
            label: "<null>".into(),
            features: Features::new(),
            lowest: lattice.public(),
            info_score: 0.0,
        }
    }
}

/// Per-node registry of surrogate definitions.
#[derive(Debug, Clone, Default)]
pub struct SurrogateCatalog {
    by_node: FxHashMap<NodeId, Vec<SurrogateDef>>,
}

impl SurrogateCatalog {
    /// An empty catalog: nodes without surrogates are simply omitted from
    /// protected accounts when not visible.
    pub fn new() -> Self {
        Self::default()
    }

    /// Registers a surrogate for `node`. Definitions are validated lazily
    /// by [`validate`](Self::validate) (so catalogs can be built before the
    /// graph is final) and eagerly by the account generator.
    pub fn add(&mut self, node: NodeId, def: SurrogateDef) {
        self.by_node.entry(node).or_default().push(def);
    }

    /// Registers a `<null>` surrogate for `node`.
    pub fn add_null(&mut self, node: NodeId, lattice: &PrivilegeLattice) {
        self.add(node, SurrogateDef::null(lattice));
    }

    /// Surrogates registered for `node`.
    pub fn for_node(&self, node: NodeId) -> &[SurrogateDef] {
        self.by_node.get(&node).map(Vec::as_slice).unwrap_or(&[])
    }

    /// Number of nodes with at least one surrogate.
    pub fn len(&self) -> usize {
        self.by_node.len()
    }

    /// `true` when no surrogates are registered.
    pub fn is_empty(&self) -> bool {
        self.by_node.is_empty()
    }

    /// Selects the surrogate of `node` to include in an account with
    /// high-water predicate `p`: among surrogates visible via `p` (i.e.
    /// whose `lowest` is dominated by `p`), the one with the most dominant
    /// `lowest` — the *dominant surrogacy* rule (Def. 9.2). The paper notes
    /// this is a proxy for maximal info-score; ties between incomparable
    /// candidates are broken by higher info-score, then registration order.
    pub fn most_dominant_visible(
        &self,
        lattice: &PrivilegeLattice,
        node: NodeId,
        p: PrivilegeId,
    ) -> Option<&SurrogateDef> {
        let mut best: Option<&SurrogateDef> = None;
        for def in self.for_node(node) {
            if !lattice.dominates(p, def.lowest) {
                continue; // not visible via p
            }
            best = match best {
                None => Some(def),
                Some(current) => {
                    let strictly_dominates = lattice.dominates(def.lowest, current.lowest)
                        && def.lowest != current.lowest;
                    let better_incomparable = lattice.incomparable(def.lowest, current.lowest)
                        && def.info_score > current.info_score;
                    if strictly_dominates || better_incomparable {
                        Some(def)
                    } else {
                        Some(current)
                    }
                }
            };
        }
        best
    }

    /// Set version of [`most_dominant_visible`](Self::most_dominant_visible)
    /// for multi-predicate high-water sets (Def. 6): the best surrogate
    /// visible via *any* member, preferring dominance then info-score —
    /// the appendix's "the same process is used for each predicate until
    /// an appropriate surrogate is found".
    pub fn most_dominant_visible_for_set(
        &self,
        lattice: &PrivilegeLattice,
        node: NodeId,
        preds: &[PrivilegeId],
    ) -> Option<&SurrogateDef> {
        let mut best: Option<&SurrogateDef> = None;
        for &p in preds {
            if let Some(candidate) = self.most_dominant_visible(lattice, node, p) {
                best = match best {
                    None => Some(candidate),
                    Some(current) => {
                        let strictly_dominates = lattice
                            .dominates(candidate.lowest, current.lowest)
                            && candidate.lowest != current.lowest;
                        let better_incomparable = lattice
                            .incomparable(candidate.lowest, current.lowest)
                            && candidate.info_score > current.info_score;
                        if strictly_dominates || better_incomparable {
                            Some(candidate)
                        } else {
                            Some(current)
                        }
                    }
                };
            }
        }
        best
    }

    /// Checks every definition against the provider requirements listed in
    /// the module docs.
    pub fn validate(&self, graph: &Graph, lattice: &PrivilegeLattice) -> Result<()> {
        for (&node, defs) in &self.by_node {
            if !graph.contains_node(node) {
                return Err(Error::UnknownNode(node));
            }
            let node_lowest = graph.node(node).lowest;
            for def in defs {
                if !(0.0..=1.0).contains(&def.info_score) {
                    return Err(Error::InfoScoreOutOfRange {
                        node,
                        score: def.info_score,
                    });
                }
                if lattice.dominates(def.lowest, node_lowest) {
                    return Err(Error::SurrogateTooPrivileged {
                        node,
                        surrogate_lowest: def.lowest,
                        node_lowest,
                    });
                }
            }
            // §4.1 monotonicity across every ordered pair of surrogates.
            for a in defs {
                for b in defs {
                    if lattice.dominates(a.lowest, b.lowest) && a.info_score < b.info_score {
                        return Err(Error::InfoScoreNotMonotone { node });
                    }
                }
            }
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::privilege::PrivilegeLattice;

    fn setup() -> (Graph, PrivilegeLattice, [PrivilegeId; 3], NodeId) {
        let mut builder = PrivilegeLattice::builder();
        let public = builder.add("Public").unwrap();
        let low = builder.add("Low").unwrap();
        let high = builder.add("High").unwrap();
        builder.declare_dominates(low, public);
        builder.declare_dominates(high, low);
        let lattice = builder.finish().unwrap();
        let mut graph = Graph::new();
        let n = graph.add_node("secret", high);
        (graph, lattice, [public, low, high], n)
    }

    #[test]
    fn null_surrogate_shape() {
        let (_, lattice, [public, ..], _) = setup();
        let null = SurrogateDef::null(&lattice);
        assert_eq!(null.lowest, public);
        assert!(null.features.is_empty());
        assert_eq!(null.info_score, 0.0);
    }

    #[test]
    fn most_dominant_visible_prefers_higher_lowest() {
        let (_, lattice, [public, low, _], n) = setup();
        let mut catalog = SurrogateCatalog::new();
        catalog.add(
            n,
            SurrogateDef {
                label: "coarse".into(),
                features: Features::new(),
                lowest: public,
                info_score: 0.1,
            },
        );
        catalog.add(
            n,
            SurrogateDef {
                label: "fine".into(),
                features: Features::new().with("kind", "source"),
                lowest: low,
                info_score: 0.6,
            },
        );
        // A Low consumer gets the fine surrogate; a Public one the coarse.
        let fine = catalog.most_dominant_visible(&lattice, n, low).unwrap();
        assert_eq!(fine.label, "fine");
        let coarse = catalog.most_dominant_visible(&lattice, n, public).unwrap();
        assert_eq!(coarse.label, "coarse");
    }

    #[test]
    fn incomparable_candidates_break_ties_by_info_score() {
        let (mut graph, _, _, _) = setup();
        let (lattice, preds) = PrivilegeLattice::flat(&["A", "B", "Top"]).unwrap();
        let (a, b, _top) = (preds[0], preds[1], preds[2]);
        // Rebuild with a node whose lowest is incomparable to A and B.
        let n = graph.add_node("other", preds[2]);
        let mut catalog = SurrogateCatalog::new();
        catalog.add(
            n,
            SurrogateDef {
                label: "via-a".into(),
                features: Features::new(),
                lowest: a,
                info_score: 0.3,
            },
        );
        catalog.add(
            n,
            SurrogateDef {
                label: "via-b".into(),
                features: Features::new(),
                lowest: b,
                info_score: 0.7,
            },
        );
        // A consumer predicate dominating both A and B does not exist in the
        // flat lattice, so query per branch.
        assert_eq!(
            catalog.most_dominant_visible(&lattice, n, a).unwrap().label,
            "via-a"
        );
        assert_eq!(
            catalog.most_dominant_visible(&lattice, n, b).unwrap().label,
            "via-b"
        );
    }

    #[test]
    fn invisible_when_no_surrogate_is_dominated() {
        let (_, lattice, [_, low, high], n) = setup();
        let mut catalog = SurrogateCatalog::new();
        catalog.add(
            n,
            SurrogateDef {
                label: "s".into(),
                features: Features::new(),
                lowest: low,
                info_score: 0.5,
            },
        );
        assert!(catalog
            .most_dominant_visible(&lattice, n, lattice.public())
            .is_none());
        assert!(catalog.most_dominant_visible(&lattice, n, high).is_some());
    }

    #[test]
    fn validate_rejects_dominating_surrogate() {
        let (graph, lattice, [_, _, high], n) = setup();
        let mut catalog = SurrogateCatalog::new();
        catalog.add(
            n,
            SurrogateDef {
                label: "too-high".into(),
                features: Features::new(),
                lowest: high, // equals lowest(n): dominates it reflexively
                info_score: 0.5,
            },
        );
        assert!(matches!(
            catalog.validate(&graph, &lattice).unwrap_err(),
            Error::SurrogateTooPrivileged { .. }
        ));
    }

    #[test]
    fn validate_rejects_non_monotone_scores() {
        let (graph, lattice, [public, low, _], n) = setup();
        let mut catalog = SurrogateCatalog::new();
        catalog.add(
            n,
            SurrogateDef {
                label: "low".into(),
                features: Features::new(),
                lowest: low,
                info_score: 0.2,
            },
        );
        catalog.add(
            n,
            SurrogateDef {
                label: "public-but-richer".into(),
                features: Features::new(),
                lowest: public,
                info_score: 0.9,
            },
        );
        assert!(matches!(
            catalog.validate(&graph, &lattice).unwrap_err(),
            Error::InfoScoreNotMonotone { .. }
        ));
    }

    #[test]
    fn validate_rejects_out_of_range_scores() {
        let (graph, lattice, [public, ..], n) = setup();
        let mut catalog = SurrogateCatalog::new();
        catalog.add(
            n,
            SurrogateDef {
                label: "bad".into(),
                features: Features::new(),
                lowest: public,
                info_score: 1.5,
            },
        );
        assert!(matches!(
            catalog.validate(&graph, &lattice).unwrap_err(),
            Error::InfoScoreOutOfRange { .. }
        ));
    }

    #[test]
    fn validate_rejects_unknown_node() {
        let (graph, lattice, [public, ..], _) = setup();
        let mut catalog = SurrogateCatalog::new();
        catalog.add(
            NodeId(42),
            SurrogateDef {
                label: "ghost".into(),
                features: Features::new(),
                lowest: public,
                info_score: 0.0,
            },
        );
        assert!(matches!(
            catalog.validate(&graph, &lattice).unwrap_err(),
            Error::UnknownNode(_)
        ));
    }

    #[test]
    fn validate_accepts_well_formed_catalog() {
        let (graph, lattice, [public, low, _], n) = setup();
        let mut catalog = SurrogateCatalog::new();
        catalog.add(
            n,
            SurrogateDef {
                label: "fine".into(),
                features: Features::new(),
                lowest: low,
                info_score: 0.6,
            },
        );
        catalog.add(
            n,
            SurrogateDef {
                label: "coarse".into(),
                features: Features::new(),
                lowest: public,
                info_score: 0.3,
            },
        );
        catalog.validate(&graph, &lattice).unwrap();
        assert_eq!(catalog.len(), 1);
        assert!(!catalog.is_empty());
    }
}
