//! The directed graph model of paper §2.
//!
//! A graph `G = (N, E)` has nodes carrying features and a `lowest`
//! privilege-predicate (Def. 3), and directed edges between node pairs.
//! Bi-directional relationships are modeled as two directed edges. The
//! representation is a simple digraph (no parallel edges, no self-loops)
//! with both adjacency directions materialized, because account generation
//! walks edges both ways and the opacity measure needs in/out degrees.

use std::fmt;

use crate::error::{Error, Result};
use crate::feature::Features;
use crate::privilege::PrivilegeId;
use crate::util::{BitSet, FxHashMap, UnionFind};

/// Index of a node within its [`Graph`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub struct NodeId(pub u32);

impl NodeId {
    /// The id as a dense index, for addressing per-node side tables (such
    /// as the vectors returned by [`Graph::connected_counts`] or
    /// [`crate::measures::path_percentages`]).
    #[inline]
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

impl fmt::Display for NodeId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "n{}", self.0)
    }
}

/// A directed edge, identified by its endpoints.
pub type Edge = (NodeId, NodeId);

/// Node payload: a label for humans, features, and the lowest
/// privilege-predicate required to see the node (Def. 3).
#[derive(Debug, Clone, PartialEq)]
pub struct Node {
    /// Human-readable label; used by examples and generators, not required
    /// to be unique.
    pub label: String,
    /// Attribute–value features (§2).
    pub features: Features,
    /// `lowest(n)`: the weakest predicate through which `n` is visible.
    pub lowest: PrivilegeId,
}

/// A directed graph with privilege-annotated nodes.
#[derive(Debug, Clone, Default)]
pub struct Graph {
    nodes: Vec<Node>,
    out: Vec<Vec<NodeId>>,
    inn: Vec<Vec<NodeId>>,
    edge_index: FxHashMap<Edge, u32>,
    edge_list: Vec<Edge>,
}

impl Graph {
    /// Creates an empty graph.
    pub fn new() -> Self {
        Self::default()
    }

    /// Creates an empty graph with node capacity reserved.
    pub fn with_capacity(nodes: usize, edges: usize) -> Self {
        let mut g = Self::new();
        g.nodes.reserve(nodes);
        g.out.reserve(nodes);
        g.inn.reserve(nodes);
        g.edge_list.reserve(edges);
        g.edge_index.reserve(edges);
        g
    }

    /// Adds a node with no features.
    pub fn add_node(&mut self, label: impl Into<String>, lowest: PrivilegeId) -> NodeId {
        self.add_node_with_features(label, Features::new(), lowest)
    }

    /// Adds a node carrying features.
    pub fn add_node_with_features(
        &mut self,
        label: impl Into<String>,
        features: Features,
        lowest: PrivilegeId,
    ) -> NodeId {
        let id = NodeId(self.nodes.len() as u32);
        self.nodes.push(Node {
            label: label.into(),
            features,
            lowest,
        });
        self.out.push(Vec::new());
        self.inn.push(Vec::new());
        id
    }

    /// Adds the directed edge `from → to`.
    ///
    /// Rejects unknown endpoints, duplicates, and self-loops.
    pub fn add_edge(&mut self, from: NodeId, to: NodeId) -> Result<()> {
        if from.index() >= self.nodes.len() || to.index() >= self.nodes.len() {
            return Err(Error::UnknownEdgeEndpoint { from, to });
        }
        if from == to {
            return Err(Error::SelfLoop(from));
        }
        match self.edge_index.entry((from, to)) {
            std::collections::hash_map::Entry::Occupied(_) => {
                return Err(Error::DuplicateEdge { from, to });
            }
            std::collections::hash_map::Entry::Vacant(slot) => {
                slot.insert(self.edge_list.len() as u32);
            }
        }
        self.out[from.index()].push(to);
        self.inn[to.index()].push(from);
        self.edge_list.push((from, to));
        Ok(())
    }

    /// Adds `a → b` and `b → a` (bi-directional relationship, §2).
    pub fn add_bidirectional(&mut self, a: NodeId, b: NodeId) -> Result<()> {
        self.add_edge(a, b)?;
        self.add_edge(b, a)
    }

    /// Number of nodes.
    #[inline]
    pub fn node_count(&self) -> usize {
        self.nodes.len()
    }

    /// Number of directed edges.
    #[inline]
    pub fn edge_count(&self) -> usize {
        self.edge_list.len()
    }

    /// Payload of `id`.
    ///
    /// # Panics
    /// Panics if `id` is not a node of this graph.
    #[inline]
    pub fn node(&self, id: NodeId) -> &Node {
        &self.nodes[id.index()]
    }

    /// Mutable payload of `id`.
    #[inline]
    pub fn node_mut(&mut self, id: NodeId) -> &mut Node {
        &mut self.nodes[id.index()]
    }

    /// `true` if `id` is a node of this graph.
    #[inline]
    pub fn contains_node(&self, id: NodeId) -> bool {
        id.index() < self.nodes.len()
    }

    /// `true` if the directed edge exists.
    #[inline]
    pub fn has_edge(&self, from: NodeId, to: NodeId) -> bool {
        self.edge_index.contains_key(&(from, to))
    }

    /// Position of `edge` in insertion order, if present. Stable for the
    /// lifetime of the graph; used for dense per-edge bookkeeping.
    #[inline]
    pub fn edge_index(&self, edge: Edge) -> Option<usize> {
        self.edge_index.get(&edge).map(|&i| i as usize)
    }

    /// Edge at insertion position `index`.
    ///
    /// # Panics
    /// Panics if `index >= edge_count()`.
    #[inline]
    pub fn edge_at(&self, index: usize) -> Edge {
        self.edge_list[index]
    }

    /// All node ids in insertion order.
    pub fn node_ids(&self) -> impl Iterator<Item = NodeId> + '_ {
        (0..self.nodes.len() as u32).map(NodeId)
    }

    /// All edges in insertion order.
    pub fn edges(&self) -> impl Iterator<Item = Edge> + '_ {
        self.edge_list.iter().copied()
    }

    /// Successors of `id`.
    #[inline]
    pub fn out_neighbors(&self, id: NodeId) -> &[NodeId] {
        &self.out[id.index()]
    }

    /// Predecessors of `id`.
    #[inline]
    pub fn in_neighbors(&self, id: NodeId) -> &[NodeId] {
        &self.inn[id.index()]
    }

    /// Out-degree of `id`.
    #[inline]
    pub fn out_degree(&self, id: NodeId) -> usize {
        self.out[id.index()].len()
    }

    /// In-degree of `id`.
    #[inline]
    pub fn in_degree(&self, id: NodeId) -> usize {
        self.inn[id.index()].len()
    }

    /// Total (undirected) degree of `id`.
    #[inline]
    pub fn degree(&self, id: NodeId) -> usize {
        self.out_degree(id) + self.in_degree(id)
    }

    /// First node with the given label, if any.
    pub fn find_by_label(&self, label: &str) -> Option<NodeId> {
        self.nodes
            .iter()
            .position(|n| n.label == label)
            .map(|i| NodeId(i as u32))
    }

    /// For each node, the number of *other* nodes in its undirected
    /// connected component. This is the "connected (by any length path)"
    /// count underlying the Path Utility Measure (paper §4.1); see
    /// DESIGN.md §3.1 item 1 for why connectivity is undirected.
    pub fn connected_counts(&self) -> Vec<usize> {
        let mut uf = UnionFind::new(self.node_count());
        for (a, b) in self.edges() {
            uf.union(a.index(), b.index());
        }
        (0..self.node_count())
            .map(|i| uf.component_size(i) - 1)
            .collect()
    }

    /// `true` when the underlying undirected graph has a single connected
    /// component (or is empty).
    pub fn is_connected(&self) -> bool {
        if self.node_count() == 0 {
            return true;
        }
        let mut uf = UnionFind::new(self.node_count());
        for (a, b) in self.edges() {
            uf.union(a.index(), b.index());
        }
        uf.component_size(0) == self.node_count()
    }

    /// Nodes reachable from `start` by directed paths of length ≥ 1.
    pub fn reachable_from(&self, start: NodeId) -> BitSet {
        let mut seen = BitSet::new(self.node_count());
        let mut stack: Vec<NodeId> = self.out_neighbors(start).to_vec();
        while let Some(n) = stack.pop() {
            if seen.insert(n.index()) {
                stack.extend_from_slice(self.out_neighbors(n));
            }
        }
        seen
    }

    /// Average per-node count of reachable nodes (directed). This is the
    /// "connected pairs" statistic of the paper's synthetic experiment
    /// (§6.1.2); see DESIGN.md §3.1 item 6.
    pub fn average_reachable(&self) -> f64 {
        if self.node_count() == 0 {
            return 0.0;
        }
        let total: usize = self.node_ids().map(|n| self.reachable_from(n).len()).sum();
        total as f64 / self.node_count() as f64
    }

    /// `true` when the graph contains no directed cycle.
    pub fn is_acyclic(&self) -> bool {
        // Kahn's algorithm: a digraph is acyclic iff a topological order
        // consumes every node.
        let n = self.node_count();
        let mut indeg: Vec<usize> = (0..n).map(|i| self.inn[i].len()).collect();
        let mut queue: Vec<usize> = (0..n).filter(|&i| indeg[i] == 0).collect();
        let mut consumed = 0;
        while let Some(i) = queue.pop() {
            consumed += 1;
            for &next in &self.out[i] {
                indeg[next.index()] -= 1;
                if indeg[next.index()] == 0 {
                    queue.push(next.index());
                }
            }
        }
        consumed == n
    }
}

/// A compressed-sparse-row view of a finished [`Graph`].
///
/// Both adjacency directions are flattened into offset + target arrays,
/// and every adjacency entry carries the *edge id* (the edge's position
/// in [`Graph::edges`] insertion order), so per-edge side tables — mark
/// caches, visited stamps, hidden/visible bitmaps — can be indexed
/// without ever hashing an `(from, to)` pair. Building is `O(V + E)`
/// straight off the graph's insertion-ordered edge list; no hash lookups
/// are involved in construction or traversal.
///
/// The layout is the snapshot currency of the protection hot path: a
/// `Csr` is built once per materialized epoch (or on the fly for a
/// one-shot protection) and shared read-only across every concurrent
/// account generation against that epoch.
#[derive(Debug, Clone, Default)]
pub struct Csr {
    nodes: u32,
    /// `out_offsets[u] .. out_offsets[u + 1]` spans `u`'s out-adjacency.
    out_offsets: Vec<u32>,
    /// Target node of each out-adjacency slot.
    out_targets: Vec<u32>,
    /// Edge id (insertion index) of each out-adjacency slot.
    out_edge_ids: Vec<u32>,
    /// `in_offsets[v] .. in_offsets[v + 1]` spans `v`'s in-adjacency.
    in_offsets: Vec<u32>,
    /// Source node of each in-adjacency slot.
    in_sources: Vec<u32>,
    /// Edge id (insertion index) of each in-adjacency slot.
    in_edge_ids: Vec<u32>,
    /// Endpoints by edge id, mirroring the graph's insertion order.
    endpoints: Vec<(u32, u32)>,
}

impl Csr {
    /// Builds the CSR index of `graph`. Edge ids follow the graph's edge
    /// insertion order, so `graph.edge_at(i) == csr.endpoints(i)`.
    pub fn build(graph: &Graph) -> Csr {
        let n = graph.node_count();
        let e = graph.edge_count();
        let mut out_degree = vec![0u32; n];
        let mut in_degree = vec![0u32; n];
        let mut endpoints = Vec::with_capacity(e);
        for (a, b) in graph.edges() {
            out_degree[a.index()] += 1;
            in_degree[b.index()] += 1;
            endpoints.push((a.0, b.0));
        }
        let mut out_offsets = Vec::with_capacity(n + 1);
        let mut in_offsets = Vec::with_capacity(n + 1);
        let (mut out_total, mut in_total) = (0u32, 0u32);
        for i in 0..n {
            out_offsets.push(out_total);
            in_offsets.push(in_total);
            out_total += out_degree[i];
            in_total += in_degree[i];
        }
        out_offsets.push(out_total);
        in_offsets.push(in_total);
        let mut out_targets = vec![0u32; e];
        let mut out_edge_ids = vec![0u32; e];
        let mut in_sources = vec![0u32; e];
        let mut in_edge_ids = vec![0u32; e];
        // Reuse the degree arrays as per-node write cursors.
        let mut out_cursor = out_offsets[..n].to_vec();
        let mut in_cursor = in_offsets[..n].to_vec();
        for (id, &(a, b)) in endpoints.iter().enumerate() {
            let slot = out_cursor[a as usize] as usize;
            out_targets[slot] = b;
            out_edge_ids[slot] = id as u32;
            out_cursor[a as usize] += 1;
            let slot = in_cursor[b as usize] as usize;
            in_sources[slot] = a;
            in_edge_ids[slot] = id as u32;
            in_cursor[b as usize] += 1;
        }
        Csr {
            nodes: n as u32,
            out_offsets,
            out_targets,
            out_edge_ids,
            in_offsets,
            in_sources,
            in_edge_ids,
            endpoints,
        }
    }

    /// Number of nodes.
    #[inline]
    pub fn node_count(&self) -> usize {
        self.nodes as usize
    }

    /// Number of directed edges.
    #[inline]
    pub fn edge_count(&self) -> usize {
        self.endpoints.len()
    }

    /// Endpoints of the edge with insertion index `id`.
    ///
    /// # Panics
    /// Panics if `id >= edge_count()`.
    #[inline]
    pub fn endpoints(&self, id: usize) -> Edge {
        let (a, b) = self.endpoints[id];
        (NodeId(a), NodeId(b))
    }

    /// Out-adjacency of `u` as parallel `(targets, edge ids)` slices.
    #[inline]
    pub fn out(&self, u: NodeId) -> (&[u32], &[u32]) {
        let lo = self.out_offsets[u.index()] as usize;
        let hi = self.out_offsets[u.index() + 1] as usize;
        (&self.out_targets[lo..hi], &self.out_edge_ids[lo..hi])
    }

    /// In-adjacency of `v` as parallel `(sources, edge ids)` slices.
    #[inline]
    pub fn inn(&self, v: NodeId) -> (&[u32], &[u32]) {
        let lo = self.in_offsets[v.index()] as usize;
        let hi = self.in_offsets[v.index() + 1] as usize;
        (&self.in_sources[lo..hi], &self.in_edge_ids[lo..hi])
    }

    /// Out-degree of `u`.
    #[inline]
    pub fn out_degree(&self, u: NodeId) -> usize {
        (self.out_offsets[u.index() + 1] - self.out_offsets[u.index()]) as usize
    }

    /// In-degree of `v`.
    #[inline]
    pub fn in_degree(&self, v: NodeId) -> usize {
        (self.in_offsets[v.index() + 1] - self.in_offsets[v.index()]) as usize
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::privilege::PrivilegeLattice;

    fn public() -> PrivilegeId {
        PrivilegeLattice::public_only().public()
    }

    fn diamond() -> (Graph, [NodeId; 4]) {
        let p = public();
        let mut g = Graph::new();
        let a = g.add_node("a", p);
        let b = g.add_node("b", p);
        let c = g.add_node("c", p);
        let d = g.add_node("d", p);
        g.add_edge(a, b).unwrap();
        g.add_edge(a, c).unwrap();
        g.add_edge(b, d).unwrap();
        g.add_edge(c, d).unwrap();
        (g, [a, b, c, d])
    }

    #[test]
    fn basic_construction() {
        let (g, [a, b, _, d]) = diamond();
        assert_eq!(g.node_count(), 4);
        assert_eq!(g.edge_count(), 4);
        assert!(g.has_edge(a, b));
        assert!(!g.has_edge(b, a));
        assert_eq!(g.out_degree(a), 2);
        assert_eq!(g.in_degree(d), 2);
        assert_eq!(g.degree(a), 2);
    }

    #[test]
    fn rejects_duplicates_self_loops_and_unknown_endpoints() {
        let (mut g, [a, b, ..]) = diamond();
        assert_eq!(
            g.add_edge(a, b).unwrap_err(),
            Error::DuplicateEdge { from: a, to: b }
        );
        assert_eq!(g.add_edge(a, a).unwrap_err(), Error::SelfLoop(a));
        let ghost = NodeId(99);
        assert!(matches!(
            g.add_edge(a, ghost).unwrap_err(),
            Error::UnknownEdgeEndpoint { .. }
        ));
    }

    #[test]
    fn bidirectional_adds_both_directions() {
        let p = public();
        let mut g = Graph::new();
        let a = g.add_node("a", p);
        let b = g.add_node("b", p);
        g.add_bidirectional(a, b).unwrap();
        assert!(g.has_edge(a, b));
        assert!(g.has_edge(b, a));
    }

    #[test]
    fn connected_counts_on_two_components() {
        let p = public();
        let mut g = Graph::new();
        let a = g.add_node("a", p);
        let b = g.add_node("b", p);
        let c = g.add_node("c", p);
        let _lone = g.add_node("lone", p);
        g.add_edge(a, b).unwrap();
        g.add_edge(b, c).unwrap();
        assert_eq!(g.connected_counts(), vec![2, 2, 2, 0]);
        assert!(!g.is_connected());
    }

    #[test]
    fn reachability_is_directed() {
        let (g, [a, b, _, d]) = diamond();
        let from_a = g.reachable_from(a);
        assert_eq!(from_a.len(), 3);
        let from_b = g.reachable_from(b);
        assert!(from_b.contains(d.index()));
        assert!(!from_b.contains(a.index()));
        assert_eq!(g.reachable_from(d).len(), 0);
    }

    #[test]
    fn average_reachable_on_diamond() {
        let (g, _) = diamond();
        // a reaches 3, b reaches 1, c reaches 1, d reaches 0.
        assert!((g.average_reachable() - 1.25).abs() < 1e-12);
    }

    #[test]
    fn acyclicity() {
        let (g, _) = diamond();
        assert!(g.is_acyclic());
        let p = public();
        let mut cyclic = Graph::new();
        let a = cyclic.add_node("a", p);
        let b = cyclic.add_node("b", p);
        cyclic.add_edge(a, b).unwrap();
        cyclic.add_edge(b, a).unwrap();
        assert!(!cyclic.is_acyclic());
    }

    #[test]
    fn find_by_label_returns_first_match() {
        let p = public();
        let mut g = Graph::new();
        let a = g.add_node("x", p);
        let _b = g.add_node("y", p);
        assert_eq!(g.find_by_label("x"), Some(a));
        assert_eq!(g.find_by_label("z"), None);
    }

    #[test]
    fn empty_graph_is_connected_and_acyclic() {
        let g = Graph::new();
        assert!(g.is_connected());
        assert!(g.is_acyclic());
        assert_eq!(g.average_reachable(), 0.0);
    }

    #[test]
    fn csr_mirrors_adjacency_and_edge_ids() {
        let (g, [a, b, c, d]) = diamond();
        let csr = Csr::build(&g);
        assert_eq!(csr.node_count(), g.node_count());
        assert_eq!(csr.edge_count(), g.edge_count());
        for id in 0..g.edge_count() {
            assert_eq!(csr.endpoints(id), g.edge_at(id));
        }
        for n in g.node_ids() {
            let (targets, edge_ids) = csr.out(n);
            let got: Vec<NodeId> = targets.iter().map(|&t| NodeId(t)).collect();
            assert_eq!(got.as_slice(), g.out_neighbors(n));
            for (&t, &e) in targets.iter().zip(edge_ids) {
                assert_eq!(csr.endpoints(e as usize), (n, NodeId(t)));
            }
            let (sources, edge_ids) = csr.inn(n);
            let got: Vec<NodeId> = sources.iter().map(|&s| NodeId(s)).collect();
            assert_eq!(got.as_slice(), g.in_neighbors(n));
            for (&s, &e) in sources.iter().zip(edge_ids) {
                assert_eq!(csr.endpoints(e as usize), (NodeId(s), n));
            }
            assert_eq!(csr.out_degree(n), g.out_degree(n));
            assert_eq!(csr.in_degree(n), g.in_degree(n));
        }
        assert_eq!(csr.out_degree(a), 2);
        assert_eq!(csr.in_degree(d), 2);
        assert_eq!(csr.out(b).0, &[d.0]);
        assert_eq!(csr.inn(c).0, &[a.0]);
    }

    #[test]
    fn node_payload_access() {
        let p = public();
        let mut g = Graph::new();
        let a = g.add_node_with_features("a", Features::new().with("k", 1i64), p);
        assert_eq!(g.node(a).label, "a");
        assert_eq!(g.node(a).features.len(), 1);
        g.node_mut(a).label = "renamed".into();
        assert_eq!(g.node(a).label, "renamed");
        assert!(g.contains_node(a));
        assert!(!g.contains_node(NodeId(5)));
    }
}
