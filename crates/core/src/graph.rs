//! The directed graph model of paper §2.
//!
//! A graph `G = (N, E)` has nodes carrying features and a `lowest`
//! privilege-predicate (Def. 3), and directed edges between node pairs.
//! Bi-directional relationships are modeled as two directed edges. The
//! representation is a simple digraph (no parallel edges, no self-loops)
//! with both adjacency directions materialized, because account generation
//! walks edges both ways and the opacity measure needs in/out degrees.

use std::fmt;

use crate::error::{Error, Result};
use crate::feature::Features;
use crate::privilege::PrivilegeId;
use crate::util::{BitSet, FxHashMap, UnionFind};

/// Index of a node within its [`Graph`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub struct NodeId(pub u32);

impl NodeId {
    /// The id as a dense index, for addressing per-node side tables (such
    /// as the vectors returned by [`Graph::connected_counts`] or
    /// [`crate::measures::path_percentages`]).
    #[inline]
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

impl fmt::Display for NodeId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "n{}", self.0)
    }
}

/// A directed edge, identified by its endpoints.
pub type Edge = (NodeId, NodeId);

/// Node payload: a label for humans, features, and the lowest
/// privilege-predicate required to see the node (Def. 3).
#[derive(Debug, Clone, PartialEq)]
pub struct Node {
    /// Human-readable label; used by examples and generators, not required
    /// to be unique.
    pub label: String,
    /// Attribute–value features (§2).
    pub features: Features,
    /// `lowest(n)`: the weakest predicate through which `n` is visible.
    pub lowest: PrivilegeId,
}

/// A directed graph with privilege-annotated nodes.
#[derive(Debug, Clone, Default)]
pub struct Graph {
    nodes: Vec<Node>,
    out: Vec<Vec<NodeId>>,
    inn: Vec<Vec<NodeId>>,
    edge_index: FxHashMap<Edge, u32>,
    edge_list: Vec<Edge>,
}

impl Graph {
    /// Creates an empty graph.
    pub fn new() -> Self {
        Self::default()
    }

    /// Creates an empty graph with node capacity reserved.
    pub fn with_capacity(nodes: usize, edges: usize) -> Self {
        let mut g = Self::new();
        g.nodes.reserve(nodes);
        g.out.reserve(nodes);
        g.inn.reserve(nodes);
        g.edge_list.reserve(edges);
        g
    }

    /// Adds a node with no features.
    pub fn add_node(&mut self, label: impl Into<String>, lowest: PrivilegeId) -> NodeId {
        self.add_node_with_features(label, Features::new(), lowest)
    }

    /// Adds a node carrying features.
    pub fn add_node_with_features(
        &mut self,
        label: impl Into<String>,
        features: Features,
        lowest: PrivilegeId,
    ) -> NodeId {
        let id = NodeId(self.nodes.len() as u32);
        self.nodes.push(Node {
            label: label.into(),
            features,
            lowest,
        });
        self.out.push(Vec::new());
        self.inn.push(Vec::new());
        id
    }

    /// Adds the directed edge `from → to`.
    ///
    /// Rejects unknown endpoints, duplicates, and self-loops.
    pub fn add_edge(&mut self, from: NodeId, to: NodeId) -> Result<()> {
        if from.index() >= self.nodes.len() || to.index() >= self.nodes.len() {
            return Err(Error::UnknownEdgeEndpoint { from, to });
        }
        if from == to {
            return Err(Error::SelfLoop(from));
        }
        if self.edge_index.contains_key(&(from, to)) {
            return Err(Error::DuplicateEdge { from, to });
        }
        self.edge_index
            .insert((from, to), self.edge_list.len() as u32);
        self.out[from.index()].push(to);
        self.inn[to.index()].push(from);
        self.edge_list.push((from, to));
        Ok(())
    }

    /// Adds `a → b` and `b → a` (bi-directional relationship, §2).
    pub fn add_bidirectional(&mut self, a: NodeId, b: NodeId) -> Result<()> {
        self.add_edge(a, b)?;
        self.add_edge(b, a)
    }

    /// Number of nodes.
    #[inline]
    pub fn node_count(&self) -> usize {
        self.nodes.len()
    }

    /// Number of directed edges.
    #[inline]
    pub fn edge_count(&self) -> usize {
        self.edge_list.len()
    }

    /// Payload of `id`.
    ///
    /// # Panics
    /// Panics if `id` is not a node of this graph.
    #[inline]
    pub fn node(&self, id: NodeId) -> &Node {
        &self.nodes[id.index()]
    }

    /// Mutable payload of `id`.
    #[inline]
    pub fn node_mut(&mut self, id: NodeId) -> &mut Node {
        &mut self.nodes[id.index()]
    }

    /// `true` if `id` is a node of this graph.
    #[inline]
    pub fn contains_node(&self, id: NodeId) -> bool {
        id.index() < self.nodes.len()
    }

    /// `true` if the directed edge exists.
    #[inline]
    pub fn has_edge(&self, from: NodeId, to: NodeId) -> bool {
        self.edge_index.contains_key(&(from, to))
    }

    /// Position of `edge` in insertion order, if present. Stable for the
    /// lifetime of the graph; used for dense per-edge bookkeeping.
    #[inline]
    pub fn edge_index(&self, edge: Edge) -> Option<usize> {
        self.edge_index.get(&edge).map(|&i| i as usize)
    }

    /// Edge at insertion position `index`.
    ///
    /// # Panics
    /// Panics if `index >= edge_count()`.
    #[inline]
    pub fn edge_at(&self, index: usize) -> Edge {
        self.edge_list[index]
    }

    /// All node ids in insertion order.
    pub fn node_ids(&self) -> impl Iterator<Item = NodeId> + '_ {
        (0..self.nodes.len() as u32).map(NodeId)
    }

    /// All edges in insertion order.
    pub fn edges(&self) -> impl Iterator<Item = Edge> + '_ {
        self.edge_list.iter().copied()
    }

    /// Successors of `id`.
    #[inline]
    pub fn out_neighbors(&self, id: NodeId) -> &[NodeId] {
        &self.out[id.index()]
    }

    /// Predecessors of `id`.
    #[inline]
    pub fn in_neighbors(&self, id: NodeId) -> &[NodeId] {
        &self.inn[id.index()]
    }

    /// Out-degree of `id`.
    #[inline]
    pub fn out_degree(&self, id: NodeId) -> usize {
        self.out[id.index()].len()
    }

    /// In-degree of `id`.
    #[inline]
    pub fn in_degree(&self, id: NodeId) -> usize {
        self.inn[id.index()].len()
    }

    /// Total (undirected) degree of `id`.
    #[inline]
    pub fn degree(&self, id: NodeId) -> usize {
        self.out_degree(id) + self.in_degree(id)
    }

    /// First node with the given label, if any.
    pub fn find_by_label(&self, label: &str) -> Option<NodeId> {
        self.nodes
            .iter()
            .position(|n| n.label == label)
            .map(|i| NodeId(i as u32))
    }

    /// For each node, the number of *other* nodes in its undirected
    /// connected component. This is the "connected (by any length path)"
    /// count underlying the Path Utility Measure (paper §4.1); see
    /// DESIGN.md §3.1 item 1 for why connectivity is undirected.
    pub fn connected_counts(&self) -> Vec<usize> {
        let mut uf = UnionFind::new(self.node_count());
        for (a, b) in self.edges() {
            uf.union(a.index(), b.index());
        }
        (0..self.node_count())
            .map(|i| uf.component_size(i) - 1)
            .collect()
    }

    /// `true` when the underlying undirected graph has a single connected
    /// component (or is empty).
    pub fn is_connected(&self) -> bool {
        if self.node_count() == 0 {
            return true;
        }
        let mut uf = UnionFind::new(self.node_count());
        for (a, b) in self.edges() {
            uf.union(a.index(), b.index());
        }
        uf.component_size(0) == self.node_count()
    }

    /// Nodes reachable from `start` by directed paths of length ≥ 1.
    pub fn reachable_from(&self, start: NodeId) -> BitSet {
        let mut seen = BitSet::new(self.node_count());
        let mut stack: Vec<NodeId> = self.out_neighbors(start).to_vec();
        while let Some(n) = stack.pop() {
            if seen.insert(n.index()) {
                stack.extend_from_slice(self.out_neighbors(n));
            }
        }
        seen
    }

    /// Average per-node count of reachable nodes (directed). This is the
    /// "connected pairs" statistic of the paper's synthetic experiment
    /// (§6.1.2); see DESIGN.md §3.1 item 6.
    pub fn average_reachable(&self) -> f64 {
        if self.node_count() == 0 {
            return 0.0;
        }
        let total: usize = self.node_ids().map(|n| self.reachable_from(n).len()).sum();
        total as f64 / self.node_count() as f64
    }

    /// `true` when the graph contains no directed cycle.
    pub fn is_acyclic(&self) -> bool {
        // Kahn's algorithm: a digraph is acyclic iff a topological order
        // consumes every node.
        let n = self.node_count();
        let mut indeg: Vec<usize> = (0..n).map(|i| self.inn[i].len()).collect();
        let mut queue: Vec<usize> = (0..n).filter(|&i| indeg[i] == 0).collect();
        let mut consumed = 0;
        while let Some(i) = queue.pop() {
            consumed += 1;
            for &next in &self.out[i] {
                indeg[next.index()] -= 1;
                if indeg[next.index()] == 0 {
                    queue.push(next.index());
                }
            }
        }
        consumed == n
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::privilege::PrivilegeLattice;

    fn public() -> PrivilegeId {
        PrivilegeLattice::public_only().public()
    }

    fn diamond() -> (Graph, [NodeId; 4]) {
        let p = public();
        let mut g = Graph::new();
        let a = g.add_node("a", p);
        let b = g.add_node("b", p);
        let c = g.add_node("c", p);
        let d = g.add_node("d", p);
        g.add_edge(a, b).unwrap();
        g.add_edge(a, c).unwrap();
        g.add_edge(b, d).unwrap();
        g.add_edge(c, d).unwrap();
        (g, [a, b, c, d])
    }

    #[test]
    fn basic_construction() {
        let (g, [a, b, _, d]) = diamond();
        assert_eq!(g.node_count(), 4);
        assert_eq!(g.edge_count(), 4);
        assert!(g.has_edge(a, b));
        assert!(!g.has_edge(b, a));
        assert_eq!(g.out_degree(a), 2);
        assert_eq!(g.in_degree(d), 2);
        assert_eq!(g.degree(a), 2);
    }

    #[test]
    fn rejects_duplicates_self_loops_and_unknown_endpoints() {
        let (mut g, [a, b, ..]) = diamond();
        assert_eq!(
            g.add_edge(a, b).unwrap_err(),
            Error::DuplicateEdge { from: a, to: b }
        );
        assert_eq!(g.add_edge(a, a).unwrap_err(), Error::SelfLoop(a));
        let ghost = NodeId(99);
        assert!(matches!(
            g.add_edge(a, ghost).unwrap_err(),
            Error::UnknownEdgeEndpoint { .. }
        ));
    }

    #[test]
    fn bidirectional_adds_both_directions() {
        let p = public();
        let mut g = Graph::new();
        let a = g.add_node("a", p);
        let b = g.add_node("b", p);
        g.add_bidirectional(a, b).unwrap();
        assert!(g.has_edge(a, b));
        assert!(g.has_edge(b, a));
    }

    #[test]
    fn connected_counts_on_two_components() {
        let p = public();
        let mut g = Graph::new();
        let a = g.add_node("a", p);
        let b = g.add_node("b", p);
        let c = g.add_node("c", p);
        let _lone = g.add_node("lone", p);
        g.add_edge(a, b).unwrap();
        g.add_edge(b, c).unwrap();
        assert_eq!(g.connected_counts(), vec![2, 2, 2, 0]);
        assert!(!g.is_connected());
    }

    #[test]
    fn reachability_is_directed() {
        let (g, [a, b, _, d]) = diamond();
        let from_a = g.reachable_from(a);
        assert_eq!(from_a.len(), 3);
        let from_b = g.reachable_from(b);
        assert!(from_b.contains(d.index()));
        assert!(!from_b.contains(a.index()));
        assert_eq!(g.reachable_from(d).len(), 0);
    }

    #[test]
    fn average_reachable_on_diamond() {
        let (g, _) = diamond();
        // a reaches 3, b reaches 1, c reaches 1, d reaches 0.
        assert!((g.average_reachable() - 1.25).abs() < 1e-12);
    }

    #[test]
    fn acyclicity() {
        let (g, _) = diamond();
        assert!(g.is_acyclic());
        let p = public();
        let mut cyclic = Graph::new();
        let a = cyclic.add_node("a", p);
        let b = cyclic.add_node("b", p);
        cyclic.add_edge(a, b).unwrap();
        cyclic.add_edge(b, a).unwrap();
        assert!(!cyclic.is_acyclic());
    }

    #[test]
    fn find_by_label_returns_first_match() {
        let p = public();
        let mut g = Graph::new();
        let a = g.add_node("x", p);
        let _b = g.add_node("y", p);
        assert_eq!(g.find_by_label("x"), Some(a));
        assert_eq!(g.find_by_label("z"), None);
    }

    #[test]
    fn empty_graph_is_connected_and_acyclic() {
        let g = Graph::new();
        assert!(g.is_connected());
        assert!(g.is_acyclic());
        assert_eq!(g.average_reachable(), 0.0);
    }

    #[test]
    fn node_payload_access() {
        let p = public();
        let mut g = Graph::new();
        let a = g.add_node_with_features("a", Features::new().with("k", 1i64), p);
        assert_eq!(g.node(a).label, "a");
        assert_eq!(g.node(a).features.len(), 1);
        g.node_mut(a).label = "renamed".into();
        assert_eq!(g.node(a).label, "renamed");
        assert!(g.contains_node(a));
        assert!(!g.contains_node(NodeId(5)));
    }
}
