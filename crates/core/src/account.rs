//! Protected-account generation (paper §3, §5, Appendix B).
//!
//! A protected account `G'` of `G` (Def. 5) contains, per original node, at
//! most one corresponding node — the original itself when the consumer's
//! predicate dominates its `lowest`, otherwise the most dominant visible
//! surrogate (Def. 9.1–9.2) — and edges such that every path of `G'` maps
//! to a path of `G`, with as many HW-permitted paths of `G` reflected as
//! possible (Def. 9.3).
//!
//! Three built-in strategies are provided, selected by [`Strategy`] via
//! [`ProtectionContext::protect`] (or pluggably through the
//! [`strategy`](crate::strategy) trait layer):
//!
//! * [`Strategy::Surrogate`] / [`generate_for_set`] — the paper's
//!   Surrogate Generation Algorithm (Algorithms 1–3), with the pseudocode
//!   repairs described in DESIGN.md §3.1 item 3 (iterative cycle-safe
//!   walks; absent nodes pass through).
//! * [`Strategy::HideEdges`] / [`generate_hide_for_set`] — the "binary
//!   show/hide" edge baseline of §6: identical node layer, but `Surrogate`
//!   incidences are treated as unusable, so no surrogate edges are
//!   synthesized.
//! * [`Strategy::HideNodes`] / [`generate_naive_node_hide_for_set`] — the
//!   all-or-nothing baseline of Fig. 1(c): sensitive nodes and their
//!   incident edges simply vanish.
//!
//! # HW-permitted paths (Def. 8)
//!
//! For account predicate `p`, a path `n1 → … → n2` of `G` is permitted iff
//! (1) no incidence on it is marked `Hide`, with `n1`'s incidence on the
//! first edge and `n2`'s on the last edge marked `Visible`, and (2) if the
//! direct edge `(n1, n2)` exists in `G`, both of its incidences are
//! `Visible`. [`permitted_pairs`] computes the induced pair relation and is
//! the oracle used by `validate` and the property tests.

use std::collections::VecDeque;

use crate::error::Result;
use crate::graph::{Csr, Edge, Graph, NodeId};
use crate::marking::{Marking, MarkingStore};
use crate::privilege::{PrivilegeId, PrivilegeLattice};
use crate::surrogate::SurrogateCatalog;
use crate::util::{BitSet, FxHashMap, FxHashSet};

/// How an account node corresponds to its original (Def. 4).
#[derive(Debug, Clone, PartialEq)]
pub enum Correspondence {
    /// `n' = n`: all features identical; `infoScore = 1`.
    Original,
    /// `n'` is a registered surrogate of `n` with the given `infoScore`.
    Surrogate {
        /// `infoScore(n')` of the chosen surrogate (§4.1).
        info_score: f64,
    },
}

impl Correspondence {
    /// `infoScore(n')` (§4.1): 1 for originals, the catalog score for
    /// surrogates.
    pub fn info_score(&self) -> f64 {
        match self {
            Correspondence::Original => 1.0,
            Correspondence::Surrogate { info_score } => *info_score,
        }
    }
}

/// The protection strategy used to produce an account.
///
/// This is the thin, serializable *selector* for the three built-in
/// strategies — the right type for CLI flags, wire formats, and cache
/// keys. The open extension point is the
/// [`ProtectionStrategy`](crate::strategy::ProtectionStrategy) trait,
/// which this enum implements by dispatching to the built-ins; new
/// redaction policies implement the trait instead of growing this enum.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
#[non_exhaustive]
pub enum Strategy {
    /// Surrogate nodes + surrogate edges (the paper's contribution).
    Surrogate,
    /// Surrogate nodes, but protected incidences drop their edges.
    HideEdges,
    /// No surrogates at all: sensitive nodes and incident edges vanish.
    HideNodes,
}

impl Strategy {
    /// All built-in strategies, in paper order. A slice, not an array, so
    /// growing the `#[non_exhaustive]` enum does not change a public type.
    pub const ALL: &'static [Strategy] = &[
        Strategy::Surrogate,
        Strategy::HideEdges,
        Strategy::HideNodes,
    ];

    /// The stable name used for CLI flags, registries, and cache keys.
    pub fn name(self) -> &'static str {
        match self {
            Strategy::Surrogate => "surrogate",
            Strategy::HideEdges => "hide",
            Strategy::HideNodes => "naive",
        }
    }

    /// Parses a [`name`](Self::name) back into a selector.
    pub fn parse(name: &str) -> Option<Strategy> {
        Strategy::ALL.iter().copied().find(|s| s.name() == name)
    }
}

impl std::fmt::Display for Strategy {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.name())
    }
}

/// Everything needed to protect one graph: the graph, its privilege
/// lattice, the providers' incidence markings, and the surrogate catalog.
#[derive(Debug, Clone, Copy)]
pub struct ProtectionContext<'a> {
    /// The original graph `G`.
    pub graph: &'a Graph,
    /// Partial order of privilege-predicates.
    pub lattice: &'a PrivilegeLattice,
    /// Node–edge incidence markings (Def. 7).
    pub markings: &'a MarkingStore,
    /// Registered surrogate versions of nodes (§3.1).
    pub catalog: &'a SurrogateCatalog,
    /// Optional prebuilt CSR index of `graph` (see [`with_csr`](Self::with_csr)).
    csr: Option<&'a Csr>,
}

impl<'a> ProtectionContext<'a> {
    /// Bundles the four inputs of the generation algorithm.
    pub fn new(
        graph: &'a Graph,
        lattice: &'a PrivilegeLattice,
        markings: &'a MarkingStore,
        catalog: &'a SurrogateCatalog,
    ) -> Self {
        Self {
            graph,
            lattice,
            markings,
            catalog,
            csr: None,
        }
    }

    /// Attaches a prebuilt [`Csr`] index of [`graph`](Self::graph), so
    /// repeated protections against one materialized snapshot skip the
    /// `O(V + E)` rebuild. The index **must** describe the same graph.
    pub fn with_csr(mut self, csr: &'a Csr) -> Self {
        debug_assert_eq!(csr.node_count(), self.graph.node_count());
        debug_assert_eq!(csr.edge_count(), self.graph.edge_count());
        self.csr = Some(csr);
        self
    }

    /// The attached CSR index, if any.
    pub fn csr(&self) -> Option<&'a Csr> {
        self.csr
    }

    /// Generates an account with the given strategy.
    pub fn protect(&self, p: PrivilegeId, strategy: Strategy) -> Result<ProtectedAccount> {
        self.protect_set(&[p], strategy)
    }

    /// Generates an account for a multi-predicate high-water set with the
    /// given strategy.
    pub fn protect_set(
        &self,
        preds: &[PrivilegeId],
        strategy: Strategy,
    ) -> Result<ProtectedAccount> {
        match strategy {
            Strategy::Surrogate => generate_for_set(self, preds),
            Strategy::HideEdges => generate_hide_for_set(self, preds),
            Strategy::HideNodes => generate_naive_node_hide_for_set(self, preds),
        }
    }
}

/// A protected account `G' = (N', E')` with its correspondence back to `G`.
#[derive(Debug, Clone)]
pub struct ProtectedAccount {
    graph: Graph,
    hw: Vec<PrivilegeId>,
    strategy: Strategy,
    /// Original node → account node.
    to_account: Vec<Option<NodeId>>,
    /// Account node → original node.
    to_original: Vec<NodeId>,
    /// Account node → how it corresponds.
    correspondence: Vec<Correspondence>,
    /// Account edges that summarize multi-edge paths of `G` rather than
    /// corresponding to a single original edge.
    surrogate_edges: FxHashSet<Edge>,
}

impl ProtectedAccount {
    /// The account graph `G'`.
    pub fn graph(&self) -> &Graph {
        &self.graph
    }

    /// The primary predicate this account was generated for. For the
    /// common singleton case this is *the* predicate; for multi-predicate
    /// accounts prefer [`high_water`](Self::high_water).
    pub fn predicate(&self) -> PrivilegeId {
        self.hw[0]
    }

    /// The high-water set the account was generated for (`HW(G')`, Def. 6).
    pub fn high_water(&self) -> &[PrivilegeId] {
        &self.hw
    }

    /// Strategy that produced the account.
    pub fn strategy(&self) -> Strategy {
        self.strategy
    }

    /// Account node corresponding to original `n`, if any.
    pub fn account_node(&self, original: NodeId) -> Option<NodeId> {
        self.to_account.get(original.index()).copied().flatten()
    }

    /// Original node behind account node `n'`.
    pub fn original_node(&self, account: NodeId) -> NodeId {
        self.to_original[account.index()]
    }

    /// Correspondence of account node `n'`.
    pub fn correspondence(&self, account: NodeId) -> &Correspondence {
        &self.correspondence[account.index()]
    }

    /// `true` if the given account edge is a surrogate edge.
    pub fn is_surrogate_edge(&self, edge: Edge) -> bool {
        self.surrogate_edges.contains(&edge)
    }

    /// Number of surrogate edges.
    pub fn surrogate_edge_count(&self) -> usize {
        self.surrogate_edges.len()
    }

    /// Number of account nodes that are surrogates.
    pub fn surrogate_node_count(&self) -> usize {
        self.correspondence
            .iter()
            .filter(|c| matches!(c, Correspondence::Surrogate { .. }))
            .count()
    }

    /// Original nodes with no corresponding node in the account.
    pub fn hidden_nodes(&self) -> Vec<NodeId> {
        self.to_account
            .iter()
            .enumerate()
            .filter(|(_, a)| a.is_none())
            .map(|(i, _)| NodeId(i as u32))
            .collect()
    }

    /// `true` if original edge `(u, v)` is represented by a corresponding
    /// direct edge of the account (opacity = 0 case, Fig. 4).
    pub fn original_edge_present(&self, edge: Edge) -> bool {
        match (self.account_node(edge.0), self.account_node(edge.1)) {
            (Some(u), Some(v)) => self.graph.has_edge(u, v),
            _ => false,
        }
    }

    /// Original edges with no corresponding account edge — the protected
    /// edges whose inference the opacity measure quantifies.
    pub fn protected_edges<'g>(&'g self, original: &'g Graph) -> impl Iterator<Item = Edge> + 'g {
        original.edges().filter(|&e| !self.original_edge_present(e))
    }
}

/// Per-node inclusion plan for the node layer of Algorithm 1.
enum NodePlan {
    Original,
    Surrogate {
        label: String,
        features: crate::feature::Features,
        lowest: PrivilegeId,
        info_score: f64,
    },
    Absent,
}

/// Node layer shared by [`generate`] and [`generate_hide`]: originals when
/// dominated (Def. 9.1), otherwise the most dominant visible surrogate
/// (Def. 9.2), otherwise absent.
fn plan_nodes(
    ctx: &ProtectionContext<'_>,
    preds: &[PrivilegeId],
    use_catalog: bool,
) -> Vec<NodePlan> {
    ctx.graph
        .node_ids()
        .map(|n| {
            if ctx.lattice.set_dominates(preds, ctx.graph.node(n).lowest) {
                return NodePlan::Original;
            }
            if use_catalog {
                if let Some(def) = ctx
                    .catalog
                    .most_dominant_visible_for_set(ctx.lattice, n, preds)
                {
                    return NodePlan::Surrogate {
                        label: def.label.clone(),
                        features: def.features.clone(),
                        lowest: def.lowest,
                        info_score: def.info_score,
                    };
                }
            }
            NodePlan::Absent
        })
        .collect()
}

/// Materializes the node layer into an account skeleton.
fn build_node_layer(
    ctx: &ProtectionContext<'_>,
    preds: &[PrivilegeId],
    strategy: Strategy,
    plans: Vec<NodePlan>,
) -> ProtectedAccount {
    let original = ctx.graph;
    let mut graph = Graph::with_capacity(original.node_count(), original.edge_count());
    let mut to_account = vec![None; original.node_count()];
    let mut to_original = Vec::new();
    let mut correspondence = Vec::new();

    for (i, plan) in plans.into_iter().enumerate() {
        let n = NodeId(i as u32);
        match plan {
            NodePlan::Original => {
                let node = original.node(n);
                let id = graph.add_node_with_features(
                    node.label.clone(),
                    node.features.clone(),
                    node.lowest,
                );
                to_account[i] = Some(id);
                to_original.push(n);
                correspondence.push(Correspondence::Original);
            }
            NodePlan::Surrogate {
                label,
                features,
                lowest,
                info_score,
            } => {
                let id = graph.add_node_with_features(label, features, lowest);
                to_account[i] = Some(id);
                to_original.push(n);
                correspondence.push(Correspondence::Surrogate { info_score });
            }
            NodePlan::Absent => {}
        }
    }

    ProtectedAccount {
        graph,
        hw: preds.to_vec(),
        strategy,
        to_account,
        to_original,
        correspondence,
        surrogate_edges: FxHashSet::default(),
    }
}

/// Adds every Visible–Visible original edge whose endpoints are present
/// (Algorithm 1 line 13–14).
fn add_shown_edges(
    ctx: &ProtectionContext<'_>,
    preds: &[PrivilegeId],
    account: &mut ProtectedAccount,
) {
    for edge in ctx.graph.edges() {
        if !ctx.markings.edge_visible_for_set(edge, preds) {
            continue;
        }
        if let (Some(u), Some(v)) = (
            account.to_account[edge.0.index()],
            account.to_account[edge.1.index()],
        ) {
            account
                .graph
                .add_edge(u, v)
                .expect("original edges are unique and loop-free");
        }
    }
}

/// Shortest HW-permitted reach from source `u` (the repaired Algorithm 2):
/// maps every present node `v` reachable by a Def. 8-permitted path from
/// `u` to the length of the shortest such path.
///
/// BFS whose state is the edge just traversed, so a node entered both via
/// `Visible` and via `Surrogate` incidences is handled correctly, and
/// cycles terminate (each edge enters the queue at most once). Intermediate
/// nodes may carry any non-`Hide` marking (Def. 8 cond. 1 constrains only
/// the endpoint incidences); absent nodes pass through (DESIGN.md §3.1
/// item 3).
fn permitted_reach(
    ctx: &ProtectionContext<'_>,
    preds: &[PrivilegeId],
    present: &[bool],
    u: NodeId,
    visited: &mut BitSet,
) -> FxHashMap<NodeId, u32> {
    let g = ctx.graph;
    let m = ctx.markings;
    visited.clear();
    let mut reach: FxHashMap<NodeId, u32> = FxHashMap::default();
    let mut queue: VecDeque<(Edge, u32)> = VecDeque::new();

    // Def. 8: the source's incidence on the first edge must be Visible.
    for &x in g.out_neighbors(u) {
        let e = (u, x);
        if !m.edge_hidden_for_set(e, preds) && m.mark_for_set(u, e, preds) == Marking::Visible {
            queue.push_back((e, 1));
        }
    }

    while let Some((e_in, depth)) = queue.pop_front() {
        let e_idx = g.edge_index(e_in).expect("edge from adjacency");
        if !visited.insert(e_idx) {
            continue;
        }
        let x = e_in.1;

        // Def. 8 cond. 1: the target's incidence on the last edge must be
        // Visible; cond. 2: a direct edge between the pair, if any, must be
        // Visible–Visible. Only present nodes can be endpoints.
        if x != u
            && present[x.index()]
            && m.mark_for_set(x, e_in, preds) == Marking::Visible
            && (!g.has_edge(u, x) || m.edge_visible_for_set((u, x), preds))
        {
            reach.entry(x).or_insert(depth); // BFS ⇒ first hit is shortest
        }

        for &y in g.out_neighbors(x) {
            let e_out = (x, y);
            if !m.edge_hidden_for_set(e_out, preds) {
                queue.push_back((e_out, depth + 1));
            }
        }
    }
    reach
}

/// Per-edge marking tables for one high-water set, resolved once per
/// protection call.
///
/// The generator consults exactly four per-edge facts — seed usability
/// (source incidence `Visible`), endpoint usability (destination
/// incidence `Visible`), unusability (either side `Hide`), and direct
/// showability (both sides `Visible`). Resolving them once into a dense
/// byte-per-edge flag array turns the former `O(E × sources)` hash-map
/// resolutions into one `O(E × |HW|)` pass, and the BFS afterwards reads
/// a single byte per edge instead of several spread-out bool arrays.
struct EdgeTables {
    /// Bitwise OR of the `SRC_VISIBLE` / `DST_VISIBLE` / `HIDDEN` /
    /// `VISIBLE` flags, indexed by edge id.
    flags: Vec<u8>,
}

impl EdgeTables {
    /// Source incidence resolves `Visible` (Def. 8 seed condition).
    const SRC_VISIBLE: u8 = 1;
    /// Destination incidence resolves `Visible` (Def. 8 cond. 1).
    const DST_VISIBLE: u8 = 1 << 1;
    /// Either incidence resolves `Hide` — may not be shown nor used.
    const HIDDEN: u8 = 1 << 2;
    /// Both incidences resolve `Visible` — directly showable.
    const VISIBLE: u8 = 1 << 3;

    fn resolve(ctx: &ProtectionContext<'_>, preds: &[PrivilegeId], csr: &Csr) -> EdgeTables {
        let e = csr.edge_count();
        let m = ctx.markings;
        let flags_for = |src: Marking, dst: Marking| {
            let mut f = 0u8;
            if src == Marking::Visible {
                f |= Self::SRC_VISIBLE;
            }
            if dst == Marking::Visible {
                f |= Self::DST_VISIBLE;
            }
            if src == Marking::Hide || dst == Marking::Hide {
                f |= Self::HIDDEN;
            }
            if src == Marking::Visible && dst == Marking::Visible {
                f |= Self::VISIBLE;
            }
            f
        };
        // Uniform store: every incidence resolves to the default marking.
        if m.rule_count() == 0 {
            let d = m.default_marking();
            return EdgeTables {
                flags: vec![flags_for(d, d); e],
            };
        }
        let mut flags = vec![0u8; e];
        for (id, slot) in flags.iter_mut().enumerate() {
            let edge = csr.endpoints(id);
            let src = m.mark_for_set(edge.0, edge, preds);
            let dst = m.mark_for_set(edge.1, edge, preds);
            *slot = flags_for(src, dst);
        }
        EdgeTables { flags }
    }

    /// Both incidences `Visible` — the edge may be shown directly.
    #[inline]
    fn visible(&self, id: u32) -> bool {
        self.flags[id as usize] & Self::VISIBLE != 0
    }
}

/// Tuning knobs for [`generate_with_options`]; mainly for ablation
/// studies of the design choices DESIGN.md calls out.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct GenerateOptions {
    /// Apply the appendix's "no shorter HW-permitted path" redundancy rule
    /// (DESIGN.md §3.1 item 3, step 2). Disabling it emits a surrogate
    /// edge for *every* permitted pair without a direct original edge —
    /// still sound and maximally connected, but with many redundant edges
    /// ("they make the graph less clear").
    pub redundancy_filter: bool,
}

impl Default for GenerateOptions {
    fn default() -> Self {
        Self {
            redundancy_filter: true,
        }
    }
}

/// The Surrogate Generation Algorithm (Appendix B, Algorithms 1–3),
/// producing the maximally informative account for predicate `p`
/// (Theorem 1), with `HW(G') = {p}`.
///
/// Surrogate edges are emitted for exactly the HW-permitted pairs that do
/// not decompose into strictly shorter permitted pairs through a present
/// intermediate — the appendix's "no shorter HW-permitted path" redundancy
/// rule. Decomposable pairs are connected transitively by the pieces, so
/// maximal connectivity (Def. 9.3) holds by induction on path length.
///
/// # Migration
/// Deprecated in favor of [`ProtectionContext::protect`] (or, for serving
/// workloads, `plus_store::AccountService::get_account`), which route
/// through the pluggable [`ProtectionStrategy`](crate::strategy) layer:
/// `generate_for_set(&ctx, &[p])` becomes `ctx.protect(p, Strategy::Surrogate)`.
#[deprecated(
    since = "0.2.0",
    note = "use `ProtectionContext::protect(p, Strategy::Surrogate)` or the \
            `strategy::ProtectionStrategy` trait; see the strategy module docs"
)]
pub fn generate(ctx: &ProtectionContext<'_>, p: PrivilegeId) -> Result<ProtectedAccount> {
    generate_with_options(ctx, &[p], GenerateOptions::default())
}

/// [`generate`] for a multi-predicate high-water set (Def. 6): node
/// visibility and incidence markings take the most permissive
/// interpretation across members, per Def. 8's "for some p dominated by a
/// member of HW". Members that are dominated by other members are
/// redundant and removed up front.
pub fn generate_for_set(
    ctx: &ProtectionContext<'_>,
    preds: &[PrivilegeId],
) -> Result<ProtectedAccount> {
    generate_with_options(ctx, preds, GenerateOptions::default())
}

/// Full-control variant of [`generate`] / [`generate_for_set`].
///
/// Runs against a [`Csr`] index of the graph — the one attached via
/// [`ProtectionContext::with_csr`], or one built on the fly — so the
/// marking resolution, the permitted-reach BFS, and the redundancy
/// filter all address dense per-edge/per-node arrays instead of hashing
/// node or edge keys. Surrogate edges are emitted in canonical
/// `(source, target)` order, so accounts are deterministic and
/// comparable edge-for-edge with [`reference::generate_with_options`].
///
/// # Panics
/// Panics if `preds` is empty.
pub fn generate_with_options(
    ctx: &ProtectionContext<'_>,
    preds: &[PrivilegeId],
    options: GenerateOptions,
) -> Result<ProtectedAccount> {
    assert!(!preds.is_empty(), "high-water set must be non-empty");
    ctx.catalog.validate(ctx.graph, ctx.lattice)?;
    let preds = ctx.lattice.maximal_antichain(preds);
    let plans = plan_nodes(ctx, &preds, true);
    let mut account = build_node_layer(ctx, &preds, Strategy::Surrogate, plans);

    let owned_csr;
    let csr = match ctx.csr {
        Some(csr) => csr,
        None => {
            owned_csr = Csr::build(ctx.graph);
            &owned_csr
        }
    };
    let tables = EdgeTables::resolve(ctx, &preds, csr);
    let n = csr.node_count();
    let e = csr.edge_count();

    // Visible–Visible original edges with both endpoints present, in
    // insertion order (Algorithm 1 lines 13–14, as in `add_shown_edges`).
    for id in 0..e {
        if !tables.visible(id as u32) {
            continue;
        }
        let (a, b) = csr.endpoints(id);
        if let (Some(u), Some(v)) = (account.to_account[a.index()], account.to_account[b.index()]) {
            account
                .graph
                .add_edge(u, v)
                .expect("original edges are unique and loop-free");
        }
    }

    let present: Vec<bool> = (0..n).map(|i| account.to_account[i].is_some()).collect();

    // Pre-filtered adjacency, resolved once per call and shared by every
    // per-source BFS: the non-hidden out-edges of each node in CSR
    // layout, with the per-edge Def. 8 facts folded into a byte — bit 0:
    // the edge can *record* its target as a permitted pair (destination
    // incidence Visible and target present); bit 1: the edge can *seed*
    // a walk (source incidence Visible). The O(V × E) walks below then
    // read two small sequential arrays instead of gathering from the
    // flag table and the presence map on every edge examination.
    const REC: u8 = 1;
    const SEED: u8 = 1 << 1;
    let mut fadj_start = vec![0u32; n + 1];
    let mut fadj_target: Vec<u32> = Vec::with_capacity(e);
    let mut fadj_bits: Vec<u8> = Vec::with_capacity(e);
    for (w, start) in fadj_start.iter_mut().enumerate().take(n) {
        *start = fadj_target.len() as u32;
        let (targets, edge_ids) = csr.out(NodeId(w as u32));
        for (&x, &id) in targets.iter().zip(edge_ids) {
            let f = tables.flags[id as usize];
            if f & EdgeTables::HIDDEN != 0 {
                continue;
            }
            let mut bits = 0u8;
            if f & EdgeTables::DST_VISIBLE != 0 && present[x as usize] {
                bits |= REC;
            }
            if f & EdgeTables::SRC_VISIBLE != 0 {
                bits |= SEED;
            }
            fadj_target.push(x);
            fadj_bits.push(bits);
        }
    }
    fadj_start[n] = fadj_target.len() as u32;

    // Per-source BFS over the non-hidden subgraph (the repaired
    // Algorithm 2; see `permitted_reach` for the Def. 8 reasoning). The
    // frontier holds *nodes* in level-synchronous `Vec`s, and every node
    // expands its out-edges at most once per source — at its BFS-minimal
    // depth — so each edge is examined exactly once per source and
    // frontier traffic is O(V), not O(E). Examining edge `(w, x)` at
    // `depth(w) + 1` both records the row for `x` (first qualifying
    // examination = shortest permitted walk, because examinations happen
    // in nondecreasing source depth) and enqueues `x` if unvisited.
    //
    // `status` packs the per-node visited stamp (low 32 bits) and
    // row-recorded stamp (high 32 bits) into one word, so the hot path
    // touches a single cache line per node; all scratch is stamped
    // instead of cleared, keeping per-source setup at O(out-degree).
    let mut status = vec![0u64; n];
    let mut cand_depth = vec![0u32; n];
    let mut direct = vec![0u32; n];
    let mut direct_id = vec![0u32; n];
    let mut frontier: Vec<u32> = Vec::new();
    let mut next_frontier: Vec<u32> = Vec::new();
    let mut stamp = 0u32;

    // Shortest permitted-pair rows, arena-allocated: source `u`'s rows
    // live in `rows_flat[row_start[u]..row_start[u + 1]]`, sorted by
    // target so the redundancy filter can binary-search `d(w, v)`
    // instead of hashing. `deep_flat` carries the same rows per source as
    // `(depth, target)` in nondecreasing depth order — recorded for free
    // by the level-synchronous BFS — so the redundancy filter can stop
    // scanning witnesses at the candidate's own depth. One pair of
    // growing buffers instead of `Vec`s per source keeps the BFS free of
    // per-source reallocation.
    let mut rows_flat: Vec<(u32, u32)> = Vec::new();
    let mut deep_flat: Vec<(u32, u32)> = Vec::new();
    let mut row_start: Vec<u32> = vec![0u32; n + 1];

    for u in ctx.graph.node_ids() {
        let ui = u.index();
        row_start[ui] = rows_flat.len() as u32;
        if !present[ui] {
            continue;
        }
        stamp += 1;
        let (targets, edge_ids) = csr.out(u);
        // Def. 8 cond. 2 lookup table: direct edges out of `u`.
        for (&t, &id) in targets.iter().zip(edge_ids) {
            direct[t as usize] = stamp;
            direct_id[t as usize] = id;
        }
        // Examines filtered edge `(w, x)` (bits `b`) entering `x` at
        // `depth`: Def. 8 cond. 1 — recordability (destination incidence
        // Visible, target present) was folded into `REC`; cond. 2 — a
        // direct edge between the pair, if any, must be Visible–Visible.
        let recorded = (stamp as u64) << 32;
        macro_rules! examine {
            ($x:expr, $b:expr, $depth:expr, $next:expr) => {
                let xi = $x as usize;
                let s = status[xi];
                if $b & REC != 0
                    && (s >> 32) as u32 != stamp
                    && $x != u.0
                    && (direct[xi] != stamp
                        || tables.flags[direct_id[xi] as usize] & EdgeTables::VISIBLE != 0)
                {
                    status[xi] = (status[xi] & 0xFFFF_FFFF) | recorded;
                    cand_depth[xi] = $depth;
                    deep_flat.push(($depth, $x));
                }
                if s as u32 != stamp {
                    status[xi] = (status[xi] & !0xFFFF_FFFF) | stamp as u64;
                    $next.push($x);
                }
            };
        }
        let fedges = |w: usize| {
            let (lo, hi) = (fadj_start[w] as usize, fadj_start[w + 1] as usize);
            fadj_target[lo..hi].iter().zip(&fadj_bits[lo..hi])
        };
        // Def. 8: the source's incidence on the first edge must be
        // Visible. `u` itself stays unvisited: if a cycle re-enters it,
        // it expands *all* its non-hidden out-edges as an intermediate
        // (re-examining a seed edge is harmless — the row conditions are
        // depth-independent, so it either recorded at depth 1 or never
        // will).
        frontier.clear();
        for (&x, &b) in fedges(ui) {
            if b & SEED == 0 {
                continue;
            }
            examine!(x, b, 1, frontier);
        }
        let mut depth = 1;
        while !frontier.is_empty() {
            depth += 1;
            next_frontier.clear();
            for &w in &frontier {
                for (&x, &b) in fedges(w as usize) {
                    examine!(x, b, depth, next_frontier);
                }
            }
            std::mem::swap(&mut frontier, &mut next_frontier);
        }
        // Harvest the recorded targets by scanning node ids in order: the
        // rows come out target-sorted without a comparison sort, which
        // both the redundancy filter's binary search and the canonical
        // (deterministic) emission order below rely on.
        for (x, s) in status.iter().enumerate() {
            if (s >> 32) as u32 == stamp {
                rows_flat.push((x as u32, cand_depth[x]));
            }
        }
    }
    row_start[n] = rows_flat.len() as u32;
    let rows = |w: usize| &rows_flat[row_start[w] as usize..row_start[w + 1] as usize];
    let rows_by_depth = |w: usize| &deep_flat[row_start[w] as usize..row_start[w + 1] as usize];

    for u in ctx.graph.node_ids() {
        let ui = u.index();
        let own = rows(ui);
        if own.is_empty() {
            continue;
        }
        stamp += 1;
        // A Visible–Visible direct edge is already shown; any other direct
        // edge forbids the pair (Def. 8 cond. 2) and was never recorded.
        let (targets, _) = csr.out(u);
        for &t in targets {
            direct[t as usize] = stamp;
        }
        let u_acct = account.to_account[ui].expect("present source");
        for &(v, d) in own {
            if direct[v as usize] == stamp {
                continue;
            }
            // Redundancy rule: skip when the pair splits into strictly
            // shorter permitted pairs via a present intermediate — a
            // witness must be strictly closer than the candidate, so only
            // the depth-ascending prefix `dw < d` is worth scanning.
            if options.redundancy_filter {
                let decomposable =
                    rows_by_depth(ui)
                        .iter()
                        .take_while(|&&(dw, _)| dw < d)
                        .any(|&(_, w)| {
                            w != v && {
                                let via = rows(w as usize);
                                via.binary_search_by_key(&v, |&(t, _)| t)
                                    .is_ok_and(|pos| via[pos].1 < d)
                            }
                        });
                if decomposable {
                    continue;
                }
            }
            let v_acct = account.to_account[v as usize].expect("present target");
            account
                .graph
                .add_edge(u_acct, v_acct)
                .expect("pairs are unique and loop-free");
            account.surrogate_edges.insert((u_acct, v_acct));
        }
    }
    Ok(account)
}

/// The "binary show/hide" edge baseline (§6): same node layer as the
/// surrogate algorithm, but protected incidences simply drop their edges —
/// no surrogate edges are synthesized.
///
/// # Migration
/// Deprecated: use `ctx.protect(p, Strategy::HideEdges)` instead.
#[deprecated(
    since = "0.2.0",
    note = "use `ProtectionContext::protect(p, Strategy::HideEdges)` or the \
            `strategy::ProtectionStrategy` trait; see the strategy module docs"
)]
pub fn generate_hide(ctx: &ProtectionContext<'_>, p: PrivilegeId) -> Result<ProtectedAccount> {
    generate_hide_for_set(ctx, &[p])
}

/// [`generate_hide`] for a multi-predicate high-water set.
pub fn generate_hide_for_set(
    ctx: &ProtectionContext<'_>,
    preds: &[PrivilegeId],
) -> Result<ProtectedAccount> {
    assert!(!preds.is_empty(), "high-water set must be non-empty");
    ctx.catalog.validate(ctx.graph, ctx.lattice)?;
    let preds = ctx.lattice.maximal_antichain(preds);
    let plans = plan_nodes(ctx, &preds, true);
    let mut account = build_node_layer(ctx, &preds, Strategy::HideEdges, plans);
    add_shown_edges(ctx, &preds, &mut account);
    Ok(account)
}

/// The naïve all-or-nothing baseline of Fig. 1(c): nodes appear only when
/// the predicate dominates their `lowest` (no surrogates), and edges only
/// when Visible–Visible with both endpoints present.
///
/// # Migration
/// Deprecated: use `ctx.protect(p, Strategy::HideNodes)` instead.
#[deprecated(
    since = "0.2.0",
    note = "use `ProtectionContext::protect(p, Strategy::HideNodes)` or the \
            `strategy::ProtectionStrategy` trait; see the strategy module docs"
)]
pub fn generate_naive_node_hide(
    ctx: &ProtectionContext<'_>,
    p: PrivilegeId,
) -> Result<ProtectedAccount> {
    generate_naive_node_hide_for_set(ctx, &[p])
}

/// [`generate_naive_node_hide`] for a multi-predicate high-water set.
pub fn generate_naive_node_hide_for_set(
    ctx: &ProtectionContext<'_>,
    preds: &[PrivilegeId],
) -> Result<ProtectedAccount> {
    assert!(!preds.is_empty(), "high-water set must be non-empty");
    let preds = ctx.lattice.maximal_antichain(preds);
    let plans = plan_nodes(ctx, &preds, false);
    let mut account = build_node_layer(ctx, &preds, Strategy::HideNodes, plans);
    add_shown_edges(ctx, &preds, &mut account);
    Ok(account)
}

/// The HW-permitted pair relation of Def. 8, restricted to nodes present in
/// the account (`present[n]`). This is the connectivity obligation of
/// Def. 9.3: for every pair in the relation, a maximally informative
/// account must contain a directed path between the corresponding nodes.
pub fn permitted_pairs(
    ctx: &ProtectionContext<'_>,
    preds: &[PrivilegeId],
    present: &[bool],
) -> FxHashSet<(NodeId, NodeId)> {
    let mut pairs = FxHashSet::default();
    let mut visited = BitSet::new(ctx.graph.edge_count());
    for u in ctx.graph.node_ids() {
        if !present[u.index()] {
            continue;
        }
        for (v, _) in permitted_reach(ctx, preds, present, u, &mut visited) {
            pairs.insert((u, v));
        }
    }
    pairs
}

/// The pre-CSR Materialized-path generator, kept as an executable
/// specification.
///
/// This is the hash-map implementation the CSR fast path replaced:
/// per-source `permitted_reach` walks resolving markings through
/// [`MarkingStore`] lookups and collecting reach rows into hash maps.
/// It exists so equivalence tests can pin the optimized generator
/// against an independent implementation on arbitrary graphs — both
/// paths emit surrogate edges in canonical `(source, target)` order, so
/// their accounts (and everything downstream: lineage rows, wire
/// frames) must match byte for byte.
pub mod reference {
    use super::*;

    /// Hash-based counterpart of [`generate_with_options`](super::generate_with_options).
    ///
    /// # Panics
    /// Panics if `preds` is empty.
    pub fn generate_with_options(
        ctx: &ProtectionContext<'_>,
        preds: &[PrivilegeId],
        options: GenerateOptions,
    ) -> Result<ProtectedAccount> {
        assert!(!preds.is_empty(), "high-water set must be non-empty");
        ctx.catalog.validate(ctx.graph, ctx.lattice)?;
        let preds = ctx.lattice.maximal_antichain(preds);
        let plans = plan_nodes(ctx, &preds, true);
        let mut account = build_node_layer(ctx, &preds, Strategy::Surrogate, plans);
        add_shown_edges(ctx, &preds, &mut account);

        let present: Vec<bool> = (0..ctx.graph.node_count())
            .map(|i| account.to_account[i].is_some())
            .collect();
        let mut visited = BitSet::new(ctx.graph.edge_count());

        // Shortest permitted-pair distances from every present source.
        let reach_by_source: Vec<FxHashMap<NodeId, u32>> = ctx
            .graph
            .node_ids()
            .map(|u| {
                if present[u.index()] {
                    permitted_reach(ctx, &preds, &present, u, &mut visited)
                } else {
                    FxHashMap::default()
                }
            })
            .collect();

        for u in ctx.graph.node_ids() {
            let reach = &reach_by_source[u.index()];
            // Canonical emission order, matching the CSR path.
            let mut pairs: Vec<(NodeId, u32)> = reach.iter().map(|(&v, &d)| (v, d)).collect();
            pairs.sort_unstable();
            for (v, d) in pairs {
                // A Visible–Visible direct edge is already shown; any other
                // direct edge forbids the pair (Def. 8 cond. 2) and was never
                // recorded in `reach`.
                if ctx.graph.has_edge(u, v) {
                    continue;
                }
                // Redundancy rule: skip when the pair splits into strictly
                // shorter permitted pairs via a present intermediate.
                if options.redundancy_filter {
                    let decomposable = reach.iter().any(|(&w, &dw)| {
                        w != v
                            && dw < d
                            && reach_by_source[w.index()]
                                .get(&v)
                                .is_some_and(|&dwv| dwv < d)
                    });
                    if decomposable {
                        continue;
                    }
                }
                let u_acct = account.to_account[u.index()].expect("present source");
                let v_acct = account.to_account[v.index()].expect("present target");
                account
                    .graph
                    .add_edge(u_acct, v_acct)
                    .expect("pairs are unique and loop-free");
                account.surrogate_edges.insert((u_acct, v_acct));
            }
        }
        Ok(account)
    }

    /// Hash-based counterpart of [`generate_for_set`](super::generate_for_set).
    pub fn generate_for_set(
        ctx: &ProtectionContext<'_>,
        preds: &[PrivilegeId],
    ) -> Result<ProtectedAccount> {
        generate_with_options(ctx, preds, GenerateOptions::default())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::feature::Features;
    use crate::surrogate::SurrogateDef;

    /// Chain a→b→c with b's role protected for Public: surrogate edge a→c.
    struct Fixture {
        graph: Graph,
        lattice: PrivilegeLattice,
        markings: MarkingStore,
        catalog: SurrogateCatalog,
        ids: Vec<NodeId>,
    }

    impl Fixture {
        fn ctx(&self) -> ProtectionContext<'_> {
            ProtectionContext::new(&self.graph, &self.lattice, &self.markings, &self.catalog)
        }
    }

    /// a → b → c where b requires High; incidences at b marked Surrogate
    /// for Public (the Fig. 2(b)/(d) pattern on a minimal chain).
    fn chain_fixture(with_surrogate_node: bool) -> Fixture {
        let (lattice, preds) = PrivilegeLattice::flat(&["High"]).unwrap();
        let high = preds[0];
        let public = lattice.public();
        let mut graph = Graph::new();
        let a = graph.add_node("a", public);
        let b = graph.add_node("b", high);
        let c = graph.add_node("c", public);
        graph.add_edge(a, b).unwrap();
        graph.add_edge(b, c).unwrap();
        let mut markings = MarkingStore::new();
        markings.set_node(b, public, Marking::Surrogate);
        let mut catalog = SurrogateCatalog::new();
        if with_surrogate_node {
            catalog.add(
                b,
                SurrogateDef {
                    label: "b'".into(),
                    features: Features::new(),
                    lowest: public,
                    info_score: 0.4,
                },
            );
        }
        Fixture {
            graph,
            lattice,
            markings,
            catalog,
            ids: vec![a, b, c],
        }
    }

    #[test]
    fn hidden_node_yields_surrogate_edge() {
        let fx = chain_fixture(false);
        let public = fx.lattice.public();
        let account = generate_for_set(&fx.ctx(), &[public]).unwrap();
        let (a, b, c) = (fx.ids[0], fx.ids[1], fx.ids[2]);
        assert!(account.account_node(b).is_none(), "b hidden");
        let a2 = account.account_node(a).unwrap();
        let c2 = account.account_node(c).unwrap();
        assert!(account.graph().has_edge(a2, c2), "surrogate edge a→c");
        assert!(account.is_surrogate_edge((a2, c2)));
        assert_eq!(account.surrogate_edge_count(), 1);
        assert_eq!(account.graph().edge_count(), 1);
    }

    #[test]
    fn surrogate_node_is_isolated_but_present() {
        // Fig. 2(d) pattern: surrogate node exists, incidences still S.
        let fx = chain_fixture(true);
        let public = fx.lattice.public();
        let account = generate_for_set(&fx.ctx(), &[public]).unwrap();
        let b2 = account.account_node(fx.ids[1]).unwrap();
        assert!(matches!(
            account.correspondence(b2),
            Correspondence::Surrogate { .. }
        ));
        assert_eq!(account.graph().degree(b2), 0, "b' isolated");
        assert_eq!(account.graph().node(b2).label, "b'");
        let a2 = account.account_node(fx.ids[0]).unwrap();
        let c2 = account.account_node(fx.ids[2]).unwrap();
        assert!(account.graph().has_edge(a2, c2));
        assert_eq!(account.surrogate_node_count(), 1);
    }

    #[test]
    fn visible_markings_show_surrogate_node_in_place() {
        // Fig. 2(a) pattern: same node layer, but all incidences Visible:
        // the surrogate node appears wired in place of the original.
        let mut fx = chain_fixture(true);
        fx.markings = MarkingStore::new();
        let public = fx.lattice.public();
        let account = generate_for_set(&fx.ctx(), &[public]).unwrap();
        let a2 = account.account_node(fx.ids[0]).unwrap();
        let b2 = account.account_node(fx.ids[1]).unwrap();
        let c2 = account.account_node(fx.ids[2]).unwrap();
        assert!(account.graph().has_edge(a2, b2));
        assert!(account.graph().has_edge(b2, c2));
        assert!(
            !account.graph().has_edge(a2, c2),
            "no redundant surrogate edge"
        );
        assert_eq!(account.surrogate_edge_count(), 0);
    }

    #[test]
    fn hide_markings_break_the_path() {
        // Fig. 2(c) pattern: Hide on the incidences drops both edges.
        let mut fx = chain_fixture(true);
        let public = fx.lattice.public();
        fx.markings = MarkingStore::new();
        fx.markings.set_node(fx.ids[1], public, Marking::Hide);
        let account = generate_for_set(&fx.ctx(), &[public]).unwrap();
        assert_eq!(account.graph().edge_count(), 0);
        let b2 = account.account_node(fx.ids[1]).unwrap();
        assert_eq!(account.graph().degree(b2), 0);
    }

    #[test]
    fn hide_strategy_never_synthesizes_edges() {
        let fx = chain_fixture(true);
        let public = fx.lattice.public();
        let account = generate_hide_for_set(&fx.ctx(), &[public]).unwrap();
        assert_eq!(account.graph().edge_count(), 0);
        assert_eq!(account.strategy(), Strategy::HideEdges);
        assert!(
            account.account_node(fx.ids[1]).is_some(),
            "node layer keeps surrogate"
        );
    }

    #[test]
    fn naive_strategy_drops_sensitive_nodes() {
        let fx = chain_fixture(true);
        let public = fx.lattice.public();
        let account = generate_naive_node_hide_for_set(&fx.ctx(), &[public]).unwrap();
        assert!(account.account_node(fx.ids[1]).is_none(), "no surrogates");
        assert_eq!(account.graph().node_count(), 2);
        assert_eq!(account.graph().edge_count(), 0);
        assert_eq!(account.hidden_nodes(), vec![fx.ids[1]]);
    }

    #[test]
    fn edge_protection_draws_edge_past_the_target() {
        // a→b→c with edge (a,b) protected as (V at a, S at b): consumers
        // may know a leads onward, but not directly to b (DESIGN.md §3.1
        // item 5). Expect surrogate edge a→c, no a→b.
        let (lattice, _) = PrivilegeLattice::flat(&[]).unwrap();
        let public = lattice.public();
        let mut graph = Graph::new();
        let a = graph.add_node("a", public);
        let b = graph.add_node("b", public);
        let c = graph.add_node("c", public);
        graph.add_edge(a, b).unwrap();
        graph.add_edge(b, c).unwrap();
        let mut markings = MarkingStore::new();
        markings.set(b, (a, b), public, Marking::Surrogate);
        let catalog = SurrogateCatalog::new();
        let ctx = ProtectionContext::new(&graph, &lattice, &markings, &catalog);
        let account = generate_for_set(&ctx, &[public]).unwrap();
        let a2 = account.account_node(a).unwrap();
        let b2 = account.account_node(b).unwrap();
        let c2 = account.account_node(c).unwrap();
        assert!(!account.graph().has_edge(a2, b2), "protected edge hidden");
        assert!(account.graph().has_edge(b2, c2), "unprotected edge kept");
        assert!(account.graph().has_edge(a2, c2), "surrogate edge past b");
        assert!(account.is_surrogate_edge((a2, c2)));
    }

    #[test]
    fn no_surrogate_edge_when_nothing_is_downstream() {
        // Bipartite degeneracy (§6.2): protected edge into a sink cannot be
        // surrogated; result equals hiding.
        let (lattice, _) = PrivilegeLattice::flat(&[]).unwrap();
        let public = lattice.public();
        let mut graph = Graph::new();
        let a = graph.add_node("a", public);
        let b = graph.add_node("b", public);
        graph.add_edge(a, b).unwrap();
        let mut markings = MarkingStore::new();
        markings.set(b, (a, b), public, Marking::Surrogate);
        let catalog = SurrogateCatalog::new();
        let ctx = ProtectionContext::new(&graph, &lattice, &markings, &catalog);
        let account = generate_for_set(&ctx, &[public]).unwrap();
        assert_eq!(account.graph().edge_count(), 0);
    }

    #[test]
    fn cycles_terminate_and_connect() {
        // a→b→c→a cycle with b's role surrogated: a→c via surrogate edge,
        // c→a shown.
        let (lattice, _) = PrivilegeLattice::flat(&[]).unwrap();
        let public = lattice.public();
        let mut graph = Graph::new();
        let a = graph.add_node("a", public);
        let b = graph.add_node("b", public);
        let c = graph.add_node("c", public);
        graph.add_edge(a, b).unwrap();
        graph.add_edge(b, c).unwrap();
        graph.add_edge(c, a).unwrap();
        let mut markings = MarkingStore::new();
        markings.set_node(b, public, Marking::Surrogate);
        let catalog = SurrogateCatalog::new();
        let ctx = ProtectionContext::new(&graph, &lattice, &markings, &catalog);
        let account = generate_for_set(&ctx, &[public]).unwrap();
        let a2 = account.account_node(a).unwrap();
        let c2 = account.account_node(c).unwrap();
        assert!(
            account.graph().has_edge(a2, c2),
            "surrogate edge inside cycle"
        );
        assert!(account.graph().has_edge(c2, a2), "visible edge kept");
    }

    #[test]
    fn direct_edge_with_surrogate_marking_is_never_recreated() {
        // a→b plus a→x→b detour: the (V,S)-marked direct edge must not be
        // reborn as a surrogate edge via the detour (Def. 8 cond. 2).
        let (lattice, _) = PrivilegeLattice::flat(&[]).unwrap();
        let public = lattice.public();
        let mut graph = Graph::new();
        let a = graph.add_node("a", public);
        let b = graph.add_node("b", public);
        let x = graph.add_node("x", public);
        graph.add_edge(a, b).unwrap();
        graph.add_edge(a, x).unwrap();
        graph.add_edge(x, b).unwrap();
        let mut markings = MarkingStore::new();
        markings.set(b, (a, b), public, Marking::Surrogate);
        // Make the detour pass-through so a surrogate edge would be the
        // only possible connection.
        markings.set(x, (a, x), public, Marking::Surrogate);
        let catalog = SurrogateCatalog::new();
        let ctx = ProtectionContext::new(&graph, &lattice, &markings, &catalog);
        let account = generate_for_set(&ctx, &[public]).unwrap();
        let a2 = account.account_node(a).unwrap();
        let b2 = account.account_node(b).unwrap();
        assert!(
            !account.graph().has_edge(a2, b2),
            "protected direct edge must stay hidden"
        );
    }

    #[test]
    fn absent_node_with_visible_incidences_passes_through() {
        // DESIGN.md §3.1 item 3(c): node hidden without surrogate but its
        // incidences are Visible — connectivity must still be preserved.
        let (lattice, preds) = PrivilegeLattice::flat(&["High"]).unwrap();
        let high = preds[0];
        let public = lattice.public();
        let mut graph = Graph::new();
        let a = graph.add_node("a", public);
        let b = graph.add_node("b", high); // hidden for Public, no surrogate
        let c = graph.add_node("c", public);
        graph.add_edge(a, b).unwrap();
        graph.add_edge(b, c).unwrap();
        let markings = MarkingStore::new(); // everything Visible
        let catalog = SurrogateCatalog::new();
        let ctx = ProtectionContext::new(&graph, &lattice, &markings, &catalog);
        let account = generate_for_set(&ctx, &[public]).unwrap();
        let a2 = account.account_node(a).unwrap();
        let c2 = account.account_node(c).unwrap();
        assert!(
            account.graph().has_edge(a2, c2),
            "maximal connectivity across an absent node"
        );
        assert!(account.is_surrogate_edge((a2, c2)));
    }

    #[test]
    fn permitted_pairs_match_def8_on_chain() {
        let fx = chain_fixture(false);
        let public = fx.lattice.public();
        let ctx = fx.ctx();
        let present = vec![true, false, true];
        let pairs = permitted_pairs(&ctx, &[public], &present);
        let (a, c) = (fx.ids[0], fx.ids[2]);
        assert!(pairs.contains(&(a, c)));
        assert_eq!(pairs.len(), 1);
    }

    #[test]
    fn protect_dispatches_by_strategy() {
        let fx = chain_fixture(true);
        let public = fx.lattice.public();
        let ctx = fx.ctx();
        assert_eq!(
            ctx.protect(public, Strategy::Surrogate).unwrap().strategy(),
            Strategy::Surrogate
        );
        assert_eq!(
            ctx.protect(public, Strategy::HideEdges).unwrap().strategy(),
            Strategy::HideEdges
        );
        assert_eq!(
            ctx.protect(public, Strategy::HideNodes).unwrap().strategy(),
            Strategy::HideNodes
        );
    }

    /// Flat lattice with incomparable A and B; one node at each level plus
    /// a public chain: pubA → nA → nB → pubB.
    fn incomparable_fixture() -> (Graph, PrivilegeLattice, [NodeId; 4], [PrivilegeId; 2]) {
        let (lattice, preds) = PrivilegeLattice::flat(&["A", "B"]).unwrap();
        let (a, b) = (preds[0], preds[1]);
        let public = lattice.public();
        let mut graph = Graph::new();
        let pub_a = graph.add_node("pubA", public);
        let na = graph.add_node("nA", a);
        let nb = graph.add_node("nB", b);
        let pub_b = graph.add_node("pubB", public);
        graph.add_edge(pub_a, na).unwrap();
        graph.add_edge(na, nb).unwrap();
        graph.add_edge(nb, pub_b).unwrap();
        (graph, lattice, [pub_a, na, nb, pub_b], [a, b])
    }

    #[test]
    fn multi_predicate_account_unions_visibility() {
        let (graph, lattice, [_, na, nb, _], [a, b]) = incomparable_fixture();
        let markings = MarkingStore::new();
        let catalog = SurrogateCatalog::new();
        let ctx = ProtectionContext::new(&graph, &lattice, &markings, &catalog);
        // Single-predicate accounts each miss the other branch's node.
        let only_a = generate_for_set(&ctx, &[a]).unwrap();
        assert!(only_a.account_node(na).is_some());
        assert!(only_a.account_node(nb).is_none());
        // The {A, B} account (Def. 6 set) sees everything.
        let both = generate_for_set(&ctx, &[a, b]).unwrap();
        assert_eq!(both.graph().node_count(), 4);
        assert_eq!(both.graph().edge_count(), 3);
        assert_eq!(both.high_water(), &[a, b]);
        assert_eq!(both.surrogate_edge_count(), 0);
    }

    #[test]
    fn multi_predicate_account_bridges_with_surrogate_edges() {
        let (graph, lattice, [pub_a, na, _, pub_b], [a, _]) = incomparable_fixture();
        let markings = MarkingStore::new();
        let catalog = SurrogateCatalog::new();
        let ctx = ProtectionContext::new(&graph, &lattice, &markings, &catalog);
        // With only A, nB is absent: a surrogate edge bridges nA → pubB.
        let only_a = generate_for_set(&ctx, &[a]).unwrap();
        let na2 = only_a.account_node(na).unwrap();
        let pub_b2 = only_a.account_node(pub_b).unwrap();
        assert!(only_a.graph().has_edge(na2, pub_b2));
        assert!(only_a.is_surrogate_edge((na2, pub_b2)));
        let pub_a2 = only_a.account_node(pub_a).unwrap();
        assert!(crate::query::reaches(only_a.graph(), pub_a2, pub_b2));
    }

    #[test]
    fn set_markings_take_most_permissive_member() {
        let (graph, lattice, [pub_a, na, _, _], [a, b]) = incomparable_fixture();
        let mut markings = MarkingStore::new();
        // The (pubA, nA) edge is hidden from A but visible to B.
        markings.set_edge((pub_a, na), a, Marking::Hide);
        markings.set_edge((pub_a, na), b, Marking::Visible);
        let catalog = SurrogateCatalog::new();
        let ctx = ProtectionContext::new(&graph, &lattice, &markings, &catalog);
        let only_a = generate_for_set(&ctx, &[a]).unwrap();
        assert!(!only_a.original_edge_present((pub_a, na)), "hidden via A");
        let both = generate_for_set(&ctx, &[a, b]).unwrap();
        assert!(
            both.original_edge_present((pub_a, na)),
            "the B grant re-admits the edge for the {{A,B}} account"
        );
    }

    #[test]
    fn dominated_members_are_redundant() {
        // {High, Public} reduces to {High}: same account either way.
        let fx = chain_fixture(true);
        let high = fx.lattice.by_name("High").unwrap();
        let public = fx.lattice.public();
        let ctx = fx.ctx();
        let single = generate_for_set(&ctx, &[high]).unwrap();
        let set = generate_for_set(&ctx, &[public, high]).unwrap();
        assert_eq!(set.high_water(), &[high]);
        assert_eq!(single.graph().node_count(), set.graph().node_count());
        assert_eq!(single.graph().edge_count(), set.graph().edge_count());
    }

    #[test]
    fn redundancy_filter_ablation_keeps_soundness() {
        // Without the filter, every permitted pair becomes an edge: a
        // superset of the filtered account with identical connectivity.
        let (graph, lattice, _, [a, _]) = incomparable_fixture();
        let markings = MarkingStore::new();
        let catalog = SurrogateCatalog::new();
        let ctx = ProtectionContext::new(&graph, &lattice, &markings, &catalog);
        let filtered = generate_for_set(&ctx, &[a]).unwrap();
        let unfiltered = generate_with_options(
            &ctx,
            &[a],
            GenerateOptions {
                redundancy_filter: false,
            },
        )
        .unwrap();
        assert!(unfiltered.graph().edge_count() >= filtered.graph().edge_count());
        for (u2, v2) in filtered.graph().edges() {
            let u = filtered.original_node(u2);
            let v = filtered.original_node(v2);
            let uu = unfiltered.account_node(u).unwrap();
            let vv = unfiltered.account_node(v).unwrap();
            assert!(unfiltered.graph().has_edge(uu, vv));
        }
        let violations = crate::validate::check_all(&ctx, &unfiltered);
        assert!(violations.is_empty(), "{violations:?}");
    }

    #[test]
    fn protected_edges_lists_unrepresented_originals() {
        let fx = chain_fixture(false);
        let public = fx.lattice.public();
        let account = generate_for_set(&fx.ctx(), &[public]).unwrap();
        let protected: Vec<Edge> = account.protected_edges(&fx.graph).collect();
        // Both original edges touched the hidden b.
        assert_eq!(protected.len(), 2);
    }

    #[test]
    fn csr_path_matches_reference_path_on_fixtures() {
        let fixtures = [chain_fixture(false), chain_fixture(true)];
        for fx in &fixtures {
            let public = fx.lattice.public();
            let ctx = fx.ctx();
            let csr = Csr::build(&fx.graph);
            for ctx in [ctx, ctx.with_csr(&csr)] {
                let fast = generate_for_set(&ctx, &[public]).unwrap();
                let slow = reference::generate_for_set(&ctx, &[public]).unwrap();
                assert_eq!(fast.graph().node_count(), slow.graph().node_count());
                let fast_edges: Vec<Edge> = fast.graph().edges().collect();
                let slow_edges: Vec<Edge> = slow.graph().edges().collect();
                assert_eq!(fast_edges, slow_edges, "identical edges, same order");
                assert_eq!(fast.surrogate_edge_count(), slow.surrogate_edge_count());
            }
        }
        let (graph, lattice, _, [a, b]) = incomparable_fixture();
        let markings = MarkingStore::new();
        let catalog = SurrogateCatalog::new();
        let ctx = ProtectionContext::new(&graph, &lattice, &markings, &catalog);
        for preds in [vec![a], vec![b], vec![a, b]] {
            let fast = generate_for_set(&ctx, &preds).unwrap();
            let slow = reference::generate_for_set(&ctx, &preds).unwrap();
            let fast_edges: Vec<Edge> = fast.graph().edges().collect();
            let slow_edges: Vec<Edge> = slow.graph().edges().collect();
            assert_eq!(fast_edges, slow_edges);
        }
    }

    #[test]
    fn original_edge_present_detects_shown_edges() {
        let mut fx = chain_fixture(true);
        fx.markings = MarkingStore::new();
        let public = fx.lattice.public();
        let account = generate_for_set(&fx.ctx(), &[public]).unwrap();
        assert!(account.original_edge_present((fx.ids[0], fx.ids[1])));
        assert!(account.original_edge_present((fx.ids[1], fx.ids[2])));
        assert!(!account.original_edge_present((fx.ids[0], fx.ids[2])));
    }
}
