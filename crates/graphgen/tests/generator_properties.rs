//! Property tests for the workload generators: every generated workload
//! satisfies the invariants its experiment relies on.

use proptest::prelude::*;

use graphgen::{
    all_motifs, social, synthetic, workflow, EdgeProtection, SocialConfig, SyntheticConfig,
    WorkflowConfig,
};
use surrogate_core::account::{generate_for_set, generate_hide_for_set, ProtectionContext};
use surrogate_core::surrogate::SurrogateCatalog;
use surrogate_core::validate::check_all;

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// Synthetic graphs honor §6.1.2: connected, acyclic, the protected
    /// sample is the requested fraction, and reachability at least the
    /// target (where the complete graph allows it).
    #[test]
    fn synthetic_invariants(
        nodes in 20usize..120,
        target_frac in 0.05f64..0.5,
        protect in 0.0f64..1.0,
        seed in any::<u64>(),
    ) {
        let config = SyntheticConfig {
            nodes,
            target_connected_pairs: nodes as f64 * target_frac,
            protect_fraction: protect,
            seed,
        };
        let data = synthetic::generate(config);
        prop_assert!(data.graph.is_connected());
        prop_assert!(data.graph.is_acyclic());
        prop_assert!(data.connected_pairs() >= config.target_connected_pairs.min((nodes - 1) as f64 / 2.0));
        let expected = (data.graph.edge_count() as f64 * protect).round() as usize;
        prop_assert_eq!(data.protected_edges.len(), expected.min(data.graph.edge_count()));
        // Sample is unique and drawn from the graph's edges.
        let mut sorted = data.protected_edges.clone();
        sorted.sort();
        sorted.dedup();
        prop_assert_eq!(sorted.len(), data.protected_edges.len());
        for &(a, b) in &data.protected_edges {
            prop_assert!(data.graph.has_edge(a, b));
        }
    }

    /// Protection of synthetic workloads always generates valid accounts
    /// and never leaks a protected edge.
    #[test]
    fn synthetic_protection_is_valid(
        nodes in 10usize..60,
        protect in 0.1f64..0.9,
        seed in any::<u64>(),
    ) {
        let data = synthetic::generate(SyntheticConfig {
            nodes,
            target_connected_pairs: nodes as f64 / 5.0,
            protect_fraction: protect,
            seed,
        });
        let catalog = SurrogateCatalog::new();
        let public = data.lattice.public();
        for protection in [EdgeProtection::Surrogate, EdgeProtection::Hide] {
            let markings = data.markings(protection);
            let ctx = ProtectionContext::new(&data.graph, &data.lattice, &markings, &catalog);
            let account = match protection {
                EdgeProtection::Surrogate => generate_for_set(&ctx, &[public]).unwrap(),
                EdgeProtection::Hide => generate_hide_for_set(&ctx, &[public]).unwrap(),
            };
            for &edge in &data.protected_edges {
                prop_assert!(
                    !account.original_edge_present(edge),
                    "{protection:?} leaked {edge:?}"
                );
            }
            if matches!(protection, EdgeProtection::Surrogate) {
                let violations = check_all(&ctx, &account);
                prop_assert!(violations.is_empty(), "{violations:?}");
            }
        }
    }

    /// Workflows are connected DAGs with exactly the configured shape, and
    /// their public accounts keep every node (all sensitive nodes carry
    /// surrogates).
    #[test]
    fn workflow_invariants(
        stages in 1usize..6,
        width in 1usize..6,
        sensitive in 0.0f64..1.0,
        seed in any::<u64>(),
    ) {
        let wf = workflow::generate(WorkflowConfig {
            stages,
            width,
            max_fan_in: 3,
            sensitive_fraction: sensitive,
            seed,
        });
        prop_assert!(wf.graph.is_acyclic());
        prop_assert!(wf.graph.is_connected());
        prop_assert_eq!(wf.graph.node_count(), width + stages * width * 2);
        prop_assert_eq!(wf.outputs.len(), width);
        let ctx = ProtectionContext::new(&wf.graph, &wf.lattice, &wf.markings, &wf.catalog);
        let account = generate_for_set(&ctx, &[wf.public]).unwrap();
        prop_assert_eq!(account.graph().node_count(), wf.graph.node_count());
        prop_assert_eq!(account.surrogate_node_count(), wf.sensitive.len());
    }

    /// Social networks are connected, ties are symmetric, and the
    /// investigator view is the identity.
    #[test]
    fn social_invariants(
        people in 4usize..40,
        ties in 1usize..4,
        affiliations in 0usize..4,
        seed in any::<u64>(),
    ) {
        let net = social::generate(SocialConfig {
            people,
            ties_per_person: ties,
            affiliations,
            members_per_affiliation: 3,
            lone_members_per_affiliation: affiliations % 2,
            seed,
        });
        prop_assert!(net.graph.is_connected());
        for (a, b) in net.graph.edges() {
            prop_assert!(net.graph.has_edge(b, a));
        }
        let ctx = ProtectionContext::new(&net.graph, &net.lattice, &net.markings, &net.catalog);
        let account = generate_for_set(&ctx, &[net.investigator]).unwrap();
        prop_assert_eq!(account.graph().edge_count(), net.graph.edge_count());
        prop_assert_eq!(account.surrogate_node_count(), 0);
    }
}

#[test]
fn motifs_are_stable_fixtures() {
    // Motifs are deterministic by definition; protect both ways and check
    // the §6.2 structural claims once more at the generator level.
    for motif in all_motifs() {
        let catalog = SurrogateCatalog::new();
        let public = motif.lattice.public();
        let sur_markings = motif.markings(EdgeProtection::Surrogate);
        let ctx = ProtectionContext::new(&motif.graph, &motif.lattice, &sur_markings, &catalog);
        let account = generate_for_set(&ctx, &[public]).unwrap();
        let violations = check_all(&ctx, &account);
        assert!(violations.is_empty(), "{:?}: {violations:?}", motif.kind);
    }
}
