//! The seven classic graph motifs of the paper's §6.1.1 / Fig. 6, each
//! with its designated protected edge ("the first edge").
//!
//! The published figure is a small drawing, so orientations are fixed here
//! such that the paper's own §6.2 explanations hold (DESIGN.md §3.1
//! item 4):
//!
//! * **bipartite** is two levels deep — the protected edge ends at a sink,
//!   so no surrogate edge can be drawn and surrogating degenerates to
//!   hiding;
//! * **lattice** keeps the protected edge's endpoints connected through
//!   parallel paths, so the surrogate transformation changes nothing;
//! * the other five motifs lose connectivity under hiding that surrogate
//!   edges restore.

use surrogate_core::graph::{Edge, Graph};
use surrogate_core::marking::{Marking, MarkingStore};
use surrogate_core::privilege::PrivilegeLattice;

/// The motif families of Fig. 6.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum MotifKind {
    /// Hub with one inbound spoke (the protected edge) and three outbound.
    Star,
    /// Five nodes in a line.
    Chain,
    /// Grid with parallel paths around the protected edge.
    Lattice,
    /// Entry node feeding a diamond.
    Diamond,
    /// Root with two children; one child has two children.
    Tree,
    /// Two leaves merging into a node that feeds a root.
    InvertedTree,
    /// Complete 2×2 bipartite graph.
    Bipartite,
}

impl MotifKind {
    /// All motifs in the paper's Fig. 6/7 order.
    pub const ALL: [MotifKind; 7] = [
        MotifKind::Star,
        MotifKind::Chain,
        MotifKind::Lattice,
        MotifKind::Diamond,
        MotifKind::Tree,
        MotifKind::InvertedTree,
        MotifKind::Bipartite,
    ];

    /// Display name matching the figure.
    pub fn name(self) -> &'static str {
        match self {
            MotifKind::Star => "Star",
            MotifKind::Chain => "Chain",
            MotifKind::Lattice => "Lattice",
            MotifKind::Diamond => "Diamond",
            MotifKind::Tree => "Tree",
            MotifKind::InvertedTree => "Inverted Tree",
            MotifKind::Bipartite => "Bipartite",
        }
    }
}

/// How the evaluation protects the designated edge (§6 / DESIGN.md §3.1
/// item 5): for edge `(u, v)`, the destination-side incidence is marked —
/// consumers may learn `u` leads onward, but not directly to `v`.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum EdgeProtection {
    /// Destination incidence marked `Surrogate`: paths through the edge
    /// are summarized by surrogate edges.
    Surrogate,
    /// Destination incidence marked `Hide`: the edge simply vanishes.
    Hide,
}

/// A motif instance: an all-public graph plus the protected edge.
#[derive(Debug, Clone)]
pub struct Motif {
    /// Which motif.
    pub kind: MotifKind,
    /// The 4–5 node graph (all nodes Public).
    pub graph: Graph,
    /// The dashed "first edge" of Fig. 6.
    pub protected_edge: Edge,
    /// Single-predicate lattice used by the evaluation.
    pub lattice: PrivilegeLattice,
}

impl Motif {
    /// Builds a motif.
    pub fn new(kind: MotifKind) -> Self {
        let lattice = PrivilegeLattice::public_only();
        let p = lattice.public();
        let mut g = Graph::new();
        let mut add = |label: &str| g.add_node(label, p);
        let protected_edge;
        match kind {
            MotifKind::Star => {
                let spoke = add("n0");
                let hub = add("hub");
                let l2 = add("n2");
                let l3 = add("n3");
                let l4 = add("n4");
                protected_edge = (spoke, hub);
                for (a, b) in [(spoke, hub), (hub, l2), (hub, l3), (hub, l4)] {
                    g.add_edge(a, b).expect("unique");
                }
            }
            MotifKind::Chain => {
                let n: Vec<_> = (0..5).map(|i| add(&format!("n{i}"))).collect();
                protected_edge = (n[0], n[1]);
                for w in n.windows(2) {
                    g.add_edge(w[0], w[1]).expect("unique");
                }
            }
            MotifKind::Lattice => {
                let a = add("a");
                let b = add("b");
                let c = add("c");
                let d = add("d");
                let e = add("e");
                protected_edge = (a, b);
                for (x, y) in [(a, b), (a, c), (b, d), (c, d), (d, e)] {
                    g.add_edge(x, y).expect("unique");
                }
            }
            MotifKind::Diamond => {
                let entry = add("entry");
                let top = add("top");
                let left = add("left");
                let right = add("right");
                let bottom = add("bottom");
                protected_edge = (entry, top);
                for (x, y) in [
                    (entry, top),
                    (top, left),
                    (top, right),
                    (left, bottom),
                    (right, bottom),
                ] {
                    g.add_edge(x, y).expect("unique");
                }
            }
            MotifKind::Tree => {
                let root = add("root");
                let l = add("l");
                let r = add("r");
                let ll = add("ll");
                let lr = add("lr");
                protected_edge = (root, l);
                for (x, y) in [(root, l), (root, r), (l, ll), (l, lr)] {
                    g.add_edge(x, y).expect("unique");
                }
            }
            MotifKind::InvertedTree => {
                let leaf_a = add("leaf_a");
                let leaf_b = add("leaf_b");
                let merge = add("merge");
                let root = add("root");
                protected_edge = (leaf_a, merge);
                for (x, y) in [(leaf_a, merge), (leaf_b, merge), (merge, root)] {
                    g.add_edge(x, y).expect("unique");
                }
            }
            MotifKind::Bipartite => {
                let s0 = add("s0");
                let s1 = add("s1");
                let t0 = add("t0");
                let t1 = add("t1");
                protected_edge = (s0, t0);
                for (x, y) in [(s0, t0), (s0, t1), (s1, t0), (s1, t1)] {
                    g.add_edge(x, y).expect("unique");
                }
            }
        }
        Self {
            kind,
            graph: g,
            protected_edge,
            lattice,
        }
    }

    /// Markings protecting the designated edge with the given mode.
    pub fn markings(&self, protection: EdgeProtection) -> MarkingStore {
        let mut store = MarkingStore::new();
        let marking = match protection {
            EdgeProtection::Surrogate => Marking::Surrogate,
            EdgeProtection::Hide => Marking::Hide,
        };
        store.set(
            self.protected_edge.1,
            self.protected_edge,
            self.lattice.public(),
            marking,
        );
        store
    }
}

/// All seven motifs.
pub fn all_motifs() -> Vec<Motif> {
    MotifKind::ALL.iter().map(|&k| Motif::new(k)).collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use surrogate_core::account::{generate_for_set, generate_hide_for_set, ProtectionContext};
    use surrogate_core::measures::path_utility;
    use surrogate_core::surrogate::SurrogateCatalog;

    #[test]
    fn shapes_are_four_to_five_nodes() {
        for motif in all_motifs() {
            let n = motif.graph.node_count();
            assert!(
                (4..=5).contains(&n),
                "{}: {n} nodes outside the paper's 4–5 range",
                motif.kind.name()
            );
            assert!(motif.graph.is_connected(), "{}", motif.kind.name());
            assert!(motif.graph.is_acyclic(), "{}", motif.kind.name());
            assert!(
                motif
                    .graph
                    .has_edge(motif.protected_edge.0, motif.protected_edge.1),
                "{}: protected edge missing",
                motif.kind.name()
            );
        }
    }

    fn utilities(kind: MotifKind) -> (f64, f64) {
        let motif = Motif::new(kind);
        let catalog = SurrogateCatalog::new();
        let public = motif.lattice.public();
        let sur_markings = motif.markings(EdgeProtection::Surrogate);
        let hide_markings = motif.markings(EdgeProtection::Hide);
        let sur = {
            let ctx = ProtectionContext::new(&motif.graph, &motif.lattice, &sur_markings, &catalog);
            generate_for_set(&ctx, &[public]).unwrap()
        };
        let hide = {
            let ctx =
                ProtectionContext::new(&motif.graph, &motif.lattice, &hide_markings, &catalog);
            generate_hide_for_set(&ctx, &[public]).unwrap()
        };
        (
            path_utility(&motif.graph, &sur),
            path_utility(&motif.graph, &hide),
        )
    }

    #[test]
    fn surrogating_restores_utility_on_reconnectable_motifs() {
        for kind in [
            MotifKind::Star,
            MotifKind::Chain,
            MotifKind::Diamond,
            MotifKind::Tree,
            MotifKind::InvertedTree,
        ] {
            let (sur, hide) = utilities(kind);
            assert!(
                sur > hide,
                "{}: surrogate {sur} should beat hide {hide}",
                kind.name()
            );
        }
    }

    #[test]
    fn bipartite_and_lattice_show_no_difference() {
        for kind in [MotifKind::Bipartite, MotifKind::Lattice] {
            let (sur, hide) = utilities(kind);
            assert_eq!(
                sur,
                hide,
                "{}: §6.2 predicts identical utility",
                kind.name()
            );
        }
    }

    #[test]
    fn star_surrogate_reconnects_everything() {
        let motif = Motif::new(MotifKind::Star);
        let catalog = SurrogateCatalog::new();
        let markings = motif.markings(EdgeProtection::Surrogate);
        let ctx = ProtectionContext::new(&motif.graph, &motif.lattice, &markings, &catalog);
        let account = generate_for_set(&ctx, &[motif.lattice.public()]).unwrap();
        assert!(account.graph().is_connected());
        assert_eq!(account.surrogate_edge_count(), 3, "spoke→each leaf");
        assert!(
            !account
                .graph()
                .has_edge(motif.protected_edge.0, motif.protected_edge.1),
            "protected edge itself stays hidden"
        );
    }

    #[test]
    fn lattice_surrogate_changes_nothing() {
        let motif = Motif::new(MotifKind::Lattice);
        let catalog = SurrogateCatalog::new();
        let markings = motif.markings(EdgeProtection::Surrogate);
        let ctx = ProtectionContext::new(&motif.graph, &motif.lattice, &markings, &catalog);
        let account = generate_for_set(&ctx, &[motif.lattice.public()]).unwrap();
        assert_eq!(
            account.surrogate_edge_count(),
            0,
            "parallel paths make the surrogate edge redundant"
        );
    }

    #[test]
    fn protected_edge_never_appears_in_either_account() {
        for motif in all_motifs() {
            let catalog = SurrogateCatalog::new();
            for protection in [EdgeProtection::Surrogate, EdgeProtection::Hide] {
                let markings = motif.markings(protection);
                let ctx = ProtectionContext::new(&motif.graph, &motif.lattice, &markings, &catalog);
                let account = generate_for_set(&ctx, &[motif.lattice.public()]).unwrap();
                assert!(
                    !account.original_edge_present(motif.protected_edge),
                    "{}: {protection:?} leaked the protected edge",
                    motif.kind.name()
                );
            }
        }
    }
}
