//! The paper's worked examples: the Fig. 1 sample graph and privilege
//! classes, the four Fig. 2 protection scenarios, and the Fig. 11
//! provenance example.
//!
//! These pin the library to the paper's published numbers:
//! PathUtility(naïve) = .13, NodeUtility(naïve) = 6/11, and Table 1's
//! path utilities .38 / .27 / .13 / .27.

use surrogate_core::account::{
    generate_for_set, generate_naive_node_hide_for_set, ProtectedAccount, ProtectionContext,
};
use surrogate_core::error::Result;
use surrogate_core::feature::Features;
use surrogate_core::graph::{Graph, NodeId};
use surrogate_core::marking::{Marking, MarkingStore};
use surrogate_core::privilege::{PrivilegeId, PrivilegeLattice};
use surrogate_core::surrogate::{SurrogateCatalog, SurrogateDef};

/// The Fig. 1(a) sample graph with the Fig. 1(b) privilege classes.
///
/// Topology (layered as drawn: `a1 a2 b` / `c` / `d e f g` / `h i j`):
/// `a1→c, a2→c, b→c, c→d, c→e, c→f, f→g, g→h, g→i, g→j`.
///
/// Privileges: `Public ⊑ Low-2 ⊑ High-2`; `High-1` incomparable with both.
/// Sensitivity: `a1, a2, d, e, f` require High-1 (invisible to a High-2
/// consumer); `g` requires High-2 (so `HW(G) = {High-1, High-2}` as stated
/// in §3.1); the rest are Public.
#[derive(Debug, Clone)]
pub struct Figure1 {
    /// The sample graph `G`.
    pub graph: Graph,
    /// The Fig. 1(b) privilege lattice.
    pub lattice: PrivilegeLattice,
    /// Bottom predicate.
    pub public: PrivilegeId,
    /// "Low-2" — business partners.
    pub low2: PrivilegeId,
    /// "High-1" — e.g. a newly acquired company.
    pub high1: PrivilegeId,
    /// "High-2" — highly trusted partners.
    pub high2: PrivilegeId,
    /// Node ids in figure order: `a1 a2 b c d e f g h i j`.
    pub nodes: [NodeId; 11],
}

impl Figure1 {
    /// Builds the example.
    pub fn new() -> Self {
        let mut builder = PrivilegeLattice::builder();
        let public = builder.add("Public").expect("fresh builder");
        let low2 = builder.add("Low-2").expect("fresh builder");
        let high1 = builder.add("High-1").expect("fresh builder");
        let high2 = builder.add("High-2").expect("fresh builder");
        builder.declare_dominates(low2, public);
        builder.declare_dominates(high1, public);
        builder.declare_dominates(high2, low2);
        let lattice = builder.finish().expect("figure 1b is a valid lattice");

        let mut graph = Graph::new();
        let a1 = graph.add_node("a1", high1);
        let a2 = graph.add_node("a2", high1);
        let b = graph.add_node("b", public);
        let c = graph.add_node("c", public);
        let d = graph.add_node("d", high1);
        let e = graph.add_node("e", high1);
        let f = graph.add_node_with_features(
            "f",
            Features::new().with("kind", "gang affiliation"),
            high1,
        );
        let g = graph.add_node("g", high2);
        let h = graph.add_node("h", public);
        let i = graph.add_node("i", public);
        let j = graph.add_node("j", public);
        for (from, to) in [
            (a1, c),
            (a2, c),
            (b, c),
            (c, d),
            (c, e),
            (c, f),
            (f, g),
            (g, h),
            (g, i),
            (g, j),
        ] {
            graph.add_edge(from, to).expect("figure edges are unique");
        }
        Self {
            graph,
            lattice,
            public,
            low2,
            high1,
            high2,
            nodes: [a1, a2, b, c, d, e, f, g, h, i, j],
        }
    }

    /// Node id by figure label (`"a1"`, `"b"`, … `"j"`).
    pub fn node(&self, label: &str) -> NodeId {
        self.graph
            .find_by_label(label)
            .unwrap_or_else(|| panic!("no figure node {label:?}"))
    }

    /// The sensitive edge whose opacity Table 1 reports: `f → g`.
    pub fn sensitive_edge(&self) -> (NodeId, NodeId) {
        (self.node("f"), self.node("g"))
    }

    /// The naïvely protected account `G'` of Fig. 1(c): a High-2 consumer
    /// with plain all-or-nothing hiding.
    pub fn naive_account(&self) -> Result<ProtectedAccount> {
        let markings = MarkingStore::new();
        let catalog = SurrogateCatalog::new();
        let ctx = ProtectionContext::new(&self.graph, &self.lattice, &markings, &catalog);
        generate_naive_node_hide_for_set(&ctx, &[self.high2])
    }
}

impl Default for Figure1 {
    fn default() -> Self {
        Self::new()
    }
}

/// The four protection scenarios of Fig. 2, all with `HW(G') = {High-2}`.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Figure2Scenario {
    /// (a) surrogate node `f'` with visible edges `c→f'→g`.
    A,
    /// (b) `f` hidden entirely, surrogate edge `c→g`.
    B,
    /// (c) surrogate node `f'` with hidden edges: `f'` isolated, no `c–g`.
    C,
    /// (d) surrogate node `f'` (isolated) plus surrogate edge `c→g`.
    D,
}

impl Figure2Scenario {
    /// All four scenarios in figure order.
    pub const ALL: [Figure2Scenario; 4] = [
        Figure2Scenario::A,
        Figure2Scenario::B,
        Figure2Scenario::C,
        Figure2Scenario::D,
    ];

    /// Figure label, `"(a)"` … `"(d)"`.
    pub fn label(self) -> &'static str {
        match self {
            Figure2Scenario::A => "(a)",
            Figure2Scenario::B => "(b)",
            Figure2Scenario::C => "(c)",
            Figure2Scenario::D => "(d)",
        }
    }
}

/// A Fig. 2 scenario bundled with its markings and catalog.
#[derive(Debug, Clone)]
pub struct Figure2 {
    /// The underlying Fig. 1 example.
    pub base: Figure1,
    /// Scenario identifier.
    pub scenario: Figure2Scenario,
    /// Incidence markings for High-2 (the dotted boxes of Fig. 2).
    pub markings: MarkingStore,
    /// Surrogate catalog (scenarios a, c, d register `f'`).
    pub catalog: SurrogateCatalog,
}

impl Figure2 {
    /// Builds the scenario.
    pub fn new(scenario: Figure2Scenario) -> Self {
        let base = Figure1::new();
        let f = base.node("f");
        let c = base.node("c");
        let g = base.node("g");
        let high2 = base.high2;
        let mut markings = MarkingStore::new();
        let mut catalog = SurrogateCatalog::new();

        let register_f_prime = |catalog: &mut SurrogateCatalog| {
            catalog.add(
                f,
                SurrogateDef {
                    label: "f'".into(),
                    features: Features::new().with("kind", "a political cause"),
                    lowest: base.low2,
                    info_score: 0.5,
                },
            );
        };

        match scenario {
            Figure2Scenario::A => {
                // All four incidences Visible (the default).
                register_f_prime(&mut catalog);
            }
            Figure2Scenario::B => {
                // V S | S V: f's role hidden, no surrogate node.
                markings.set(f, (c, f), high2, Marking::Surrogate);
                markings.set(f, (f, g), high2, Marking::Surrogate);
            }
            Figure2Scenario::C => {
                // V H | S H: both edges carry a Hide marking.
                markings.set(f, (c, f), high2, Marking::Hide);
                markings.set(f, (f, g), high2, Marking::Surrogate);
                markings.set(g, (f, g), high2, Marking::Hide);
                register_f_prime(&mut catalog);
            }
            Figure2Scenario::D => {
                // V S | S V with the surrogate node registered.
                markings.set(f, (c, f), high2, Marking::Surrogate);
                markings.set(f, (f, g), high2, Marking::Surrogate);
                register_f_prime(&mut catalog);
            }
        }
        Self {
            base,
            scenario,
            markings,
            catalog,
        }
    }

    /// Generates the scenario's protected account for High-2.
    pub fn account(&self) -> Result<ProtectedAccount> {
        let ctx = ProtectionContext::new(
            &self.base.graph,
            &self.base.lattice,
            &self.markings,
            &self.catalog,
        );
        generate_for_set(&ctx, &[self.base.high2])
    }
}

/// The Fig. 11 emergency-preparedness provenance example (Appendix A).
#[derive(Debug, Clone)]
pub struct Figure11 {
    /// The provenance graph (a DAG; arrows follow data flow over time).
    pub graph: Graph,
    /// Privilege classes of Fig. 11(b).
    pub lattice: PrivilegeLattice,
    /// Public bottom.
    pub public: PrivilegeId,
    /// Emergency Responder.
    pub er: PrivilegeId,
    /// Cleared Emergency Responder (dominates ER).
    pub cer: PrivilegeId,
    /// Medical Provider.
    pub mp: PrivilegeId,
    /// National Security.
    pub ns: PrivilegeId,
    /// Markings protecting sensitive roles for ER consumers.
    pub markings: MarkingStore,
    /// Surrogates for the protected processes.
    pub catalog: SurrogateCatalog,
}

impl Figure11 {
    /// Builds the provenance example.
    pub fn new() -> Self {
        let mut builder = PrivilegeLattice::builder();
        let public = builder.add("Public").expect("fresh builder");
        let er = builder.add("Emergency Responder").expect("fresh builder");
        let cer = builder
            .add("Cleared Emergency Responder")
            .expect("fresh builder");
        let mp = builder.add("Medical Provider").expect("fresh builder");
        let ns = builder.add("National Security").expect("fresh builder");
        builder.declare_dominates(er, public);
        builder.declare_dominates(cer, er);
        builder.declare_dominates(mp, public);
        builder.declare_dominates(ns, public);
        let lattice = builder.finish().expect("figure 11b is a valid lattice");

        let mut graph = Graph::new();
        let ts = |t: i64| {
            Features::new().with(
                "timestamp",
                surrogate_core::feature::FeatureValue::Timestamp(t),
            )
        };
        let pr1 = graph.add_node_with_features("Patient Record 1", ts(0), mp);
        let pr2 = graph.add_node_with_features("Patient Record 2", ts(1), mp);
        let pr3 = graph.add_node_with_features("Patient Record 3", ts(2), mp);
        let aggregator = graph.add_node("HIPAA-Compliant Aggregator", mp);
        let affected = graph.add_node("Number of affected patients at facility", er);
        let bio_intel = graph.add_node("Bio-Threat Intelligence", ns);
        let threat = graph.add_node("Threat Level", ns);
        let history = graph.add_node("Historical Disease Data Region 1", public);
        let cdc_model = graph.add_node("CDC Regional Epidemic Model", public);
        let projector = graph.add_node("Epidemiological Projector, EPFF v3", er);
        let epidemic_model = graph.add_node("Specific Epidemic Model", er);
        let simulator = graph.add_node("Trend Model Simulator", er);
        let stockpile = graph.add_node("Emergency Supplies Stockpile", cer);
        let supply = graph.add_node("Supply Analysis", cer);
        let planning = graph.add_node("Local Action Planning", cer);
        let plan = graph.add_node("Emergency Treatment Plan", er);
        for (from, to) in [
            (pr1, aggregator),
            (pr2, aggregator),
            (pr3, aggregator),
            (aggregator, affected),
            (bio_intel, threat),
            (history, cdc_model),
            (cdc_model, projector),
            (threat, projector),
            (affected, projector),
            (projector, epidemic_model),
            (epidemic_model, simulator),
            (simulator, planning),
            (stockpile, supply),
            (supply, planning),
            (planning, plan),
        ] {
            graph.add_edge(from, to).expect("figure edges are unique");
        }

        // Providers protect the CER-only planning chain for ER consumers:
        // the planning process's role is surrogate-marked so the plan's
        // provenance stays traversable, while the supply chain is hidden
        // outright.
        let mut markings = MarkingStore::new();
        markings.set_node(planning, er, Marking::Surrogate);
        markings.set_node(supply, er, Marking::Hide);
        markings.set_node(stockpile, er, Marking::Hide);

        let mut catalog = SurrogateCatalog::new();
        catalog.add(
            planning,
            SurrogateDef {
                label: "a planning process".into(),
                features: Features::new(),
                lowest: er,
                info_score: 0.3,
            },
        );

        Self {
            graph,
            lattice,
            public,
            er,
            cer,
            mp,
            ns,
            markings,
            catalog,
        }
    }

    /// Protected account for an Emergency Responder.
    pub fn er_account(&self) -> Result<ProtectedAccount> {
        let ctx = ProtectionContext::new(&self.graph, &self.lattice, &self.markings, &self.catalog);
        generate_for_set(&ctx, &[self.er])
    }
}

impl Default for Figure11 {
    fn default() -> Self {
        Self::new()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use surrogate_core::hw::high_water_set;
    use surrogate_core::measures::{node_utility, path_utility};

    #[test]
    fn figure1_shape() {
        let fig = Figure1::new();
        assert_eq!(fig.graph.node_count(), 11);
        assert_eq!(fig.graph.edge_count(), 10);
        assert!(fig.graph.is_connected());
        assert!(fig.graph.is_acyclic());
        // b is connected to all ten other nodes (§4.1).
        let b = fig.node("b");
        assert_eq!(fig.graph.connected_counts()[b.index()], 10);
    }

    #[test]
    fn figure1_high_water_is_high1_high2() {
        let fig = Figure1::new();
        let hw = high_water_set(&fig.graph, &fig.lattice);
        assert_eq!(hw.len(), 2);
        assert!(hw.contains(&fig.high1));
        assert!(hw.contains(&fig.high2));
    }

    #[test]
    fn naive_account_matches_figure_1c() {
        let fig = Figure1::new();
        let account = fig.naive_account().unwrap();
        // Visible via High-2: b, c, g, h, i, j.
        assert_eq!(account.graph().node_count(), 6);
        // Edges among them: b→c, g→h, g→i, g→j.
        assert_eq!(account.graph().edge_count(), 4);
        // §4.1: %P(b') = 1/10, %P(h') = 3/10, PathUtility = .13.
        let pcts = surrogate_core::measures::path_percentages(&fig.graph, &account);
        let b = fig.node("b");
        let h = fig.node("h");
        assert!((pcts[b.index()] - 0.1).abs() < 1e-12);
        assert!((pcts[h.index()] - 0.3).abs() < 1e-12);
        let pu = path_utility(&fig.graph, &account);
        assert!((pu - 1.4 / 11.0).abs() < 1e-12, "PathUtility {pu} ≠ .13");
        // Fig. 3c: NodeUtility = 6/11.
        let nu = node_utility(&fig.graph, &account);
        assert!((nu - 6.0 / 11.0).abs() < 1e-12, "NodeUtility {nu} ≠ 6/11");
    }

    #[test]
    fn figure2_path_utilities_match_table1() {
        // Table 1: (a) .38, (b) .27, (c) .13, (d) .27.
        let expect = [
            (Figure2Scenario::A, 4.2 / 11.0),
            (Figure2Scenario::B, 3.0 / 11.0),
            (Figure2Scenario::C, 1.4 / 11.0),
            (Figure2Scenario::D, 3.0 / 11.0),
        ];
        for (scenario, want) in expect {
            let fig = Figure2::new(scenario);
            let account = fig.account().unwrap();
            let got = path_utility(&fig.base.graph, &account);
            assert!(
                (got - want).abs() < 1e-12,
                "{}: path utility {got} ≠ {want}",
                scenario.label()
            );
        }
    }

    #[test]
    fn figure2_account_shapes() {
        // (a): f' wired in place.
        let fig = Figure2::new(Figure2Scenario::A);
        let account = fig.account().unwrap();
        assert_eq!(account.graph().node_count(), 7);
        assert_eq!(account.surrogate_edge_count(), 0);
        assert!(account.original_edge_present(fig.base.sensitive_edge()));

        // (b): f gone, surrogate edge c→g.
        let fig = Figure2::new(Figure2Scenario::B);
        let account = fig.account().unwrap();
        assert_eq!(account.graph().node_count(), 6);
        assert_eq!(account.surrogate_edge_count(), 1);
        assert!(!account.original_edge_present(fig.base.sensitive_edge()));

        // (c): f' isolated, no surrogate edge.
        let fig = Figure2::new(Figure2Scenario::C);
        let account = fig.account().unwrap();
        assert_eq!(account.graph().node_count(), 7);
        assert_eq!(account.surrogate_edge_count(), 0);
        let f2 = account.account_node(fig.base.node("f")).unwrap();
        assert_eq!(account.graph().degree(f2), 0);

        // (d): f' isolated plus surrogate edge c→g.
        let fig = Figure2::new(Figure2Scenario::D);
        let account = fig.account().unwrap();
        assert_eq!(account.graph().node_count(), 7);
        assert_eq!(account.surrogate_edge_count(), 1);
        let f2 = account.account_node(fig.base.node("f")).unwrap();
        assert_eq!(account.graph().degree(f2), 0);
    }

    #[test]
    fn figure11_er_account_keeps_provenance_traversable() {
        let fig = Figure11::new();
        let account = fig.er_account().unwrap();
        let plan = fig.graph.find_by_label("Emergency Treatment Plan").unwrap();
        let plan2 = account.account_node(plan).unwrap();
        // Appendix A: prior systems showed the ER user nothing upstream of
        // the plan; with surrogates the simulator chain is reachable.
        let upstream = surrogate_core::query::ancestors(account.graph(), plan2);
        assert!(
            upstream.len() >= 5,
            "expected a rich upstream view, got {}",
            upstream.len()
        );
        // The CER-only supply chain stays invisible.
        let stockpile = fig
            .graph
            .find_by_label("Emergency Supplies Stockpile")
            .unwrap();
        assert!(account.account_node(stockpile).is_none());
    }

    #[test]
    fn figure11_is_a_dag() {
        let fig = Figure11::new();
        assert!(fig.graph.is_acyclic());
        assert!(fig.graph.is_connected());
        assert_eq!(fig.graph.node_count(), 16);
    }
}
