//! Synthetic graph generator for the §6.1.2 / §6.3 evaluation.
//!
//! The paper's synthetic set: 50 graphs of 200 nodes, connected ("no
//! disconnected subgraphs"), directed, with connectedness swept so the
//! average node has 30–100 "connected pairs", and 10%–90% of all edges
//! protected. Connected pairs are read as the average per-node *reachable
//! set* size (DESIGN.md §3.1 item 6) — the only reading consistent with
//! "connected" 200-node graphs.
//!
//! Generation: a random attachment tree (connected, acyclic) plus random
//! forward edges until the reachability target is met. Index-ordered edges
//! keep the graph a DAG, matching the provenance motivation.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use surrogate_core::graph::{Edge, Graph};
use surrogate_core::marking::{Marking, MarkingStore};
use surrogate_core::privilege::PrivilegeLattice;

pub use crate::motif::EdgeProtection;

/// Parameters for one synthetic graph.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct SyntheticConfig {
    /// Number of nodes (the paper uses 200).
    pub nodes: usize,
    /// Target average reachable-set size ("connected pairs", 30–100).
    pub target_connected_pairs: f64,
    /// Fraction of edges to protect (0.10–0.90).
    pub protect_fraction: f64,
    /// RNG seed for reproducibility.
    pub seed: u64,
}

impl Default for SyntheticConfig {
    fn default() -> Self {
        Self {
            nodes: 200,
            target_connected_pairs: 50.0,
            protect_fraction: 0.2,
            seed: 42,
        }
    }
}

/// A generated synthetic graph with its protected-edge sample.
#[derive(Debug, Clone)]
pub struct SyntheticGraph {
    /// The connected DAG (all nodes Public).
    pub graph: Graph,
    /// Randomly sampled protected edges (`protect_fraction` of all edges).
    pub protected_edges: Vec<Edge>,
    /// Single-predicate lattice used by the evaluation.
    pub lattice: PrivilegeLattice,
    /// The generating parameters.
    pub config: SyntheticConfig,
}

impl SyntheticGraph {
    /// Markings protecting every sampled edge with the given mode
    /// (destination-side incidence, DESIGN.md §3.1 item 5).
    pub fn markings(&self, protection: EdgeProtection) -> MarkingStore {
        let marking = match protection {
            EdgeProtection::Surrogate => Marking::Surrogate,
            EdgeProtection::Hide => Marking::Hide,
        };
        let mut store = MarkingStore::new();
        for &edge in &self.protected_edges {
            store.set(edge.1, edge, self.lattice.public(), marking);
        }
        store
    }

    /// Average per-node reachable-set size actually achieved.
    pub fn connected_pairs(&self) -> f64 {
        self.graph.average_reachable()
    }
}

/// Generates one synthetic graph per the config.
pub fn generate(config: SyntheticConfig) -> SyntheticGraph {
    assert!(config.nodes >= 2, "need at least two nodes");
    assert!(
        (0.0..=1.0).contains(&config.protect_fraction),
        "protect_fraction must be a fraction"
    );
    let mut rng = StdRng::seed_from_u64(config.seed);
    let lattice = PrivilegeLattice::public_only();
    let public = lattice.public();

    let mut graph = Graph::with_capacity(config.nodes, config.nodes * 4);
    let ids: Vec<_> = (0..config.nodes)
        .map(|i| graph.add_node(format!("n{i}"), public))
        .collect();

    // Random attachment tree: connected and acyclic by construction.
    for i in 1..config.nodes {
        let parent = rng.gen_range(0..i);
        graph
            .add_edge(ids[parent], ids[i])
            .expect("tree edges are unique");
    }

    // Densify with random forward (index-ordered) edges until the
    // reachability target is met. Checking the target is O(V·E), so add
    // edges in small batches between checks.
    let batch = (config.nodes / 10).max(1);
    let max_edges = config.nodes * (config.nodes - 1) / 2;
    while graph.average_reachable() < config.target_connected_pairs
        && graph.edge_count() < max_edges
    {
        let mut added = 0;
        let mut attempts = 0;
        while added < batch && attempts < batch * 20 {
            attempts += 1;
            let a = rng.gen_range(0..config.nodes - 1);
            let b = rng.gen_range(a + 1..config.nodes);
            if graph.add_edge(ids[a], ids[b]).is_ok() {
                added += 1;
            }
        }
        if added == 0 {
            // Random sampling stalls near saturation: fill any remaining
            // forward slots deterministically so the generator either hits
            // the target or the DAG is complete.
            'fill: for a in 0..config.nodes - 1 {
                for b in a + 1..config.nodes {
                    if graph.add_edge(ids[a], ids[b]).is_ok() {
                        added += 1;
                        if added >= batch {
                            break 'fill;
                        }
                    }
                }
            }
            if added == 0 {
                break; // the DAG is complete
            }
        }
    }

    // Sample the protected edges without replacement.
    let edge_count = graph.edge_count();
    let protect_count =
        ((edge_count as f64 * config.protect_fraction).round() as usize).min(edge_count);
    let mut indices: Vec<usize> = (0..edge_count).collect();
    // Partial Fisher–Yates: the first `protect_count` slots become the sample.
    for i in 0..protect_count {
        let j = rng.gen_range(i..edge_count);
        indices.swap(i, j);
    }
    let protected_edges = indices[..protect_count]
        .iter()
        .map(|&i| graph.edge_at(i))
        .collect();

    SyntheticGraph {
        graph,
        protected_edges,
        lattice,
        config,
    }
}

/// The paper's experimental grid (§6.1.2): `connectivity_steps` values of
/// the connected-pairs target evenly spanning 30–100, crossed with the
/// given protection fractions. 10 steps × 5 fractions = the paper's 50
/// graphs.
pub fn paper_grid(
    connectivity_steps: usize,
    protect_fractions: &[f64],
    base_seed: u64,
) -> Vec<SyntheticConfig> {
    assert!(connectivity_steps >= 2, "need at least two steps");
    let mut configs = Vec::new();
    for (pi, &fraction) in protect_fractions.iter().enumerate() {
        for step in 0..connectivity_steps {
            let target = 30.0 + 70.0 * step as f64 / (connectivity_steps - 1) as f64;
            configs.push(SyntheticConfig {
                nodes: 200,
                target_connected_pairs: target,
                protect_fraction: fraction,
                seed: base_seed
                    .wrapping_add(pi as u64)
                    .wrapping_mul(1_000_003)
                    .wrapping_add(step as u64),
            });
        }
    }
    configs
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn generated_graph_matches_paper_invariants() {
        let config = SyntheticConfig {
            nodes: 200,
            target_connected_pairs: 40.0,
            protect_fraction: 0.3,
            seed: 7,
        };
        let synthetic = generate(config);
        assert_eq!(synthetic.graph.node_count(), 200);
        assert!(synthetic.graph.is_connected(), "no disconnected subgraphs");
        assert!(synthetic.graph.is_acyclic(), "provenance-style DAG");
        assert!(
            synthetic.connected_pairs() >= 40.0,
            "reachability target met: {}",
            synthetic.connected_pairs()
        );
        let expected = (synthetic.graph.edge_count() as f64 * 0.3).round() as usize;
        assert_eq!(synthetic.protected_edges.len(), expected);
    }

    #[test]
    fn seeds_are_reproducible() {
        let config = SyntheticConfig::default();
        let a = generate(config);
        let b = generate(config);
        assert_eq!(a.graph.edge_count(), b.graph.edge_count());
        assert_eq!(a.protected_edges, b.protected_edges);
        let c = generate(SyntheticConfig { seed: 43, ..config });
        assert_ne!(
            a.protected_edges, c.protected_edges,
            "different seed, different sample"
        );
    }

    #[test]
    fn protected_edges_are_unique() {
        let synthetic = generate(SyntheticConfig {
            nodes: 50,
            target_connected_pairs: 10.0,
            protect_fraction: 0.9,
            seed: 3,
        });
        let mut edges = synthetic.protected_edges.clone();
        edges.sort();
        edges.dedup();
        assert_eq!(edges.len(), synthetic.protected_edges.len());
    }

    #[test]
    fn connectivity_sweep_is_monotone_in_edges() {
        let lo = generate(SyntheticConfig {
            nodes: 100,
            target_connected_pairs: 15.0,
            protect_fraction: 0.1,
            seed: 1,
        });
        let hi = generate(SyntheticConfig {
            nodes: 100,
            target_connected_pairs: 50.0,
            protect_fraction: 0.1,
            seed: 1,
        });
        assert!(hi.graph.edge_count() > lo.graph.edge_count());
        assert!(hi.connected_pairs() > lo.connected_pairs());
    }

    #[test]
    fn paper_grid_has_fifty_cells() {
        let grid = paper_grid(10, &[0.1, 0.3, 0.5, 0.7, 0.9], 99);
        assert_eq!(grid.len(), 50);
        assert!(grid
            .iter()
            .all(|c| (30.0..=100.0).contains(&c.target_connected_pairs)));
        let seeds: std::collections::HashSet<u64> = grid.iter().map(|c| c.seed).collect();
        assert_eq!(seeds.len(), 50, "seeds must be distinct");
    }

    #[test]
    fn markings_cover_every_protected_edge() {
        let synthetic = generate(SyntheticConfig {
            nodes: 30,
            target_connected_pairs: 5.0,
            protect_fraction: 0.5,
            seed: 11,
        });
        let store = synthetic.markings(EdgeProtection::Hide);
        for &e in &synthetic.protected_edges {
            assert!(store.edge_hidden(e, synthetic.lattice.public()));
        }
        let store = synthetic.markings(EdgeProtection::Surrogate);
        for &e in &synthetic.protected_edges {
            assert!(!store.edge_visible(e, synthetic.lattice.public()));
            assert!(!store.edge_hidden(e, synthetic.lattice.public()));
        }
    }
}
