//! Social-network generator for the paper's running scenario (§1): people
//! connected by relationships, with sensitive affiliation nodes (a gang, a
//! political cause) linking some of them.
//!
//! People are wired by preferential attachment (bidirectional edges, as
//! the paper models undirected ties). A configurable number of sensitive
//! *affiliation* nodes connect random member cliques; members' ties to the
//! affiliation are what a protected account must conceal while keeping the
//! member-to-member connectivity informative.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use surrogate_core::feature::Features;
use surrogate_core::graph::{Graph, NodeId};
use surrogate_core::marking::{Marking, MarkingStore};
use surrogate_core::privilege::{PrivilegeId, PrivilegeLattice};
use surrogate_core::surrogate::{SurrogateCatalog, SurrogateDef};

/// Parameters for a generated social network.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct SocialConfig {
    /// Number of person nodes.
    pub people: usize,
    /// New ties per person during attachment (≥ 1).
    pub ties_per_person: usize,
    /// Number of sensitive affiliation nodes.
    pub affiliations: usize,
    /// Members per affiliation drawn from the social fabric.
    pub members_per_affiliation: usize,
    /// Additional members per affiliation with *no* fabric ties — people
    /// related to the rest of the network only through the affiliation
    /// (the paper's c–g-through-the-gang situation).
    pub lone_members_per_affiliation: usize,
    /// RNG seed.
    pub seed: u64,
}

impl Default for SocialConfig {
    fn default() -> Self {
        Self {
            people: 40,
            ties_per_person: 2,
            affiliations: 3,
            members_per_affiliation: 4,
            lone_members_per_affiliation: 0,
            seed: 5,
        }
    }
}

/// A generated social network ready for protection.
#[derive(Debug, Clone)]
pub struct SocialNetwork {
    /// People plus affiliation nodes; ties are bidirectional edge pairs.
    pub graph: Graph,
    /// `Public ⊑ Investigator` lattice.
    pub lattice: PrivilegeLattice,
    /// Open predicate.
    pub public: PrivilegeId,
    /// Predicate for the investigation team.
    pub investigator: PrivilegeId,
    /// Surrogate markings concealing affiliation membership publicly.
    pub markings: MarkingStore,
    /// Coarse surrogates for the affiliations.
    pub catalog: SurrogateCatalog,
    /// Person node ids.
    pub people: Vec<NodeId>,
    /// Affiliation node ids.
    pub affiliations: Vec<NodeId>,
}

/// Generates a social network per the config.
pub fn generate(config: SocialConfig) -> SocialNetwork {
    assert!(config.people >= 2 && config.ties_per_person >= 1);
    let mut rng = StdRng::seed_from_u64(config.seed);
    let (lattice, preds) =
        PrivilegeLattice::flat(&["Investigator"]).expect("two-level lattice is valid");
    let investigator = preds[0];
    let public = lattice.public();

    let mut graph = Graph::new();
    let people: Vec<NodeId> = (0..config.people)
        .map(|i| {
            graph.add_node_with_features(
                format!("person-{i}"),
                Features::new().with("name", format!("P{i}")),
                public,
            )
        })
        .collect();

    // Preferential attachment over an endpoint pool: each accepted tie
    // pushes both ends, biasing future picks toward high-degree nodes.
    let mut pool: Vec<usize> = vec![0, 1];
    graph
        .add_bidirectional(people[0], people[1])
        .expect("first tie is fresh");
    for i in 2..config.people {
        let mut made = 0;
        let mut attempts = 0;
        while made < config.ties_per_person && attempts < 20 * config.ties_per_person {
            attempts += 1;
            let target = pool[rng.gen_range(0..pool.len())];
            if target != i && graph.add_bidirectional(people[i], people[target]).is_ok() {
                pool.push(i);
                pool.push(target);
                made += 1;
            }
        }
        if made == 0 {
            // Guarantee connectivity even for degenerate configs.
            let target = (i + 1) % 2;
            let _ = graph.add_bidirectional(people[i], people[target]);
        }
    }

    // Sensitive affiliations linking member cliques.
    let mut markings = MarkingStore::new();
    let mut catalog = SurrogateCatalog::new();
    let affiliations: Vec<NodeId> = (0..config.affiliations)
        .map(|a| {
            let node = graph.add_node_with_features(
                format!("affiliation-{a}"),
                Features::new().with("kind", "gang"),
                investigator,
            );
            markings.set_node(node, public, Marking::Surrogate);
            catalog.add(
                node,
                SurrogateDef {
                    label: format!("undisclosed association {a}"),
                    features: Features::new(),
                    lowest: public,
                    info_score: 0.2,
                },
            );
            for _ in 0..config.members_per_affiliation {
                let member = people[rng.gen_range(0..people.len())];
                // Ties run both ways so protected accounts keep symmetric
                // member↔member connectivity.
                let _ = graph.add_bidirectional(member, node);
            }
            for l in 0..config.lone_members_per_affiliation {
                let lone = graph.add_node_with_features(
                    format!("lone-{a}-{l}"),
                    Features::new().with("name", format!("L{a}-{l}")),
                    public,
                );
                graph
                    .add_bidirectional(lone, node)
                    .expect("lone member is fresh");
            }
            node
        })
        .collect();

    SocialNetwork {
        graph,
        lattice,
        public,
        investigator,
        markings,
        catalog,
        people,
        affiliations,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use surrogate_core::account::{generate_for_set, ProtectionContext};
    use surrogate_core::measures::path_utility;

    #[test]
    fn network_shape() {
        let net = generate(SocialConfig::default());
        assert_eq!(net.people.len(), 40);
        assert_eq!(net.affiliations.len(), 3);
        assert_eq!(net.graph.node_count(), 43);
        assert!(net.graph.is_connected());
    }

    #[test]
    fn ties_are_bidirectional() {
        let net = generate(SocialConfig::default());
        for (a, b) in net.graph.edges() {
            assert!(net.graph.has_edge(b, a), "tie {a}→{b} lacks its reverse");
        }
    }

    #[test]
    fn public_account_conceals_affiliations_but_keeps_ties() {
        let net = generate(SocialConfig::default());
        let ctx = ProtectionContext::new(&net.graph, &net.lattice, &net.markings, &net.catalog);
        let account = generate_for_set(&ctx, &[net.public]).unwrap();
        for &a in &net.affiliations {
            let a2 = account.account_node(a).expect("surrogate registered");
            assert_eq!(
                account.graph().degree(a2),
                0,
                "affiliation must be unlinked publicly"
            );
        }
        // Members connected through an affiliation stay mutually reachable
        // via surrogate edges, so utility beats the naive baseline.
        let naive =
            surrogate_core::account::generate_naive_node_hide_for_set(&ctx, &[net.public]).unwrap();
        assert!(path_utility(&net.graph, &account) >= path_utility(&net.graph, &naive));
    }

    #[test]
    fn investigator_sees_everything() {
        let net = generate(SocialConfig::default());
        let ctx = ProtectionContext::new(&net.graph, &net.lattice, &net.markings, &net.catalog);
        let account = generate_for_set(&ctx, &[net.investigator]).unwrap();
        assert_eq!(account.graph().node_count(), net.graph.node_count());
        assert_eq!(account.graph().edge_count(), net.graph.edge_count());
        assert_eq!(account.surrogate_node_count(), 0);
    }

    #[test]
    fn lone_members_depend_on_the_affiliation() {
        let net = generate(SocialConfig {
            lone_members_per_affiliation: 2,
            ..SocialConfig::default()
        });
        // Lone members exist and connect only through their affiliation.
        let lone = net.graph.find_by_label("lone-0-0").unwrap();
        assert_eq!(net.graph.degree(lone), 2, "one bidirectional tie");
        // Under surrogate protection they stay related to other members...
        let ctx = ProtectionContext::new(&net.graph, &net.lattice, &net.markings, &net.catalog);
        let sur = generate_for_set(&ctx, &[net.public]).unwrap();
        let hide = surrogate_core::account::generate_hide_for_set(&ctx, &[net.public]).unwrap();
        assert!(
            path_utility(&net.graph, &sur) > path_utility(&net.graph, &hide),
            "surrogate edges must reconnect lone members"
        );
    }

    #[test]
    fn deterministic_per_seed() {
        let a = generate(SocialConfig::default());
        let b = generate(SocialConfig::default());
        assert_eq!(a.graph.edge_count(), b.graph.edge_count());
    }
}
