//! # graphgen
//!
//! Workload generators for the *Surrogate Parenthood* evaluation:
//!
//! * [`paper`] — the paper's own worked examples (Figs. 1, 2 and 11),
//!   pinned to the published utility numbers;
//! * [`motif`] — the seven classic motifs of §6.1.1 with their protected
//!   edges;
//! * [`synthetic`] — 200-node connected DAGs swept over connectivity and
//!   protection fraction (§6.1.2);
//! * [`workflow`] — layered provenance workflows in the style of PLUS;
//! * [`social`] — social networks with sensitive affiliation nodes (§1's
//!   running scenario).
//!
//! Every generator is seeded and deterministic.

#![warn(missing_docs)]
#![warn(rust_2018_idioms)]
#![forbid(unsafe_code)]

pub mod motif;
pub mod paper;
pub mod social;
pub mod synthetic;
pub mod workflow;

pub use motif::{all_motifs, EdgeProtection, Motif, MotifKind};
pub use paper::{Figure1, Figure11, Figure2, Figure2Scenario};
pub use social::{SocialConfig, SocialNetwork};
pub use synthetic::{paper_grid, SyntheticConfig, SyntheticGraph};
pub use workflow::{Workflow, WorkflowConfig};
