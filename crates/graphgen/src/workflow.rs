//! Provenance workflow generator: layered process/data DAGs in the style
//! of the paper's PLUS workloads (Fig. 11), with configurable sensitivity.
//!
//! A workflow alternates data and process layers; each process consumes
//! one or more artifacts of the previous layer and emits one artifact.
//! A configurable fraction of nodes is sensitive: their `lowest` is raised
//! to the restricted predicate, their incidences are surrogate-marked for
//! the open predicate, and a `<null>`-style surrogate is registered so
//! lineage stays traversable.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use surrogate_core::feature::Features;
use surrogate_core::graph::{Graph, NodeId};
use surrogate_core::marking::{Marking, MarkingStore};
use surrogate_core::privilege::{PrivilegeId, PrivilegeLattice};
use surrogate_core::surrogate::{SurrogateCatalog, SurrogateDef};

/// Parameters for a generated workflow.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct WorkflowConfig {
    /// Number of process layers.
    pub stages: usize,
    /// Artifacts per layer.
    pub width: usize,
    /// Maximum inputs per process (≥ 1).
    pub max_fan_in: usize,
    /// Fraction of nodes made sensitive.
    pub sensitive_fraction: f64,
    /// RNG seed.
    pub seed: u64,
}

impl Default for WorkflowConfig {
    fn default() -> Self {
        Self {
            stages: 4,
            width: 5,
            max_fan_in: 3,
            sensitive_fraction: 0.2,
            seed: 1,
        }
    }
}

/// A generated provenance workflow ready for protection.
#[derive(Debug, Clone)]
pub struct Workflow {
    /// The provenance DAG.
    pub graph: Graph,
    /// `Public ⊑ Restricted` lattice.
    pub lattice: PrivilegeLattice,
    /// Open predicate.
    pub public: PrivilegeId,
    /// Predicate guarding sensitive nodes.
    pub restricted: PrivilegeId,
    /// Surrogate markings for the sensitive nodes' incidences.
    pub markings: MarkingStore,
    /// Surrogates registered for sensitive nodes.
    pub catalog: SurrogateCatalog,
    /// The sensitive node ids.
    pub sensitive: Vec<NodeId>,
    /// Final artifacts (the workflow outputs; natural query roots).
    pub outputs: Vec<NodeId>,
}

/// Generates a workflow per the config.
pub fn generate(config: WorkflowConfig) -> Workflow {
    assert!(config.stages >= 1 && config.width >= 1 && config.max_fan_in >= 1);
    let mut rng = StdRng::seed_from_u64(config.seed);
    let (lattice, preds) =
        PrivilegeLattice::flat(&["Restricted"]).expect("two-level lattice is valid");
    let restricted = preds[0];
    let public = lattice.public();

    let mut graph = Graph::new();
    let mut markings = MarkingStore::new();
    let mut catalog = SurrogateCatalog::new();
    let mut sensitive = Vec::new();

    let make_node = |graph: &mut Graph,
                     markings: &mut MarkingStore,
                     catalog: &mut SurrogateCatalog,
                     sensitive: &mut Vec<NodeId>,
                     rng: &mut StdRng,
                     label: String,
                     kind: &str| {
        let is_sensitive = rng.gen_bool(config.sensitive_fraction);
        let lowest = if is_sensitive { restricted } else { public };
        let features = Features::new().with("kind", kind);
        let id = graph.add_node_with_features(label, features, lowest);
        if is_sensitive {
            markings.set_node(id, public, Marking::Surrogate);
            catalog.add(
                id,
                SurrogateDef {
                    label: format!("redacted {kind}"),
                    features: Features::new(),
                    lowest: public,
                    info_score: 0.1,
                },
            );
            sensitive.push(id);
        }
        id
    };

    // Source artifacts.
    let mut layer: Vec<NodeId> = (0..config.width)
        .map(|i| {
            make_node(
                &mut graph,
                &mut markings,
                &mut catalog,
                &mut sensitive,
                &mut rng,
                format!("source-{i}"),
                "data",
            )
        })
        .collect();

    for stage in 0..config.stages {
        let mut next = Vec::with_capacity(config.width);
        for slot in 0..config.width {
            let process = make_node(
                &mut graph,
                &mut markings,
                &mut catalog,
                &mut sensitive,
                &mut rng,
                format!("process-{stage}-{slot}"),
                "process",
            );
            let fan_in = rng.gen_range(1..=config.max_fan_in.min(layer.len()));
            // Always consume the aligned artifact, plus random extras.
            graph
                .add_edge(layer[slot % layer.len()], process)
                .expect("aligned input is fresh");
            for _ in 1..fan_in {
                let input = layer[rng.gen_range(0..layer.len())];
                let _ = graph.add_edge(input, process); // duplicates are fine to skip
            }
            // The first stage also consumes the first source, so parallel
            // columns share an ancestor and the workflow stays connected
            // even at fan-in 1.
            if stage == 0 {
                let _ = graph.add_edge(layer[0], process);
            }
            let artifact = make_node(
                &mut graph,
                &mut markings,
                &mut catalog,
                &mut sensitive,
                &mut rng,
                format!("artifact-{stage}-{slot}"),
                "data",
            );
            graph
                .add_edge(process, artifact)
                .expect("artifact edge is fresh");
            next.push(artifact);
        }
        layer = next;
    }

    Workflow {
        graph,
        lattice,
        public,
        restricted,
        markings,
        catalog,
        sensitive,
        outputs: layer,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use surrogate_core::account::{generate_for_set, ProtectionContext};
    use surrogate_core::validate::check_all;

    #[test]
    fn workflow_is_a_connected_dag() {
        let wf = generate(WorkflowConfig::default());
        assert!(wf.graph.is_acyclic());
        assert!(wf.graph.is_connected());
        assert_eq!(wf.outputs.len(), 5);
        // stages × width processes + stages × width artifacts + width sources
        assert_eq!(wf.graph.node_count(), 5 + 4 * 5 * 2);
    }

    #[test]
    fn sensitive_nodes_have_surrogates_and_markings() {
        let wf = generate(WorkflowConfig {
            sensitive_fraction: 0.5,
            ..WorkflowConfig::default()
        });
        assert!(!wf.sensitive.is_empty());
        for &n in &wf.sensitive {
            assert_eq!(wf.graph.node(n).lowest, wf.restricted);
            assert_eq!(wf.catalog.for_node(n).len(), 1);
        }
    }

    #[test]
    fn public_account_is_valid_and_complete() {
        let wf = generate(WorkflowConfig {
            sensitive_fraction: 0.3,
            seed: 9,
            ..WorkflowConfig::default()
        });
        let ctx = ProtectionContext::new(&wf.graph, &wf.lattice, &wf.markings, &wf.catalog);
        let account = generate_for_set(&ctx, &[wf.public]).unwrap();
        // Every node appears (originals or surrogates) because surrogates
        // are registered for all sensitive nodes.
        assert_eq!(account.graph().node_count(), wf.graph.node_count());
        assert_eq!(account.surrogate_node_count(), wf.sensitive.len());
        let violations = check_all(&ctx, &account);
        assert!(violations.is_empty(), "{violations:?}");
    }

    #[test]
    fn deterministic_per_seed() {
        let a = generate(WorkflowConfig::default());
        let b = generate(WorkflowConfig::default());
        assert_eq!(a.graph.node_count(), b.graph.node_count());
        assert_eq!(a.graph.edge_count(), b.graph.edge_count());
        assert_eq!(a.sensitive, b.sensitive);
    }
}
