//! Quickstart: protect a three-node graph and inspect the result.
//!
//! Run with: `cargo run --example quickstart`

use surrogate_parenthood::prelude::*;

fn main() -> Result<()> {
    // 1. Privileges: Public at the bottom, Trusted above it.
    let mut builder = PrivilegeLattice::builder();
    let public = builder.add("Public")?;
    let trusted = builder.add("Trusted")?;
    builder.declare_dominates(trusted, public);
    let lattice = builder.finish()?;

    // 2. A tiny lineage: informant → analysis → report, where the
    //    informant's identity is Trusted-only.
    let mut graph = Graph::new();
    let informant = graph.add_node_with_features(
        "informant",
        Features::new()
            .with("name", "Joe")
            .with("phone", "123-456-7890"),
        trusted,
    );
    let analysis = graph.add_node("analysis", public);
    let report = graph.add_node("report", public);
    graph.add_edge(informant, analysis)?;
    graph.add_edge(analysis, report)?;

    // 3. Protection policy: the informant's role in the analysis may be
    //    used to keep paths alive but never shown directly, and a coarse
    //    surrogate is offered to the public.
    let mut markings = MarkingStore::new();
    markings.set_node(informant, public, Marking::Surrogate);
    let mut catalog = SurrogateCatalog::new();
    catalog.add(
        informant,
        SurrogateDef {
            label: "a trusted law-enforcement source".into(),
            features: Features::new(),
            lowest: public,
            info_score: 0.3,
        },
    );

    // 4. Generate the public protected account.
    let ctx = ProtectionContext::new(&graph, &lattice, &markings, &catalog);
    let account = generate(&ctx, public)?;

    println!(
        "original graph: {} nodes, {} edges",
        graph.node_count(),
        graph.edge_count()
    );
    println!(
        "public account: {} nodes ({} surrogate), {} edges ({} surrogate)",
        account.graph().node_count(),
        account.surrogate_node_count(),
        account.graph().edge_count(),
        account.surrogate_edge_count(),
    );

    for n in account.graph().node_ids() {
        let node = account.graph().node(n);
        let kind = match account.correspondence(n) {
            Correspondence::Original => "original",
            Correspondence::Surrogate { .. } => "surrogate",
        };
        println!("  node {n}: {:?} [{kind}]", node.label);
    }
    for (u, v) in account.graph().edges() {
        let tag = if account.is_surrogate_edge((u, v)) {
            " [surrogate edge]"
        } else {
            ""
        };
        println!(
            "  edge {:?} -> {:?}{tag}",
            account.graph().node(u).label,
            account.graph().node(v).label
        );
    }

    // 5. Measure what the public consumer retains.
    println!("path utility: {:.3}", path_utility(&graph, &account));
    println!("node utility: {:.3}", node_utility(&graph, &account));
    let opacity = edge_opacity(&account, OpacityModel::default(), (informant, analysis));
    println!("opacity of the hidden informant→analysis edge: {opacity:.3}");
    Ok(())
}
