//! Quickstart: protect a three-node lineage and serve it through the
//! `AccountService` — the workspace's one concurrent, epoch-versioned
//! serving surface.
//!
//! Run with: `cargo run --example quickstart`

use std::sync::Arc;

use surrogate_parenthood::plus_store::{
    AccountService, Direction, EdgeKind, NodeKind, PolicyStatement, QueryRequest, Store,
};
use surrogate_parenthood::prelude::*;

fn main() -> std::result::Result<(), Box<dyn std::error::Error>> {
    // 1. Privileges: Public at the bottom, Trusted above it (the store
    //    builds and validates the lattice from the declarations).
    let store = Arc::new(Store::new(&["Public", "Trusted"], &[(1, 0)])?);
    let public = store.predicate("Public").unwrap();
    let trusted = store.predicate("Trusted").unwrap();

    // 2. A tiny lineage: informant → analysis → report, where the
    //    informant's identity is Trusted-only.
    let informant = store.append_node(
        "informant",
        NodeKind::Agent,
        Features::new()
            .with("name", "Joe")
            .with("phone", "123-456-7890"),
        trusted,
    );
    let analysis = store.append_node("analysis", NodeKind::Process, Features::new(), public);
    let report = store.append_node("report", NodeKind::Data, Features::new(), public);
    store.append_edge(informant, analysis, EdgeKind::InputTo)?;
    store.append_edge(analysis, report, EdgeKind::GeneratedBy)?;

    // 3. Protection policy: a coarse surrogate is offered to the public in
    //    place of the informant.
    store.apply_policy(PolicyStatement::AddSurrogate {
        node: informant,
        label: "a trusted law-enforcement source".into(),
        features: Features::new(),
        lowest: public,
        info_score: 0.3,
    })?;

    // 4. Stand up the serving layer and fetch the public's maximally
    //    informative account from its cache.
    let service = AccountService::new(store.clone());
    let snapshot = service.snapshot();
    let consumer = Consumer::public(&snapshot.lattice);
    let account = service.get_account(&consumer, &Strategy::Surrogate)?;

    println!(
        "original graph: {} nodes, {} edges (epoch {})",
        snapshot.graph.node_count(),
        snapshot.graph.edge_count(),
        snapshot.epoch()
    );
    println!(
        "public account: {} nodes ({} surrogate), {} edges ({} surrogate)",
        account.graph().node_count(),
        account.surrogate_node_count(),
        account.graph().edge_count(),
        account.surrogate_edge_count(),
    );

    for n in account.graph().node_ids() {
        let node = account.graph().node(n);
        let kind = match account.correspondence(n) {
            Correspondence::Original => "original",
            Correspondence::Surrogate { .. } => "surrogate",
        };
        println!("  node {n}: {:?} [{kind}]", node.label);
    }
    for (u, v) in account.graph().edges() {
        let tag = if account.is_surrogate_edge((u, v)) {
            " [surrogate edge]"
        } else {
            ""
        };
        println!(
            "  edge {:?} -> {:?}{tag}",
            account.graph().node(u).label,
            account.graph().node(v).label
        );
    }

    // 5. The question consumers actually ask: what is upstream of the
    //    report? One batched call answers it through the cached account.
    let response = service.query(
        &consumer,
        &QueryRequest::new(report, Direction::Backward, u32::MAX, Strategy::Surrogate),
    )?;
    println!("\nupstream of the report (epoch {}):", response.epoch);
    for row in &response.rows {
        println!(
            "  depth {} | {}{}",
            row.depth,
            row.label,
            if row.surrogate { "  [surrogate]" } else { "" }
        );
    }

    // 6. Measure what the public consumer retains.
    println!(
        "\npath utility: {:.3}",
        path_utility(&snapshot.graph, &account)
    );
    println!(
        "node utility: {:.3}",
        node_utility(&snapshot.graph, &account)
    );
    let opacity = edge_opacity(
        &account,
        OpacityModel::default(),
        (
            surrogate_parenthood::surrogate_core::graph::NodeId(informant.0),
            surrogate_parenthood::surrogate_core::graph::NodeId(analysis.0),
        ),
    );
    println!(
        "opacity of the informant→analysis link: {opacity:.3} \
         (0 = the link is visible, just anonymized through the surrogate)"
    );
    Ok(())
}
