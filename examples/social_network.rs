//! The paper's running social-network scenario (Figures 1 and 2): a
//! criminal-investigation graph where individuals c and g are linked by a
//! sensitive gang-affiliation node f.
//!
//! Shows what consumers at each privilege level see — served through the
//! `AccountService` layer — and compares the four Fig. 2 protection
//! scenarios by utility and opacity.
//!
//! Run with: `cargo run --example social_network`

use std::sync::Arc;

use surrogate_parenthood::graphgen::{Figure2, Figure2Scenario};
use surrogate_parenthood::plus_store::{ingest, AccountService, IngestKinds};
use surrogate_parenthood::prelude::*;

/// Stands a service up over an ingested protection setup.
fn serve(
    graph: &Graph,
    lattice: &PrivilegeLattice,
    markings: &MarkingStore,
    catalog: &SurrogateCatalog,
) -> AccountService {
    let store = ingest(graph, lattice, markings, catalog, IngestKinds::default())
        .expect("paper setups are representable as policy");
    AccountService::new(Arc::new(store))
}

fn main() -> std::result::Result<(), Box<dyn std::error::Error>> {
    println!("== The Figure 1 investigation graph ==\n");
    let fig = surrogate_parenthood::graphgen::Figure1::new();
    println!(
        "{} individuals/affiliations, {} relationships",
        fig.graph.node_count(),
        fig.graph.edge_count()
    );
    let hw = high_water_set(&fig.graph, &fig.lattice);
    let names: Vec<&str> = hw.iter().map(|&p| fig.lattice.name(p)).collect();
    println!("high-water set: {names:?} (the paper's {{High-1, High-2}})\n");

    // The naive account: what standard access control gives a High-2 user,
    // served as the `naive` (HideNodes) strategy.
    let naive_service = serve(
        &fig.graph,
        &fig.lattice,
        &MarkingStore::new(),
        &SurrogateCatalog::new(),
    );
    let high2 = Consumer::new("high2-user", &fig.lattice, &[fig.high2]);
    let naive = naive_service
        .get_account(&high2, &Strategy::HideNodes)
        .expect("figure protection generates");
    println!("naively protected account (Fig. 1c):");
    println!(
        "  {} of {} nodes visible; path utility {:.3}, node utility {:.3}",
        naive.graph().node_count(),
        fig.graph.node_count(),
        path_utility(&fig.graph, &naive),
        node_utility(&fig.graph, &naive),
    );
    let c = fig.node("c");
    let g = fig.node("g");
    let c2 = naive.account_node(c).expect("c is public");
    let g2 = naive.account_node(g).expect("g is High-2");
    println!(
        "  can a High-2 user tell that c and g are related? {}\n",
        if reaches(naive.graph(), c2, g2) {
            "yes"
        } else {
            "no"
        }
    );

    // The four Fig. 2 strategies, each served from its own scenario store.
    println!("== The Figure 2 protection scenarios (High-2 consumer) ==\n");
    for scenario in Figure2Scenario::ALL {
        let fig2 = Figure2::new(scenario);
        let service = serve(
            &fig2.base.graph,
            &fig2.base.lattice,
            &fig2.markings,
            &fig2.catalog,
        );
        let consumer = Consumer::new("high2-user", &fig2.base.lattice, &[fig2.base.high2]);
        let account = service.get_account(&consumer, &Strategy::Surrogate)?;
        let edge = fig2.base.sensitive_edge();
        let connected = {
            let c2 = account.account_node(c);
            let g2 = account.account_node(g);
            match (c2, g2) {
                (Some(c2), Some(g2)) => reaches(account.graph(), c2, g2),
                _ => false,
            }
        };
        println!(
            "{} {} nodes, {} surrogate edges | path utility {:.2} | opacity(f->g) {:.3} | c~g related? {}",
            scenario.label(),
            account.graph().node_count(),
            account.surrogate_edge_count(),
            path_utility(&fig2.base.graph, &account),
            edge_opacity(&account, OpacityModel::directional_normalized(), edge),
            if connected { "yes" } else { "no" },
        );
    }
    println!();
    println!("Scenario (d) is the paper's sweet spot: the gang node stays opaque, yet");
    println!("the surrogate edge still tells the consumer that c and g are related.");
    Ok(())
}
