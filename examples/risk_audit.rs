//! An administrator's release audit (paper §4.2): before publishing a
//! protected account, rank the protected edges by inference risk, compare
//! protection strategies — including a custom strategy registered with
//! the serving layer — and decide whether the release meets the
//! application's opacity bar.
//!
//! Run with: `cargo run --example risk_audit`

use std::sync::Arc;

use surrogate_parenthood::graphgen::{social, SocialConfig};
use surrogate_parenthood::plus_store::{ingest, AccountService, IngestKinds};
use surrogate_parenthood::prelude::*;

/// A custom strategy plugged into the service without touching
/// `surrogate-core`: the redundancy-filter ablation, which keeps every
/// permitted pair as an explicit surrogate edge.
struct Unfiltered;

impl ProtectionStrategy for Unfiltered {
    fn name(&self) -> &str {
        "unfiltered"
    }

    fn protect(
        &self,
        ctx: &ProtectionContext<'_>,
        preds: &[PrivilegeId],
    ) -> Result<ProtectedAccount> {
        generate_with_options(
            ctx,
            preds,
            GenerateOptions {
                redundancy_filter: false,
            },
        )
    }
}

fn main() -> std::result::Result<(), Box<dyn std::error::Error>> {
    // A social network with three sensitive affiliations.
    let net = social::generate(SocialConfig {
        people: 24,
        ties_per_person: 2,
        affiliations: 3,
        members_per_affiliation: 4,
        // Two people per affiliation are related to the network only
        // through it — the paper's c-and-g-through-the-gang situation.
        lone_members_per_affiliation: 2,
        seed: 12,
    });
    let store = ingest(
        &net.graph,
        &net.lattice,
        &net.markings,
        &net.catalog,
        IngestKinds::default(),
    )?;
    let service = AccountService::new(Arc::new(store));
    service.register_strategy(Arc::new(Unfiltered));
    let auditor = Consumer::public(&service.snapshot().lattice);
    let model = OpacityModel::default();

    println!("== Release audit: public account of the investigation network ==\n");
    for name in ["surrogate", "hide", "unfiltered"] {
        let account = service.get_account_named(&auditor, name)?;
        let avg = average_protected_opacity(&net.graph, &account, model);
        let min = min_protected_opacity(&net.graph, &account, model);
        println!(
            "{name:>10}: path utility {:.3} | avg opacity {} | worst-case opacity {}",
            path_utility(&net.graph, &account),
            avg.map(|v| format!("{v:.3}")).unwrap_or_else(|| "-".into()),
            min.map(|v| format!("{v:.3}")).unwrap_or_else(|| "-".into()),
        );
    }

    // Drill into the surrogate account: which hidden ties are most at risk?
    let account = service.get_account_named(&auditor, "surrogate")?;
    let report = risk_report(&net.graph, &account, model);
    println!("\nmost inferable protected ties (lowest opacity first):");
    for entry in report.iter().take(5) {
        let (u, v) = entry.edge;
        println!(
            "  {:.3}  {} -> {}",
            entry.opacity,
            net.graph.node(u).label,
            net.graph.node(v).label,
        );
    }

    // Policy gate: everything below 0.5 opacity needs another look.
    let threshold = 0.5;
    let risky = edges_at_risk(&net.graph, &account, model, threshold);
    println!(
        "\n{} of {} protected ties fall below the {threshold} opacity bar",
        risky.len(),
        report.len(),
    );
    if risky.is_empty() {
        println!("release approved: no tie is easily inferable.");
    } else {
        println!("re-protect these before release (better surrogates or wider spans):");
        for entry in &risky {
            let (u, v) = entry.edge;
            println!(
                "  {:.3}  {} -> {}",
                entry.opacity,
                net.graph.node(u).label,
                net.graph.node(v).label,
            );
        }
    }
    Ok(())
}
