//! The Fig. 11 / Appendix A provenance scenario: the provenance of an
//! emergency treatment plan, queried by consumers with different
//! clearances through one shared `AccountService`.
//!
//! Run with: `cargo run --example provenance_emergency`

use std::sync::Arc;

use surrogate_parenthood::graphgen::Figure11;
use surrogate_parenthood::plus_store::{
    AccountService, EdgeKind, NodeKind, PolicyStatement, RecordId, Session, Store,
};
use surrogate_parenthood::prelude::*;
use surrogate_parenthood::surrogate_core::graph::NodeId;

fn main() -> Result<()> {
    // Build the Fig. 11 provenance graph, then persist it through the
    // store as a deployment would.
    let fig = Figure11::new();
    let store = Arc::new(
        Store::new(
            &[
                "Public",
                "Emergency Responder",
                "Cleared Emergency Responder",
                "Medical Provider",
                "National Security",
            ],
            &[(1, 0), (2, 1), (3, 0), (4, 0)],
        )
        .expect("figure 11 lattice is valid"),
    );

    for n in fig.graph.node_ids() {
        let node = fig.graph.node(n);
        let lowest = store
            .predicate(fig.lattice.name(node.lowest))
            .expect("same names");
        let kind = if node.label.contains("Record") || node.label.contains("Data") {
            NodeKind::Data
        } else {
            NodeKind::Process
        };
        store.append_node(node.label.clone(), kind, node.features.clone(), lowest);
    }
    for (from, to) in fig.graph.edges() {
        store
            .append_edge(RecordId(from.0), RecordId(to.0), EdgeKind::InputTo)
            .expect("figure edges are unique");
    }
    // Replay the figure's protection policy.
    let er = store.predicate("Emergency Responder").expect("declared");
    let planning = fig.graph.find_by_label("Local Action Planning").unwrap();
    let supply = fig.graph.find_by_label("Supply Analysis").unwrap();
    let stockpile = fig
        .graph
        .find_by_label("Emergency Supplies Stockpile")
        .unwrap();
    for (node, marking) in [
        (planning, Marking::Surrogate),
        (supply, Marking::Hide),
        (stockpile, Marking::Hide),
    ] {
        store
            .apply_policy(PolicyStatement::MarkNode {
                node: RecordId(node.0),
                predicate: Some(er),
                marking,
            })
            .expect("node exists");
    }
    let def = &fig.catalog.for_node(NodeId(planning.0))[0];
    store
        .apply_policy(PolicyStatement::AddSurrogate {
            node: RecordId(planning.0),
            label: def.label.clone(),
            features: def.features.clone(),
            lowest: er,
            info_score: def.info_score,
        })
        .expect("node exists");

    // One service, shared by every consumer's session: accounts are
    // generated once per (epoch, predicate, strategy) and cached.
    let service = Arc::new(AccountService::new(store.clone()));
    let lattice = service.snapshot().lattice.clone();
    let plan = RecordId(
        fig.graph
            .find_by_label("Emergency Treatment Plan")
            .unwrap()
            .0,
    );

    // An Emergency Responder asks: where did the treatment plan come from?
    println!("== Emergency Responder's provenance view of the treatment plan ==\n");
    let session = Session::open(service.clone(), Consumer::new("responder", &lattice, &[er]));
    for row in session.upstream(er, plan, u32::MAX).expect("authorized") {
        println!(
            "  depth {} | {}{}",
            row.depth,
            row.label,
            if row.surrogate { "  [surrogate]" } else { "" }
        );
    }
    println!();
    println!("Prior systems gave this user nothing upstream of the plan (Appendix A);");
    println!("with surrogates the epidemiological chain stays visible while the");
    println!("CER-only supply chain is absent entirely.\n");

    // A Cleared Emergency Responder sees the full planning chain, through
    // the same service (and the same cached materialization).
    println!("== Cleared Emergency Responder's view ==\n");
    let cer = lattice
        .by_name("Cleared Emergency Responder")
        .expect("declared");
    let session = Session::open(service.clone(), Consumer::new("cleared", &lattice, &[cer]));
    for row in session.upstream(cer, plan, u32::MAX).expect("authorized") {
        println!(
            "  depth {} | {}{}",
            row.depth,
            row.label,
            if row.surrogate { "  [surrogate]" } else { "" }
        );
    }
    println!();
    println!(
        "service epoch {}: {} account(s) cached across both consumers",
        service.epoch(),
        service.cached_accounts()
    );
    Ok(())
}
