//! The intro's computer-network scenario: a company shares its network
//! topology with a newly acquired company and with business partners, but
//! some links and appliances are visible only internally.
//!
//! Demonstrates multi-predicate lattices, per-consumer accounts served
//! from one shared `AccountService` cache, and how surrogate edges keep
//! reachability analyses meaningful for partners.
//!
//! Run with: `cargo run --example computer_network`

use std::sync::Arc;

use surrogate_parenthood::plus_store::{ingest, AccountService, IngestKinds};
use surrogate_parenthood::prelude::*;

fn main() -> std::result::Result<(), Box<dyn std::error::Error>> {
    // Privileges: Public ⊑ Partner; Public ⊑ Acquired; both below Internal.
    let mut builder = PrivilegeLattice::builder();
    let public = builder.add("Public")?;
    let partner = builder.add("Partner")?;
    let acquired = builder.add("Acquired")?;
    let internal = builder.add("Internal")?;
    builder.declare_dominates(partner, public);
    builder.declare_dominates(acquired, public);
    builder.declare_dominates(internal, partner);
    builder.declare_dominates(internal, acquired);
    let lattice = builder.finish()?;

    // Topology: edge routers are public; the security appliance chain is
    // internal; the data-center fabric is for the acquired company.
    let mut net = Graph::new();
    let edge_router = net.add_node("edge-router", public);
    let firewall = net.add_node_with_features(
        "ids-firewall",
        Features::new().with("vendor", "acme").with("model", "FW-9"),
        internal,
    );
    let core_switch = net.add_node("core-switch", public);
    let fabric_a = net.add_node("dc-fabric-a", acquired);
    let fabric_b = net.add_node("dc-fabric-b", acquired);
    let app_server = net.add_node("app-server", public);
    let db_server = net.add_node("db-server", partner);
    for (a, b) in [
        (edge_router, firewall),
        (firewall, core_switch),
        (core_switch, fabric_a),
        (core_switch, fabric_b),
        (fabric_a, app_server),
        (fabric_b, db_server),
    ] {
        net.add_bidirectional(a, b)?;
    }

    // Policy: the firewall's position is never shown outside Internal, but
    // paths through it survive; a bare appliance surrogate exists for
    // partners so inventory counts stay truthful.
    let mut markings = MarkingStore::new();
    for p in [public, partner, acquired] {
        markings.set_node(firewall, p, Marking::Surrogate);
    }
    let mut catalog = SurrogateCatalog::new();
    catalog.add(
        firewall,
        SurrogateDef {
            label: "security appliance".into(),
            features: Features::new().with("vendor", "undisclosed"),
            lowest: partner,
            info_score: 0.4,
        },
    );

    // Persist the setup and put the serving layer in front of it: every
    // consumer below shares one materialization and one account cache.
    let store = ingest(&net, &lattice, &markings, &catalog, IngestKinds::default())?;
    let service = AccountService::new(Arc::new(store));
    let snapshot = service.snapshot();

    for (name, predicate) in [
        ("Partner", partner),
        ("Acquired", acquired),
        ("Internal", internal),
    ] {
        let consumer = Consumer::new(name, &snapshot.lattice, &[predicate]);
        let account = service.get_account(&consumer, &Strategy::Surrogate)?;
        println!("== {name} view ==");
        println!(
            "  {} of {} devices visible ({} surrogate), {} links ({} surrogate)",
            account.graph().node_count(),
            net.node_count(),
            account.surrogate_node_count(),
            account.graph().edge_count(),
            account.surrogate_edge_count(),
        );
        // Reachability question a partner would ask: can traffic from the
        // edge router reach the app server?
        let reachable = match (
            account.account_node(edge_router),
            account.account_node(app_server),
        ) {
            (Some(a), Some(b)) => reaches(account.graph(), a, b),
            _ => false,
        };
        println!("  edge-router can reach app-server? {reachable}");
        println!(
            "  path utility {:.3}, node utility {:.3}",
            path_utility(&net, &account),
            node_utility(&net, &account),
        );
        println!();
    }

    println!("The Partner view hides the firewall yet keeps end-to-end reachability");
    println!(
        "via surrogate links; the Internal view is the raw topology. All three were\nserved from one AccountService ({} accounts cached at epoch {}).",
        service.cached_accounts(),
        service.epoch()
    );
    Ok(())
}
