//! Integration suite pinning the whole stack to the paper's published
//! numbers and claims, end to end across crates.

use surrogate_parenthood::graphgen::{Figure1, Figure11, Figure2, Figure2Scenario};
use surrogate_parenthood::prelude::*;
use surrogate_parenthood::surrogate_core::validate::check_all;

#[test]
fn figure1_graph_and_lattice() {
    let fig = Figure1::new();
    assert_eq!(fig.graph.node_count(), 11);
    assert_eq!(fig.graph.edge_count(), 10);
    let hw = high_water_set(&fig.graph, &fig.lattice);
    assert_eq!(hw.len(), 2, "HW(G) = {{High-1, High-2}} (§3.1)");
    assert!(hw.contains(&fig.high1));
    assert!(hw.contains(&fig.high2));
}

#[test]
fn naive_account_utilities_match_figure3() {
    let fig = Figure1::new();
    let naive = fig.naive_account().unwrap();
    let pu = path_utility(&fig.graph, &naive);
    let nu = node_utility(&fig.graph, &naive);
    assert!(
        (pu - 1.4 / 11.0).abs() < 1e-12,
        "PathUtility = .13, got {pu}"
    );
    assert!(
        (nu - 6.0 / 11.0).abs() < 1e-12,
        "NodeUtility = 6/11, got {nu}"
    );
}

#[test]
fn table1_path_utilities() {
    let expect = [
        (Figure2Scenario::A, 4.2 / 11.0),
        (Figure2Scenario::B, 3.0 / 11.0),
        (Figure2Scenario::C, 1.4 / 11.0),
        (Figure2Scenario::D, 3.0 / 11.0),
    ];
    for (scenario, want) in expect {
        let fig = Figure2::new(scenario);
        let account = fig.account().unwrap();
        let got = path_utility(&fig.base.graph, &account);
        assert!(
            (got - want).abs() < 1e-12,
            "{}: {got} vs {want}",
            scenario.label()
        );
    }
}

#[test]
fn table1_path_utilities_unchanged_through_account_service() {
    // The serving layer must not perturb the paper numbers: accounts
    // fetched from the `AccountService` cache measure identically to the
    // ones generated directly from the figure.
    use std::sync::Arc;
    use surrogate_parenthood::plus_store::{ingest, AccountService, IngestKinds};

    let expect = [
        (Figure2Scenario::A, 4.2 / 11.0),
        (Figure2Scenario::B, 3.0 / 11.0),
        (Figure2Scenario::C, 1.4 / 11.0),
        (Figure2Scenario::D, 3.0 / 11.0),
    ];
    for (scenario, want) in expect {
        let fig = Figure2::new(scenario);
        let store = ingest(
            &fig.base.graph,
            &fig.base.lattice,
            &fig.markings,
            &fig.catalog,
            IngestKinds::default(),
        )
        .expect("figure setups are representable");
        let service = AccountService::new(Arc::new(store));
        let consumer = Consumer::new("high2", &fig.base.lattice, &[fig.base.high2]);
        let served = service
            .get_account(&consumer, &Strategy::Surrogate)
            .expect("authorized");
        let got = path_utility(&fig.base.graph, &served);
        assert!(
            (got - want).abs() < 1e-12,
            "{} via service: {got} vs {want}",
            scenario.label()
        );
        let direct = fig.account().unwrap();
        assert_eq!(
            served.graph().edge_count(),
            direct.graph().edge_count(),
            "{}: served account shape matches direct generation",
            scenario.label()
        );
        assert!(
            (edge_opacity(
                &served,
                OpacityModel::directional_normalized(),
                fig.base.sensitive_edge()
            ) - edge_opacity(
                &direct,
                OpacityModel::directional_normalized(),
                fig.base.sensitive_edge()
            ))
            .abs()
                < 1e-12,
            "{}: opacity unchanged through the service",
            scenario.label()
        );
    }
}

#[test]
fn table1_opacity_order_under_both_calibrations() {
    let opacity = |scenario, model| {
        let fig = Figure2::new(scenario);
        let account = fig.account().unwrap();
        edge_opacity(&account, model, fig.base.sensitive_edge())
    };
    for model in [
        OpacityModel::directional(),
        OpacityModel::directional_normalized(),
    ] {
        let a = opacity(Figure2Scenario::A, model);
        let b = opacity(Figure2Scenario::B, model);
        let c = opacity(Figure2Scenario::C, model);
        let d = opacity(Figure2Scenario::D, model);
        assert_eq!(a, 0.0);
        assert_eq!(b, 1.0);
        assert!(
            a < c && c < d && d < b,
            "paper order 0 < (c) < (d) < 1: {c} {d}"
        );
    }
}

#[test]
fn figure2_accounts_satisfy_theorem1_checks() {
    for scenario in Figure2Scenario::ALL {
        let fig = Figure2::new(scenario);
        let ctx = ProtectionContext::new(
            &fig.base.graph,
            &fig.base.lattice,
            &fig.markings,
            &fig.catalog,
        );
        let account = fig.account().unwrap();
        let violations = check_all(&ctx, &account);
        assert!(
            violations.is_empty(),
            "{}: {violations:?}",
            scenario.label()
        );
    }
}

#[test]
fn running_example_c_and_g_stay_related_under_scenario_d() {
    // §1: "there is currently no way to let a user with High-2 privileges
    // know that c and g are related" — surrogates fix exactly this.
    let fig = Figure2::new(Figure2Scenario::D);
    let account = fig.account().unwrap();
    let c = account.account_node(fig.base.node("c")).unwrap();
    let g = account.account_node(fig.base.node("g")).unwrap();
    assert!(reaches(account.graph(), c, g));
    // While the gang node's original features stay hidden:
    let f2 = account.account_node(fig.base.node("f")).unwrap();
    assert_eq!(account.graph().node(f2).label, "f'");
    assert!(account.graph().node(f2).features.get("kind").is_some());
    assert_ne!(
        account.graph().node(f2).features.get("kind"),
        fig.base.graph.node(fig.base.node("f")).features.get("kind"),
        "surrogate coarsens the affiliation"
    );
}

#[test]
fn appendix_a_er_view_sees_contributing_nodes() {
    let fig = Figure11::new();
    let account = fig.er_account().unwrap();
    let plan = fig.graph.find_by_label("Emergency Treatment Plan").unwrap();
    let plan2 = account.account_node(plan).unwrap();
    let upstream = ancestors(account.graph(), plan2);
    // The epidemiological chain is fully visible.
    for label in [
        "Trend Model Simulator",
        "Specific Epidemic Model",
        "CDC Regional Epidemic Model",
        "Historical Disease Data Region 1",
        "Number of affected patients at facility",
    ] {
        let original = fig.graph.find_by_label(label).unwrap();
        let visible = account.account_node(original);
        assert!(visible.is_some(), "{label} should be visible to ER");
        assert!(
            upstream.nodes().any(|n| n == visible.unwrap()),
            "{label} should appear upstream of the plan"
        );
    }
    // The CER-only chain is not.
    for label in ["Emergency Supplies Stockpile", "Supply Analysis"] {
        let original = fig.graph.find_by_label(label).unwrap();
        assert!(account.account_node(original).is_none(), "{label} leaked");
    }
}
