//! Documentation conformance: the prose under `docs/` cannot drift from
//! the implementation silently.
//!
//! Two checks:
//!
//! 1. `docs/WIRE.md` names every request variant, response variant, and
//!    error kind the wire module actually ships (the normative lists
//!    live next to the types as `REQUEST_VARIANTS` / `RESPONSE_VARIANTS`
//!    / `ERROR_KINDS`) — adding a message without documenting it fails
//!    the build.
//! 2. Every relative Markdown link in `README.md` and `docs/*.md`
//!    resolves to a file that exists in the repository.

use std::collections::BTreeSet;
use std::path::{Path, PathBuf};

use surrogate_parenthood::plus_store::wire::{
    ERROR_KINDS, MAX_REPLICAS, MAX_SHARDS, PROTOCOL_VERSION, REQUEST_VARIANTS, RESPONSE_VARIANTS,
};

fn repo_root() -> PathBuf {
    PathBuf::from(env!("CARGO_MANIFEST_DIR"))
}

fn read(path: &Path) -> String {
    std::fs::read_to_string(path).unwrap_or_else(|e| panic!("cannot read {}: {e}", path.display()))
}

#[test]
fn wire_spec_names_every_message_and_error_kind() {
    let spec = read(&repo_root().join("docs/WIRE.md"));
    let mut missing = Vec::new();
    for (list, names) in [
        ("request variant", &REQUEST_VARIANTS[..]),
        ("response variant", &RESPONSE_VARIANTS[..]),
        ("error kind", &ERROR_KINDS[..]),
    ] {
        for name in names {
            // Wrapped in backticks in the doc's tables and prose; a bare
            // substring match would let e.g. "Written" satisfy "Write".
            if !spec.contains(&format!("`{name}`")) {
                missing.push(format!("{list} `{name}`"));
            }
        }
    }
    assert!(
        missing.is_empty(),
        "docs/WIRE.md is missing: {missing:?} — the spec is normative; document the change"
    );
    assert!(
        spec.contains(&format!("**Protocol version:** {PROTOCOL_VERSION}")),
        "docs/WIRE.md states protocol version {PROTOCOL_VERSION}"
    );
    // The version-history table must cover every version up to the
    // current one: bumping PROTOCOL_VERSION without a history row is
    // exactly the silent drift this test exists to catch.
    for version in 1..=PROTOCOL_VERSION {
        assert!(
            spec.contains(&format!("| {version} | ")),
            "docs/WIRE.md's version history is missing a row for version {version}"
        );
    }
    // The limits table must state the decode-time bounds with the
    // values the implementation enforces.
    for (name, value) in [("MAX_SHARDS", MAX_SHARDS), ("MAX_REPLICAS", MAX_REPLICAS)] {
        assert!(
            spec.contains(&format!("`{name}`")),
            "docs/WIRE.md never names the `{name}` bound"
        );
        let human = value
            .to_string()
            .as_bytes()
            .rchunks(3)
            .rev()
            .map(|c| std::str::from_utf8(c).unwrap())
            .collect::<Vec<_>>()
            .join("\u{202f}");
        assert!(
            spec.contains(&value.to_string())
                || spec.contains(&human)
                || spec.contains(&human.replace('\u{202f}', " ")),
            "docs/WIRE.md states {name} = {value}"
        );
    }
}

#[test]
fn doc_links_resolve() {
    let root = repo_root();
    let mut pages = vec![root.join("README.md")];
    for entry in std::fs::read_dir(root.join("docs")).expect("docs/ exists") {
        let path = entry.expect("readable entry").path();
        if path.extension().is_some_and(|e| e == "md") {
            pages.push(path);
        }
    }
    assert!(pages.len() >= 4, "README + three docs pages at minimum");

    let mut broken = BTreeSet::new();
    for page in &pages {
        let text = read(page);
        let dir = page.parent().expect("pages live in a directory");
        // Scan inline links: `](target)`. External and intra-page
        // targets are out of scope; everything else must exist on disk.
        let mut rest = text.as_str();
        while let Some(at) = rest.find("](") {
            rest = &rest[at + 2..];
            let Some(end) = rest.find(')') else { break };
            let target = &rest[..end];
            rest = &rest[end + 1..];
            if target.starts_with("http://")
                || target.starts_with("https://")
                || target.starts_with('#')
                || target.is_empty()
            {
                continue;
            }
            let path = target.split('#').next().unwrap_or(target);
            if !dir.join(path).exists() {
                broken.insert(format!("{}: {target}", page.display()));
            }
        }
    }
    assert!(broken.is_empty(), "broken relative links: {broken:?}");
}
