//! Golden-fixture compatibility: committed serialized artifacts under
//! `tests/fixtures/` must keep loading **byte-identically** across PRs.
//! A failure here means the snapshot codec or the WAL frame format
//! changed silently — bump `codec::VERSION` / `codec::WAL_VERSION` and
//! write a migration instead.
//!
//! To regenerate after an *intentional* format change:
//!
//! ```sh
//! cargo test --test golden_fixture -- --ignored regenerate
//! ```

use std::path::{Path, PathBuf};

use surrogate_parenthood::plus_store::{codec, wal, Store};

fn fixtures() -> PathBuf {
    Path::new(env!("CARGO_MANIFEST_DIR")).join("tests/fixtures")
}

/// The deterministic store behind the snapshot fixture: the paper's
/// Figure 1/2(d) example, exactly what `spgraph demo` writes.
fn fig2d_store() -> Store {
    let fig = surrogate_parenthood::graphgen::Figure2::new(
        surrogate_parenthood::graphgen::Figure2Scenario::D,
    );
    surrogate_parenthood::plus_store::ingest(
        &fig.base.graph,
        &fig.base.lattice,
        &fig.markings,
        &fig.catalog,
        surrogate_parenthood::plus_store::IngestKinds::default(),
    )
    .expect("the paper's example is representable")
}

/// The deterministic workload behind the durable-directory fixture.
fn build_durable(dir: &Path) -> Store {
    use surrogate_core::feature::Features;
    use surrogate_parenthood::plus_store::{
        DurabilityOptions, EdgeKind, NodeKind, PolicyStatement,
    };
    let store = Store::create_durable_with(
        dir,
        &["Public", "High"],
        &[(1, 0)],
        DurabilityOptions {
            fsync: false,
            ..Default::default()
        },
    )
    .unwrap();
    let public = store.predicate("Public").unwrap();
    let high = store.predicate("High").unwrap();
    let src = store.append_node(
        "source",
        NodeKind::Agent,
        Features::new().with("v", 1i64),
        high,
    );
    let out = store.append_node("report", NodeKind::Data, Features::new(), public);
    store.append_edge(src, out, EdgeKind::GeneratedBy).unwrap();
    store
        .apply_policy(PolicyStatement::AddSurrogate {
            node: src,
            label: "a source".into(),
            features: Features::new(),
            lowest: public,
            info_score: 0.5,
        })
        .unwrap();
    store
}

#[test]
fn golden_snapshot_stays_byte_compatible() {
    let path = fixtures().join("fig2d.snap");
    let bytes = std::fs::read(&path).expect("committed fixture exists");

    // Decodes under the current codec…
    let data = codec::decode(&bytes).expect("golden snapshot decodes");
    assert_eq!(data.nodes.len(), 11);
    assert_eq!(data.edges.len(), 10);
    assert_eq!(data.policy.len(), 3);
    assert_eq!(data.clock, 24);

    // …loads as a store with the same shape…
    let store = Store::load(&path).expect("golden snapshot loads");
    assert_eq!(store.node_count(), 11);
    assert_eq!(store.edge_count(), 10);
    assert_eq!(store.clock(), 24);
    let m = store.materialize();
    assert_eq!(m.graph.node_count(), 11);

    // …and the current encoder reproduces it byte for byte.
    assert_eq!(
        codec::encode(&data),
        bytes,
        "snapshot encoding drifted — bump codec::VERSION and migrate"
    );
    assert_eq!(store.to_bytes(), bytes, "store re-encoding drifted");

    // Today's generator still produces the identical artifact.
    assert_eq!(
        fig2d_store().to_bytes(),
        bytes,
        "the Figure 2(d) generator no longer matches the committed fixture"
    );
}

#[test]
fn golden_durable_directory_stays_recoverable() {
    let src = fixtures().join("durable");
    let expected = std::fs::read(fixtures().join("durable-expected.snap"))
        .expect("committed expected-state fixture");

    // Recovery truncates torn tails in place, so operate on a copy.
    let work = std::env::temp_dir().join(format!("golden-durable-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&work);
    std::fs::create_dir_all(&work).unwrap();
    for entry in std::fs::read_dir(&src).expect("committed durable fixture exists") {
        let entry = entry.unwrap();
        std::fs::copy(entry.path(), work.join(entry.file_name())).unwrap();
    }

    let (store, report) = Store::open_reporting(&work, Default::default())
        .expect("golden durable directory recovers");
    assert!(
        report.truncated.is_none(),
        "fixture log is whole: {report:?}"
    );
    assert_eq!(report.records_replayed, 4, "all four logged ops replay");
    assert_eq!(
        store.to_bytes(),
        expected,
        "WAL recovery of the golden directory drifted — bump codec::WAL_VERSION and migrate"
    );
    std::fs::remove_dir_all(&work).ok();
}

/// Writes the fixtures. Run explicitly (`-- --ignored regenerate`) only
/// after an intentional, version-bumped format change.
#[test]
#[ignore = "regenerates the committed golden fixtures"]
fn regenerate_golden_fixtures() {
    let dir = fixtures();
    std::fs::create_dir_all(&dir).unwrap();
    fig2d_store().save(dir.join("fig2d.snap")).unwrap();

    let durable = dir.join("durable");
    let _ = std::fs::remove_dir_all(&durable);
    let store = build_durable(&durable);
    store
        .save(dir.join("durable-expected.snap"))
        .expect("expected-state snapshot writes");
    let segments = wal::list_segments(&durable).unwrap();
    assert_eq!(segments.len(), 1);
    println!("regenerated fixtures under {}", dir.display());
}
