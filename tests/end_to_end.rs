//! End-to-end flows across all crates: generate a workload, persist it in
//! the store, reload it, stand the `AccountService` up in front of it,
//! open consumer sessions, and answer protected lineage queries — the
//! full deployment pipeline of the paper's Fig. 10.

use std::sync::Arc;

use surrogate_parenthood::graphgen::{workflow, WorkflowConfig};
use surrogate_parenthood::plus_store::{
    ingest, AccountService, EdgeKind, IngestKinds, NodeKind, PolicyStatement, RecordId, Session,
    Store,
};
use surrogate_parenthood::prelude::*;
use surrogate_parenthood::surrogate_core::graph::NodeId;

/// Imports a generated workflow into a store, policy included.
fn store_from_workflow(wf: &workflow::Workflow) -> Store {
    ingest(
        &wf.graph,
        &wf.lattice,
        &wf.markings,
        &wf.catalog,
        IngestKinds::default(),
    )
    .expect("workflow setups are representable")
}

#[test]
fn persist_reload_protect_query() {
    let wf = workflow::generate(WorkflowConfig {
        stages: 3,
        width: 4,
        max_fan_in: 2,
        sensitive_fraction: 0.3,
        seed: 77,
    });
    let store = store_from_workflow(&wf);

    // Persist and reload through the snapshot codec.
    let path = std::env::temp_dir().join(format!("sp-e2e-{}.snapshot", std::process::id()));
    store.save(&path).unwrap();
    let reloaded = Store::load(&path).unwrap();
    std::fs::remove_file(&path).ok();
    assert_eq!(reloaded.node_count(), store.node_count());

    // Serve the reloaded store and query lineage of a workflow output
    // through a public session.
    let service = Arc::new(AccountService::new(Arc::new(reloaded)));
    let snapshot = service.snapshot();
    let public = snapshot.lattice.by_name("Public").unwrap();
    let consumer = Consumer::public(&snapshot.lattice);
    let session = Session::open(service, consumer);
    let output = RecordId(wf.outputs[0].0);
    let up = session.upstream(public, output, u32::MAX);

    match up {
        Ok(rows) => {
            // Either the root is visible and lineage flows, or the root
            // itself was sensitive (then rows is empty).
            let root_sensitive = wf.sensitive.contains(&wf.outputs[0]);
            if !root_sensitive {
                assert!(!rows.is_empty(), "visible output must have provenance");
            }
            for row in &rows {
                // Labels of surrogate rows are the registered surrogates.
                if row.surrogate {
                    assert!(row.label.starts_with("redacted"), "{}", row.label);
                }
            }
        }
        Err(e) => panic!("public session must be authorized: {e}"),
    }
}

#[test]
fn restricted_consumer_sees_more_than_public() {
    let wf = workflow::generate(WorkflowConfig {
        stages: 4,
        width: 4,
        max_fan_in: 3,
        sensitive_fraction: 0.4,
        seed: 3,
    });
    assert!(!wf.sensitive.is_empty(), "seed must yield sensitive nodes");
    let store = store_from_workflow(&wf);

    let service = Arc::new(AccountService::new(Arc::new(store)));
    let lattice = service.snapshot().lattice.clone();
    let public = lattice.by_name("Public").unwrap();
    let restricted = lattice.by_name("Restricted").unwrap();

    let public_session = Session::open(service.clone(), Consumer::public(&lattice));
    let insider = Consumer::new("insider", &lattice, &[restricted]);
    let insider_session = Session::open(service, insider);

    let public_account = public_session.account(public, Strategy::Surrogate).unwrap();
    let insider_account = insider_session
        .account(restricted, Strategy::Surrogate)
        .unwrap();

    assert_eq!(
        public_account.surrogate_node_count(),
        wf.sensitive.len(),
        "public consumer sees surrogates"
    );
    assert_eq!(
        insider_account.surrogate_node_count(),
        0,
        "insider sees originals"
    );
    assert!(
        insider_account.graph().edge_count()
            >= public_account.graph().edge_count() - public_account.surrogate_edge_count(),
        "insider's view is at least as connected in original edges"
    );
}

#[test]
fn session_rejects_predicates_above_credentials() {
    let wf = workflow::generate(WorkflowConfig::default());
    let store = store_from_workflow(&wf);
    let service = Arc::new(AccountService::new(Arc::new(store)));
    let lattice = service.snapshot().lattice.clone();
    let restricted = lattice.by_name("Restricted").unwrap();
    let session = Session::open(service, Consumer::public(&lattice));
    assert!(session.account(restricted, Strategy::Surrogate).is_err());
}

#[test]
fn measures_agree_across_the_facade() {
    // The same computation through the facade and through surrogate-core
    // directly must agree (no duplicated logic drifting apart).
    let wf = workflow::generate(WorkflowConfig {
        stages: 2,
        width: 3,
        max_fan_in: 2,
        sensitive_fraction: 0.5,
        seed: 5,
    });
    let ctx = ProtectionContext::new(&wf.graph, &wf.lattice, &wf.markings, &wf.catalog);
    let account = generate_for_set(&ctx, &[wf.public]).unwrap();
    let via_prelude = path_utility(&wf.graph, &account);
    let via_core =
        surrogate_parenthood::surrogate_core::measures::path_utility(&wf.graph, &account);
    assert_eq!(via_prelude, via_core);
}

#[test]
fn hide_strategy_breaks_paths_surrogates_restore_them() {
    // The paper's core pitch, executed through the whole stack: a sensitive
    // middle node breaks lineage under naive hiding; surrogates restore it.
    let store = Store::new(&["Public", "High"], &[(1, 0)]).unwrap();
    let public = store.predicate("Public").unwrap();
    let high = store.predicate("High").unwrap();
    let src = store.append_node("source", NodeKind::Data, Features::new(), public);
    let mid = store.append_node("secret process", NodeKind::Process, Features::new(), high);
    let out = store.append_node("result", NodeKind::Data, Features::new(), public);
    store.append_edge(src, mid, EdgeKind::InputTo).unwrap();
    store.append_edge(mid, out, EdgeKind::GeneratedBy).unwrap();
    store
        .apply_policy(PolicyStatement::MarkNode {
            node: mid,
            predicate: Some(public),
            marking: Marking::Surrogate,
        })
        .unwrap();

    let m = store.materialize();
    let naive = m.context().protect(public, Strategy::HideNodes).unwrap();
    let surrogate = m.context().protect(public, Strategy::Surrogate).unwrap();

    let src2 = naive.account_node(NodeId(src.0)).unwrap();
    let out2 = naive.account_node(NodeId(out.0)).unwrap();
    assert!(
        !reaches(naive.graph(), src2, out2),
        "naive hiding breaks lineage"
    );

    let src2 = surrogate.account_node(NodeId(src.0)).unwrap();
    let out2 = surrogate.account_node(NodeId(out.0)).unwrap();
    assert!(
        reaches(surrogate.graph(), src2, out2),
        "surrogate edge restores lineage"
    );
}
