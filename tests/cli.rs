//! Integration tests for the `spgraph` CLI: demo → info → protect →
//! query → measure over a real snapshot file, all served through the
//! `AccountService` layer.

use std::process::Command;

fn spgraph(args: &[&str]) -> (bool, String, String) {
    let output = Command::new(env!("CARGO_BIN_EXE_spgraph"))
        .args(args)
        .output()
        .expect("spgraph runs");
    (
        output.status.success(),
        String::from_utf8_lossy(&output.stdout).into_owned(),
        String::from_utf8_lossy(&output.stderr).into_owned(),
    )
}

fn temp_path(name: &str) -> String {
    std::env::temp_dir()
        .join(format!("spgraph-test-{}-{name}", std::process::id()))
        .to_string_lossy()
        .into_owned()
}

#[test]
fn demo_info_protect_measure_pipeline() {
    let snapshot = temp_path("pipeline.snapshot");
    let dot = temp_path("account.dot");

    let (ok, stdout, stderr) = spgraph(&["demo", &snapshot]);
    assert!(ok, "demo failed: {stderr}");
    assert!(stdout.contains("11 nodes"), "{stdout}");

    let (ok, stdout, _) = spgraph(&["info", &snapshot]);
    assert!(ok);
    assert!(stdout.contains("11 node records"), "{stdout}");
    assert!(
        stdout.contains("high-water set: {High-1, High-2}"),
        "{stdout}"
    );

    let (ok, stdout, _) = spgraph(&["protect", &snapshot, "-p", "High-2", "--dot", &dot]);
    assert!(ok);
    assert!(
        stdout.contains("7 of 11 nodes visible (1 surrogate)"),
        "{stdout}"
    );
    assert!(stdout.contains("path utility 0.273"), "{stdout}");
    let dot_text = std::fs::read_to_string(&dot).expect("dot written");
    assert!(dot_text.contains("digraph"));
    assert!(dot_text.contains("summarizes"), "surrogate edge exported");

    // Protected lineage through the batch query API: record 7 is `g`.
    // The gang node `f` is hidden in scenario (d), yet the surrogate edge
    // keeps `c` (record 3) one hop upstream — the paper's §1 claim.
    let (ok, stdout, stderr) = spgraph(&[
        "query",
        &snapshot,
        "-p",
        "High-2",
        "--root",
        "7",
        "--direction",
        "up",
    ]);
    assert!(ok, "query failed: {stderr}");
    assert!(stdout.contains("lineage of record 7"), "{stdout}");
    assert!(stdout.contains("depth 1 | record 3 | c"), "{stdout}");

    // Depth bounding truncates the answer.
    let (ok, bounded, _) = spgraph(&[
        "query",
        &snapshot,
        "-p",
        "High-2",
        "--root",
        "7",
        "--direction",
        "up",
        "--depth",
        "1",
    ]);
    assert!(ok);
    assert!(
        bounded.lines().count() < stdout.lines().count(),
        "depth 1 must answer with fewer rows:\n{bounded}\nvs\n{stdout}"
    );

    let (ok, stdout, _) = spgraph(&["measure", &snapshot, "-p", "High-2"]);
    assert!(ok);
    assert!(stdout.contains("path utility 0.273"), "{stdout}");
    assert!(stdout.contains("opacity over protected edges"), "{stdout}");

    // Hide strategy drops the surrogate edge.
    let (ok, stdout, _) = spgraph(&["protect", &snapshot, "-p", "High-2", "--strategy", "hide"]);
    assert!(ok);
    assert!(stdout.contains("(0 surrogate)"), "{stdout}");

    std::fs::remove_file(&snapshot).ok();
    std::fs::remove_file(&dot).ok();
}

#[test]
fn durable_demo_checkpoint_recover_pipeline() {
    let dir = temp_path("durable-store");
    std::fs::remove_dir_all(&dir).ok();

    let (ok, stdout, stderr) = spgraph(&["demo", &dir, "--durable"]);
    assert!(ok, "durable demo failed: {stderr}");
    assert!(stdout.contains("(durable)"), "{stdout}");

    // The ordinary pipeline serves straight off the recovered directory.
    let (ok, stdout, _) = spgraph(&["info", &dir]);
    assert!(ok);
    assert!(stdout.contains("11 node records"), "{stdout}");

    let (ok, stdout, _) = spgraph(&["protect", &dir, "-p", "High-2"]);
    assert!(ok);
    assert!(
        stdout.contains("7 of 11 nodes visible (1 surrogate)"),
        "{stdout}"
    );

    // recover --verify exits 0 and proves the state is servable.
    let (ok, stdout, stderr) = spgraph(&["recover", &dir, "--verify"]);
    assert!(ok, "recover --verify failed: {stderr}");
    assert!(stdout.contains("verify: ok"), "{stdout}");
    assert!(stdout.contains("clock 24"), "{stdout}");

    let (ok, stdout, stderr) = spgraph(&["checkpoint", &dir]);
    assert!(ok, "checkpoint failed: {stderr}");
    assert!(stdout.contains("checkpointed"), "{stdout}");
    assert!(stdout.contains("clock 24"), "{stdout}");

    // Still recoverable and identical after the checkpoint.
    let (ok, stdout, _) = spgraph(&["recover", &dir, "--verify"]);
    assert!(ok);
    assert!(stdout.contains("verify: ok"), "{stdout}");

    // Corrupt the write-ahead log tail: recovery truncates, reports the
    // failing segment by name, and still verifies.
    let segment = std::fs::read_dir(&dir)
        .unwrap()
        .filter_map(|e| e.ok().map(|e| e.path()))
        .find(|p| p.extension().is_some_and(|x| x == "wal"))
        .expect("a wal segment exists");
    let mut bytes = std::fs::read(&segment).unwrap();
    bytes.extend_from_slice(&[0xde, 0xad, 0xbe, 0xef, 0x01]);
    std::fs::write(&segment, &bytes).unwrap();
    let (ok, stdout, stderr) = spgraph(&["recover", &dir, "--verify"]);
    assert!(ok, "recover over a torn tail failed: {stderr}");
    assert!(stdout.contains("truncated"), "{stdout}");
    assert!(
        stdout.contains(segment.file_name().unwrap().to_str().unwrap()),
        "truncation names the failing segment: {stdout}"
    );
    assert!(stdout.contains("verify: ok"), "{stdout}");

    // A directory with no store inside is a clean error.
    let empty = temp_path("durable-empty");
    std::fs::create_dir_all(&empty).unwrap();
    let (ok, _, stderr) = spgraph(&["recover", &empty, "--verify"]);
    assert!(!ok);
    assert!(stderr.contains("no decodable snapshot"), "{stderr}");

    std::fs::remove_dir_all(&dir).ok();
    std::fs::remove_dir_all(&empty).ok();
}

#[test]
fn bad_usage_is_reported() {
    let (ok, _, stderr) = spgraph(&[]);
    assert!(!ok);
    assert!(stderr.contains("usage"), "{stderr}");

    let (ok, _, stderr) = spgraph(&["info", "/nonexistent/path.snapshot"]);
    assert!(!ok);
    assert!(stderr.contains("cannot load"), "{stderr}");

    let snapshot = temp_path("badpred.snapshot");
    let (ok, ..) = spgraph(&["demo", &snapshot]);
    assert!(ok);
    let (ok, _, stderr) = spgraph(&["protect", &snapshot, "-p", "NoSuch"]);
    assert!(!ok);
    assert!(stderr.contains("unknown predicate"), "{stderr}");
    let (ok, _, stderr) = spgraph(&["protect", &snapshot, "-p", "High-2", "--strategy", "x"]);
    assert!(!ok);
    assert!(stderr.contains("unknown strategy"), "{stderr}");
    std::fs::remove_file(&snapshot).ok();
}
